//! Regression tests: malformed HTML must surface as `WrapError`, never as
//! a panic. Complements the proptest suite in `fuzz.rs` with deterministic
//! cases — every truncation point of a real generated page, systematic
//! character garbling, and the specific inputs that used to reach
//! `expect()` calls in the lexer and DOM builder.

use adm::{Field, PageScheme, Tuple, Value};
use websim::page::render_page;
use wrapper::{dom::Document, error::WrapError, lexer::tokenize, wrap_page};

fn scheme() -> PageScheme {
    PageScheme::new(
        "DeptPage",
        vec![
            Field::text("DName"),
            Field::text("Address"),
            Field::list(
                "ProfList",
                vec![Field::text("PName"), Field::link("ToProf", "DeptPage")],
            ),
        ],
    )
    .unwrap()
}

fn sample_page() -> String {
    let t = Tuple::new()
        .with("DName", "Computer Science")
        .with("Address", "12 Main St & Annex")
        .with_list(
            "ProfList",
            vec![
                Tuple::new()
                    .with("PName", "Aña Müller")
                    .with("ToProf", Value::link("/prof/1.html")),
                Tuple::new()
                    .with("PName", "Bob <quoted>")
                    .with("ToProf", Value::link("/prof/2.html")),
            ],
        );
    render_page(&scheme(), &t, "Computer Science")
}

/// Every char-boundary prefix of a real page either wraps or returns a
/// structured error — the process must survive all of them.
#[test]
fn every_truncation_point_is_survivable() {
    let html = sample_page();
    let s = scheme();
    let mut errors = 0usize;
    for cut in (0..=html.len()).filter(|&c| html.is_char_boundary(c)) {
        match wrap_page(&s, &html[..cut]) {
            Ok(_) => {}
            Err(e) => {
                errors += 1;
                // the error formats without panicking too
                let _ = e.to_string();
            }
        }
    }
    // truncating mid-tag must produce at least some lex errors
    assert!(errors > 0, "no truncation produced an error");
    // and the untruncated page must wrap cleanly
    assert!(wrap_page(&s, &html).is_ok());
}

/// Deterministically garble the page — delete, duplicate, or substitute
/// one character at every position — and wrap each mutant.
#[test]
fn single_character_garbling_is_survivable() {
    let html = sample_page();
    let s = scheme();
    let chars: Vec<char> = html.chars().collect();
    for (i, _) in chars.iter().enumerate() {
        // deletion
        let deleted: String = chars
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| *c)
            .collect();
        let _ = wrap_page(&s, &deleted);
        // substitution with hostile characters
        for sub in ['<', '>', '&', '"', '\0', 'é'] {
            let mutated: String = chars
                .iter()
                .enumerate()
                .map(|(j, &c)| if j == i { sub } else { c })
                .collect();
            let _ = wrap_page(&s, &mutated);
        }
    }
}

/// The lexer inputs that exercise the former `expect("in-bounds char")`
/// path: entities abutting multi-byte characters and truncated entities.
#[test]
fn entity_edge_cases_lex_cleanly() {
    for input in [
        "é&amp;ß&#x110000;&",
        "&amp",
        "&;",
        "&#xD800;π",
        "x&nbsp;\u{1F600}&bogus;",
    ] {
        let toks = tokenize(input).unwrap();
        assert!(!toks.is_empty());
    }
}

/// The inputs that exercise the former DOM `expect()` pops: deep
/// auto-closing and interleaved mismatched close tags.
#[test]
fn mismatched_nesting_builds_a_tree() {
    let d = Document::parse("<a><b><c><d>deep</a>tail").unwrap();
    let a = d.find(|e| e.tag == "a").unwrap();
    // everything above <a> was auto-closed into it
    assert!(a.find(|e| e.tag == "d").is_some());

    // interleaved closes: </i> closes nothing open at top, </b> auto-closes <i>
    let d = Document::parse("<b><i>x</b>y</i>z").unwrap();
    assert!(d.find(|e| e.tag == "b").is_some());

    // a stray close for a tag opened-and-closed twice
    let d = Document::parse("<p>a</p></p><p>b</p>").unwrap();
    assert_eq!(
        d.root_elements().filter(|e| e.tag == "p").count(),
        2,
        "both paragraphs survive the stray close"
    );
}

/// Truncation inside a tag reports a lex error with a useful offset.
#[test]
fn truncated_tags_return_lex_errors() {
    for input in [
        "<div class=\"adm-page",
        "<div class='half",
        "<a href=\"x.html\" ",
        "<!-- dangling",
        "<!DOCTYPE html",
        "</div",
    ] {
        match tokenize(input) {
            Err(WrapError::Lex { offset, message }) => {
                assert!(offset <= input.len());
                assert!(!message.is_empty());
            }
            other => panic!("expected a lex error for {input:?}, got {other:?}"),
        }
    }
}
