//! Round-trip property: every page a site generator publishes wraps back
//! into exactly the ground-truth tuple it was rendered from.

use websim::sitegen::{BibConfig, Bibliography, University, UniversityConfig};
use wrapper::wrap_page;

fn roundtrip_site(site: &websim::Site) {
    for scheme in site.scheme.schemes() {
        for (url, truth) in site.instance(&scheme.name) {
            let resp = site.server.get(&url).expect("page exists");
            let html = std::str::from_utf8(&resp.body).expect("utf8");
            let wrapped = wrap_page(scheme, html)
                .unwrap_or_else(|e| panic!("wrapping {url} ({}) failed: {e}", scheme.name));
            assert_eq!(wrapped, truth, "round-trip mismatch at {url}");
        }
    }
}

#[test]
fn university_pages_roundtrip() {
    let u = University::generate(UniversityConfig {
        departments: 3,
        professors: 10,
        courses: 20,
        seed: 77,
        ..UniversityConfig::default()
    })
    .unwrap();
    roundtrip_site(&u.site);
}

#[test]
fn bibliography_pages_roundtrip() {
    let b = Bibliography::generate(BibConfig {
        authors: 30,
        conferences: 5,
        db_conferences: 2,
        featured: 1,
        editions_per_conf: 3,
        papers_per_edition: 5,
        seed: 13,
        ..BibConfig::default()
    })
    .unwrap();
    roundtrip_site(&b.site);
}

#[test]
fn roundtrip_survives_mutations() {
    let mut u = University::generate(UniversityConfig {
        departments: 2,
        professors: 6,
        courses: 10,
        seed: 3,
        ..UniversityConfig::default()
    })
    .unwrap();
    u.add_course(0, "Fall", "Graduate").unwrap();
    u.update_course_description(1, "fresh text").unwrap();
    u.remove_course(2).unwrap();
    roundtrip_site(&u.site);
}
