//! Robustness: the HTML pipeline must never panic, whatever bytes arrive —
//! truncated pages, shuffled tags, arbitrary garbage.

use adm::{Field, PageScheme};
use proptest::prelude::*;
use wrapper::{dom::Document, lexer::tokenize, wrap_page};

fn scheme() -> PageScheme {
    PageScheme::new(
        "P",
        vec![
            Field::text("A"),
            Field::list("L", vec![Field::text("B"), Field::link("ToX", "P")]),
        ],
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn lexer_never_panics(input in ".*") {
        let _ = tokenize(&input);
    }

    #[test]
    fn dom_never_panics(input in ".*") {
        let _ = Document::parse(&input);
    }

    #[test]
    fn wrapper_never_panics(input in ".*") {
        let _ = wrap_page(&scheme(), &input);
    }

    #[test]
    fn html_like_soup_never_panics(
        tags in proptest::collection::vec("[a-z]{1,4}", 0..20),
        texts in proptest::collection::vec("[^<>]{0,8}", 0..20),
    ) {
        let mut soup = String::new();
        for (i, t) in tags.iter().enumerate() {
            if i % 3 == 0 {
                soup.push_str(&format!("<{t} class=\"adm-list\" data-attr=\"L\">"));
            } else if i % 3 == 1 {
                soup.push_str(&format!("</{t}>"));
            } else {
                soup.push_str(&format!("<{t} data-attr=\"A\">"));
            }
            if let Some(x) = texts.get(i) {
                soup.push_str(x);
            }
        }
        let _ = wrap_page(&scheme(), &soup);
    }

    #[test]
    fn truncated_real_pages_never_panic(cut in 0usize..4096) {
        use websim::page::render_page;
        let t = adm::Tuple::new().with("A", "hello world").with_list(
            "L",
            vec![adm::Tuple::new()
                .with("B", "x")
                .with("ToX", adm::Value::link("/x.html"))],
        );
        let html = render_page(&scheme(), &t, "T");
        let cut = cut.min(html.len());
        // cut on a char boundary
        let mut c = cut;
        while !html.is_char_boundary(c) {
            c -= 1;
        }
        let _ = wrap_page(&scheme(), &html[..c]);
    }
}
