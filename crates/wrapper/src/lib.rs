//! # wrapper — HTML wrappers for ADM page-schemes
//!
//! The paper assumes "suitable wrappers are applied to pages in order to
//! access attribute values" (Section 3.1, citing the Araneus wrapper
//! toolkits). This crate is that substrate, built from scratch:
//!
//! * [`lexer`] — an HTML tokenizer (tags, attributes, text, entities,
//!   comments);
//! * [`dom`] — a tiny document tree with tolerant parsing (auto-closing of
//!   mismatched tags, void elements);
//! * [`wrap`] — scheme-driven extraction: given a [`adm::PageScheme`] and a
//!   page's HTML, produce the corresponding nested [`adm::Tuple`].
//!
//! Extraction follows the microformat emitted by `websim::page`: attribute
//! elements carry `data-attr`, lists are `ul.adm-list` with `li.adm-row`
//! rows. Extraction is *scoped*: while looking for attributes of one
//! nesting level it never descends into nested lists, so inner attribute
//! names may shadow outer ones without ambiguity.

pub mod dom;
pub mod error;
pub mod lexer;
pub mod wrap;

pub use dom::{Document, Element, Node};
pub use error::WrapError;
pub use wrap::{wrap_page, wrap_page_columnar};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WrapError>;
