//! A tiny document object model built from the token stream.
//!
//! Parsing is tolerant: a close tag with no matching open is ignored; a
//! close tag matching a non-top element auto-closes the elements above it;
//! void elements (`br`, `img`, …) never take children; anything left open
//! at end-of-input is closed implicitly.

use crate::error::WrapError;
use crate::lexer::{tokenize, Token};
use crate::Result;

/// Element tags that never have children.
const VOID_TAGS: &[&str] = &["br", "hr", "img", "meta", "link", "input"];

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element.
    Element(Element),
    /// A text run.
    Text(String),
    /// A comment.
    Comment(String),
}

/// A DOM element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// Lower-case tag name.
    pub tag: String,
    /// Attributes in document order.
    pub attrs: Vec<(String, String)>,
    /// Children in document order.
    pub children: Vec<Node>,
}

impl Element {
    /// The value of an attribute, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v.as_str()))
    }

    /// True if the space-separated `class` attribute contains `class_name`.
    pub fn has_class(&self, class_name: &str) -> bool {
        self.attr("class")
            .is_some_and(|c| c.split_whitespace().any(|x| x == class_name))
    }

    /// Child elements (skipping text/comments).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// All text content, concatenated and trimmed.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        fn walk(e: &Element, out: &mut String) {
            for c in &e.children {
                match c {
                    Node::Text(t) => out.push_str(t),
                    Node::Element(inner) => walk(inner, out),
                    Node::Comment(_) => {}
                }
            }
        }
        walk(self, &mut out);
        out.trim().to_string()
    }

    /// Depth-first search over all descendant elements (self excluded).
    pub fn descendants(&self) -> Vec<&Element> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Element, out: &mut Vec<&'a Element>) {
            for c in e.child_elements() {
                out.push(c);
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// The first descendant satisfying the predicate, DFS order.
    pub fn find(&self, pred: impl Fn(&Element) -> bool + Copy) -> Option<&Element> {
        for c in self.child_elements() {
            if pred(c) {
                return Some(c);
            }
            if let Some(found) = c.find(pred) {
                return Some(found);
            }
        }
        None
    }
}

/// A parsed document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Top-level nodes (usually a doctype comment plus `<html>`).
    pub roots: Vec<Node>,
}

impl Document {
    /// Parses HTML into a document.
    pub fn parse(input: &str) -> Result<Document> {
        let tokens = tokenize(input)?;
        let mut stack: Vec<Element> = Vec::new();
        let mut roots: Vec<Node> = Vec::new();

        fn attach(stack: &mut [Element], roots: &mut Vec<Node>, node: Node) {
            if let Some(top) = stack.last_mut() {
                top.children.push(node);
            } else {
                roots.push(node);
            }
        }

        for tok in tokens {
            match tok {
                Token::Doctype(_) => {}
                Token::Comment(c) => attach(&mut stack, &mut roots, Node::Comment(c)),
                Token::Text(t) => {
                    if !t.trim().is_empty() {
                        attach(&mut stack, &mut roots, Node::Text(t));
                    }
                }
                Token::Open {
                    name,
                    attrs,
                    self_closing,
                } => {
                    let e = Element {
                        tag: name.clone(),
                        attrs,
                        children: Vec::new(),
                    };
                    if self_closing || VOID_TAGS.contains(&name.as_str()) {
                        attach(&mut stack, &mut roots, Node::Element(e));
                    } else {
                        stack.push(e);
                    }
                }
                Token::Close(name) => {
                    // Find the matching open element in the stack, then
                    // close it together with everything auto-closed above
                    // it. The pops are bounded by `pos`, so an exhausted
                    // stack means the parser lost track of nesting — an
                    // error, not a panic.
                    if let Some(pos) = stack.iter().rposition(|e| e.tag == name) {
                        while stack.len() > pos {
                            let Some(closed) = stack.pop() else {
                                return Err(WrapError::BadStructure(format!(
                                    "element stack exhausted while closing </{name}>"
                                )));
                            };
                            attach(&mut stack, &mut roots, Node::Element(closed));
                        }
                    }
                    // otherwise: stray close tag, ignored
                }
            }
        }
        // implicitly close anything left open
        while let Some(e) = stack.pop() {
            attach(&mut stack, &mut roots, Node::Element(e));
        }
        Ok(Document { roots })
    }

    /// Root elements (skipping text/comments).
    pub fn root_elements(&self) -> impl Iterator<Item = &Element> {
        self.roots.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            _ => None,
        })
    }

    /// The first element in the document satisfying the predicate.
    pub fn find(&self, pred: impl Fn(&Element) -> bool + Copy) -> Option<&Element> {
        for r in self.root_elements() {
            if pred(r) {
                return Some(r);
            }
            if let Some(found) = r.find(pred) {
                return Some(found);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let d = Document::parse("<html><body><p>one</p><p>two</p></body></html>").unwrap();
        let html = d.root_elements().next().unwrap();
        assert_eq!(html.tag, "html");
        let body = html.child_elements().next().unwrap();
        assert_eq!(body.child_elements().count(), 2);
    }

    #[test]
    fn text_content_concatenates() {
        let d = Document::parse("<p>a <b>bold</b> c</p>").unwrap();
        let p = d.find(|e| e.tag == "p").unwrap();
        assert_eq!(p.text_content(), "a bold c");
    }

    #[test]
    fn void_elements_take_no_children() {
        let d = Document::parse("<p>x<br>y</p>").unwrap();
        let p = d.find(|e| e.tag == "p").unwrap();
        let br = p.child_elements().next().unwrap();
        assert_eq!(br.tag, "br");
        assert!(br.children.is_empty());
        assert_eq!(p.text_content(), "xy");
    }

    #[test]
    fn auto_close_on_mismatch() {
        // <b> never closed; </p> should auto-close it.
        let d = Document::parse("<p><b>bold</p>after").unwrap();
        let p = d.find(|e| e.tag == "p").unwrap();
        assert!(p.find(|e| e.tag == "b").is_some());
    }

    #[test]
    fn stray_close_ignored() {
        let d = Document::parse("</div><p>ok</p>").unwrap();
        assert!(d.find(|e| e.tag == "p").is_some());
    }

    #[test]
    fn unclosed_at_eof() {
        let d = Document::parse("<div><p>dangling").unwrap();
        let div = d.find(|e| e.tag == "div").unwrap();
        assert!(div.find(|e| e.tag == "p").is_some());
    }

    #[test]
    fn has_class_splits_words() {
        let d = Document::parse("<div class=\"chrome footer\"></div>").unwrap();
        let e = d.find(|e| e.tag == "div").unwrap();
        assert!(e.has_class("footer"));
        assert!(e.has_class("chrome"));
        assert!(!e.has_class("foo"));
    }

    #[test]
    fn find_is_depth_first() {
        let d = Document::parse(
            "<div><span id=\"a\"><span id=\"b\"></span></span><span id=\"c\"></span></div>",
        )
        .unwrap();
        let first = d.find(|e| e.tag == "span").unwrap();
        assert_eq!(first.attr("id"), Some("a"));
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let d = Document::parse("<ul>\n  <li>x</li>\n</ul>").unwrap();
        let ul = d.find(|e| e.tag == "ul").unwrap();
        assert_eq!(ul.children.len(), 1);
    }

    #[test]
    fn descendants_counts_all() {
        let d = Document::parse("<a><b><c></c></b><d></d></a>").unwrap();
        let a = d.find(|e| e.tag == "a").unwrap();
        assert_eq!(a.descendants().len(), 3);
    }
}
