//! Wrapper errors.

use std::fmt;

/// Errors raised while lexing, parsing, or extracting a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrapError {
    /// The tokenizer hit malformed markup it cannot recover from.
    Lex {
        /// Byte offset of the problem.
        offset: usize,
        /// Description.
        message: String,
    },
    /// A required (non-optional) attribute was not found on the page.
    MissingAttribute {
        /// The page-scheme attribute that could not be extracted.
        attr: String,
        /// The page-scheme name.
        scheme: String,
    },
    /// The page structure does not match the scheme (e.g. a list marker on
    /// a mono-valued attribute).
    BadStructure(String),
    /// A link attribute's element had no `href`.
    MissingHref(String),
}

impl fmt::Display for WrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapError::Lex { offset, message } => {
                write!(f, "lex error at byte {offset}: {message}")
            }
            WrapError::MissingAttribute { attr, scheme } => {
                write!(
                    f,
                    "attribute `{attr}` of page-scheme `{scheme}` not found on page"
                )
            }
            WrapError::BadStructure(m) => write!(f, "page structure mismatch: {m}"),
            WrapError::MissingHref(a) => write!(f, "link attribute `{a}` has no href"),
        }
    }
}

impl std::error::Error for WrapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = WrapError::MissingAttribute {
            attr: "PName".into(),
            scheme: "ProfPage".into(),
        };
        assert!(e.to_string().contains("PName"));
        assert!(e.to_string().contains("ProfPage"));
    }
}
