//! HTML tokenizer.
//!
//! Produces a flat token stream: open tags (with parsed attributes), close
//! tags, text runs (entity-decoded), comments, and doctype declarations.
//! The tokenizer is tolerant in the ways real-world HTML demands: attribute
//! values may be double-quoted, single-quoted, or bare; unknown entities
//! pass through literally; stray `<` in text is treated as text.

use crate::error::WrapError;
use crate::Result;

/// One HTML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<tag a="b" …>`; `self_closing` for `<tag/>`.
    Open {
        /// Lower-cased tag name.
        name: String,
        /// Attribute pairs in order; values entity-decoded.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</tag>`.
    Close(String),
    /// A text run, entity-decoded. Never empty.
    Text(String),
    /// `<!-- … -->` content.
    Comment(String),
    /// `<!DOCTYPE …>` content.
    Doctype(String),
}

/// Decodes the HTML entities the generator emits (plus numeric forms).
/// Unknown entities are passed through unchanged. Fails (instead of
/// panicking) if the scan ever lands between UTF-8 char boundaries —
/// which garbled input must not be able to provoke.
pub fn decode_entities(s: &str) -> Result<String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(semi) = s.get(i..).and_then(|r| r.find(';')).map(|j| i + j) {
                let entity = s.get(i + 1..semi).unwrap_or("");
                let decoded = match entity {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    "nbsp" => Some('\u{a0}'),
                    _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                        u32::from_str_radix(&entity[2..], 16)
                            .ok()
                            .and_then(char::from_u32)
                    }
                    _ if entity.starts_with('#') => {
                        entity[1..].parse::<u32>().ok().and_then(char::from_u32)
                    }
                    _ => None,
                };
                if let Some(c) = decoded {
                    out.push(c);
                    i = semi + 1;
                    continue;
                }
            }
        }
        // plain byte — copy the full UTF-8 char
        let Some(ch) = s.get(i..).and_then(|r| r.chars().next()) else {
            return Err(WrapError::Lex {
                offset: i,
                message: "entity scan desynchronized from char boundaries".into(),
            });
        };
        out.push(ch);
        i += ch.len_utf8();
    }
    Ok(out)
}

/// Tokenizes an HTML document.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            if input[i..].starts_with("<!--") {
                let end = input[i + 4..].find("-->").ok_or(WrapError::Lex {
                    offset: i,
                    message: "unterminated comment".into(),
                })?;
                tokens.push(Token::Comment(input[i + 4..i + 4 + end].trim().to_string()));
                i += 4 + end + 3;
            } else if input[i..].starts_with("<!") {
                let end = input[i..].find('>').ok_or(WrapError::Lex {
                    offset: i,
                    message: "unterminated declaration".into(),
                })?;
                tokens.push(Token::Doctype(input[i + 2..i + end].trim().to_string()));
                i += end + 1;
            } else if input[i..].starts_with("</") {
                let end = input[i..].find('>').ok_or(WrapError::Lex {
                    offset: i,
                    message: "unterminated close tag".into(),
                })?;
                let name = input[i + 2..i + end].trim().to_ascii_lowercase();
                tokens.push(Token::Close(name));
                i += end + 1;
            } else if i + 1 < bytes.len() && (bytes[i + 1].is_ascii_alphabetic()) {
                let (tok, next) = lex_open_tag(input, i)?;
                tokens.push(tok);
                i = next;
            } else {
                // stray '<' — treat as text
                push_text(&mut tokens, "<");
                i += 1;
            }
        } else {
            let end = input[i..].find('<').map(|j| i + j).unwrap_or(bytes.len());
            let text = decode_entities(&input[i..end])?;
            push_text(&mut tokens, &text);
            i = end;
        }
    }
    Ok(tokens)
}

fn push_text(tokens: &mut Vec<Token>, text: &str) {
    if text.is_empty() {
        return;
    }
    if let Some(Token::Text(prev)) = tokens.last_mut() {
        prev.push_str(text);
    } else {
        tokens.push(Token::Text(text.to_string()));
    }
}

/// Lexes an open tag starting at `start` (which points at `<`).
/// Returns the token and the index just past `>`.
fn lex_open_tag(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start + 1;
    let name_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-') {
        i += 1;
    }
    let name = input[name_start..i].to_ascii_lowercase();
    let mut attrs = Vec::new();
    let mut self_closing = false;
    loop {
        // skip whitespace
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(WrapError::Lex {
                offset: start,
                message: format!("unterminated tag <{name}"),
            });
        }
        match bytes[i] {
            b'>' => {
                i += 1;
                break;
            }
            b'/' => {
                self_closing = true;
                i += 1;
            }
            _ => {
                // attribute name
                let an_start = i;
                while i < bytes.len()
                    && !bytes[i].is_ascii_whitespace()
                    && bytes[i] != b'='
                    && bytes[i] != b'>'
                    && bytes[i] != b'/'
                {
                    i += 1;
                }
                let an = input[an_start..i].to_ascii_lowercase();
                if an.is_empty() {
                    return Err(WrapError::Lex {
                        offset: i,
                        message: "empty attribute name".into(),
                    });
                }
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                let value = if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                        let quote = bytes[i];
                        i += 1;
                        let v_start = i;
                        while i < bytes.len() && bytes[i] != quote {
                            i += 1;
                        }
                        if i >= bytes.len() {
                            return Err(WrapError::Lex {
                                offset: v_start,
                                message: "unterminated attribute value".into(),
                            });
                        }
                        let v = decode_entities(&input[v_start..i])?;
                        i += 1; // past quote
                        v
                    } else {
                        let v_start = i;
                        while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'>'
                        {
                            i += 1;
                        }
                        decode_entities(&input[v_start..i])?
                    }
                } else {
                    String::new() // boolean attribute
                };
                attrs.push((an, value));
            }
        }
    }
    Ok((
        Token::Open {
            name,
            attrs,
            self_closing,
        },
        i,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decodes_entities() {
        assert_eq!(decode_entities("a &amp; b &lt;c&gt;").unwrap(), "a & b <c>");
        assert_eq!(decode_entities("&#65;&#x42;").unwrap(), "AB");
        assert_eq!(decode_entities("&bogus; &").unwrap(), "&bogus; &");
    }

    #[test]
    fn hostile_entities_pass_through() {
        // overlong / out-of-range / surrogate numeric entities decode to
        // nothing sensible and must fall through as literal text
        assert_eq!(decode_entities("&#x110000;").unwrap(), "&#x110000;");
        assert_eq!(decode_entities("&#xD800;").unwrap(), "&#xD800;");
        assert_eq!(decode_entities("&#;&#x;&;").unwrap(), "&#;&#x;&;");
        // trailing lone ampersand and unterminated entity
        assert_eq!(decode_entities("a&amp").unwrap(), "a&amp");
        assert_eq!(decode_entities("&").unwrap(), "&");
        // multi-byte text around entities survives
        assert_eq!(decode_entities("é&amp;ß").unwrap(), "é&ß");
    }

    #[test]
    fn simple_document() {
        let toks = tokenize("<p class=\"x\">hi</p>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Open {
                    name: "p".into(),
                    attrs: vec![("class".into(), "x".into())],
                    self_closing: false,
                },
                Token::Text("hi".into()),
                Token::Close("p".into()),
            ]
        );
    }

    #[test]
    fn attribute_quoting_styles() {
        let toks = tokenize("<a href='x.html' data-n=7 disabled>").unwrap();
        let Token::Open { attrs, .. } = &toks[0] else {
            panic!()
        };
        assert_eq!(
            attrs,
            &vec![
                ("href".into(), "x.html".into()),
                ("data-n".into(), "7".into()),
                ("disabled".into(), String::new()),
            ]
        );
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- note -->text").unwrap();
        assert_eq!(toks[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(toks[1], Token::Comment("note".into()));
        assert_eq!(toks[2], Token::Text("text".into()));
    }

    #[test]
    fn self_closing_tag() {
        let toks = tokenize("<br/>").unwrap();
        assert_eq!(
            toks[0],
            Token::Open {
                name: "br".into(),
                attrs: vec![],
                self_closing: true,
            }
        );
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = tokenize("1 < 2").unwrap();
        assert_eq!(toks, vec![Token::Text("1 < 2".into())]);
    }

    #[test]
    fn entities_in_attr_values() {
        let toks = tokenize("<a title=\"a &amp; b\">").unwrap();
        let Token::Open { attrs, .. } = &toks[0] else {
            panic!()
        };
        assert_eq!(attrs[0].1, "a & b");
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(tokenize("<!-- oops").is_err());
        assert!(tokenize("<p class=\"x").is_err());
    }

    #[test]
    fn tags_case_normalized() {
        let toks = tokenize("<DIV CLASS=\"A\"></DIV>").unwrap();
        assert!(matches!(&toks[0], Token::Open { name, attrs, .. }
            if name == "div" && attrs[0].0 == "class" && attrs[0].1 == "A"));
        assert_eq!(toks[1], Token::Close("div".into()));
    }

    #[test]
    fn adjacent_text_coalesced() {
        let toks = tokenize("a&amp;b").unwrap();
        assert_eq!(toks, vec![Token::Text("a&b".into())]);
    }
}
