//! Scheme-driven extraction of nested tuples from HTML.
//!
//! Extraction is scoped by nesting level: when looking for the attributes
//! of one level (the page's top level, or one list row), the search never
//! descends *into* a nested `adm-list` element — so attribute names inside
//! inner lists cannot shadow or be confused with outer ones (e.g.
//! `SessionPage.Session` vs the `CName` entries inside its `CourseList`).

use crate::dom::{Document, Element};
use crate::error::WrapError;
use crate::Result;
use adm::{ColumnRel, ColumnRelBuilder, Field, PageScheme, Tuple, Value, WebType};

/// Finds the element carrying `data-attr == name` within `scope`, without
/// crossing into nested lists.
fn find_scoped<'a>(scope: &'a Element, name: &str) -> Option<&'a Element> {
    for c in scope.child_elements() {
        if c.attr("data-attr") == Some(name) {
            return Some(c);
        }
        if c.has_class("adm-list") {
            continue; // do not descend into a nested level
        }
        if let Some(found) = find_scoped(c, name) {
            return Some(found);
        }
    }
    None
}

/// Extracts one attribute value from its element.
fn extract_value(field: &Field, el: &Element) -> Result<Value> {
    match &field.ty {
        WebType::Text => Ok(Value::Text(el.text_content())),
        WebType::Image => {
            let src = el.attr("src").ok_or_else(|| {
                WrapError::BadStructure(format!("image attribute `{}` has no src", field.name))
            })?;
            Ok(Value::Text(src.to_string()))
        }
        WebType::Link { .. } => {
            let href = el
                .attr("href")
                .ok_or_else(|| WrapError::MissingHref(field.name.clone()))?;
            Ok(Value::Link(adm::Url::new(href)))
        }
        WebType::List(inner) => {
            if !el.has_class("adm-list") {
                return Err(WrapError::BadStructure(format!(
                    "attribute `{}` is a list but its element is not marked adm-list",
                    field.name
                )));
            }
            let mut rows = Vec::new();
            for li in el.child_elements().filter(|e| e.has_class("adm-row")) {
                rows.push(extract_fields(inner, li, &field.name)?);
            }
            Ok(Value::List(rows))
        }
    }
}

/// Extracts all fields of one nesting level as a flat value row, in scheme
/// order. The shared core of both the tuple and the columnar wrapper.
fn extract_row(fields: &[Field], scope: &Element, context: &str) -> Result<Vec<Value>> {
    let mut vals = Vec::with_capacity(fields.len());
    for f in fields {
        match find_scoped(scope, &f.name) {
            Some(el) => vals.push(extract_value(f, el)?),
            None if f.optional => vals.push(Value::Null),
            None if matches!(f.ty, WebType::List(_)) => {
                // An empty list legitimately renders as an empty <ul>; if
                // even the <ul> is missing, treat as empty list as well —
                // real sites omit empty sections.
                vals.push(Value::List(vec![]));
            }
            None => {
                return Err(WrapError::MissingAttribute {
                    attr: f.name.clone(),
                    scheme: context.to_string(),
                });
            }
        }
    }
    Ok(vals)
}

/// Extracts all fields of one nesting level from a scope element.
fn extract_fields(fields: &[Field], scope: &Element, context: &str) -> Result<Tuple> {
    let vals = extract_row(fields, scope, context)?;
    Ok(Tuple::from_pairs(
        fields.iter().map(|f| f.name.clone()).zip(vals).collect(),
    ))
}

/// Wraps a page: parses `html` and extracts the nested tuple described by
/// `scheme`. The returned tuple conforms to the scheme's fields.
pub fn wrap_page(scheme: &PageScheme, html: &str) -> Result<Tuple> {
    let doc = Document::parse(html)?;
    // Prefer the marked content container; fall back to the whole <html>
    // tree for pages without one (robustness against hand-written pages).
    let tuple = if let Some(container) = doc.find(|e| e.has_class("adm-page")) {
        extract_fields(&scheme.fields, container, &scheme.name)?
    } else if let Some(root) = doc.root_elements().next() {
        extract_fields(&scheme.fields, root, &scheme.name)?
    } else {
        return Err(WrapError::BadStructure("empty document".into()));
    };
    Ok(tuple)
}

/// Wraps a page straight into a single-row columnar relation: the extracted
/// value row goes into a [`ColumnRelBuilder`] without materializing the
/// intermediate nested [`Tuple`], and text/link payloads are interned as
/// they land in the typed columns. Column names are the scheme's field
/// names (unqualified — the evaluator qualifies by alias).
pub fn wrap_page_columnar(scheme: &PageScheme, html: &str) -> Result<ColumnRel> {
    let doc = Document::parse(html)?;
    let row = if let Some(container) = doc.find(|e| e.has_class("adm-page")) {
        extract_row(&scheme.fields, container, &scheme.name)?
    } else if let Some(root) = doc.root_elements().next() {
        extract_row(&scheme.fields, root, &scheme.name)?
    } else {
        return Err(WrapError::BadStructure("empty document".into()));
    };
    let names: Vec<&str> = scheme.fields.iter().map(|f| f.name.as_str()).collect();
    let mut b = ColumnRelBuilder::new(&names);
    b.push_row(&row)
        .expect("row arity equals scheme field count by construction");
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adm::Field;

    fn session_scheme() -> PageScheme {
        PageScheme::new(
            "SessionPage",
            vec![
                Field::text("Session"),
                Field::list(
                    "CourseList",
                    vec![Field::text("CName"), Field::link("ToCourse", "SessionPage")],
                ),
            ],
        )
        .unwrap()
    }

    const SESSION_HTML: &str = r#"<!DOCTYPE html>
<html><body>
<div class="chrome"><h1>Fall Session</h1><p>Home | About</p></div>
<div class="adm-page" data-scheme="SessionPage">
  <b>Session: </b><span class="adm-attr" data-attr="Session">Fall</span><br>
  <ul class="adm-list" data-attr="CourseList">
    <li class="adm-row">
      <span class="adm-attr" data-attr="CName">Databases 101</span>
      <a class="adm-attr" data-attr="ToCourse" href="/c/1.html">link</a>
    </li>
    <li class="adm-row">
      <span class="adm-attr" data-attr="CName">Compilers 202</span>
      <a class="adm-attr" data-attr="ToCourse" href="/c/2.html">link</a>
    </li>
  </ul>
</div>
</body></html>"#;

    #[test]
    fn wraps_page_with_list() {
        let t = wrap_page(&session_scheme(), SESSION_HTML).unwrap();
        assert_eq!(t.get("Session").unwrap().as_text(), Some("Fall"));
        let courses = t.get("CourseList").unwrap().as_list().unwrap();
        assert_eq!(courses.len(), 2);
        assert_eq!(
            courses[1]
                .get("ToCourse")
                .unwrap()
                .as_link()
                .unwrap()
                .as_str(),
            "/c/2.html"
        );
        assert!(t.conforms_to(&session_scheme().fields));
    }

    #[test]
    fn missing_required_attr_errors() {
        let html = "<div class=\"adm-page\"></div>";
        let err = wrap_page(&session_scheme(), html).unwrap_err();
        assert!(matches!(err, WrapError::MissingAttribute { attr, .. } if attr == "Session"));
    }

    #[test]
    fn optional_attr_becomes_null() {
        let scheme = PageScheme::new(
            "P",
            vec![Field::text("A"), Field::optional("B", WebType::Text)],
        )
        .unwrap();
        let html = r#"<div class="adm-page"><span data-attr="A">x</span></div>"#;
        let t = wrap_page(&scheme, html).unwrap();
        assert!(t.get("B").unwrap().is_null());
    }

    #[test]
    fn missing_list_is_empty() {
        let html = r#"<div class="adm-page"><span data-attr="Session">Fall</span></div>"#;
        let t = wrap_page(&session_scheme(), html).unwrap();
        assert_eq!(t.get("CourseList").unwrap().as_list().unwrap().len(), 0);
    }

    #[test]
    fn link_without_href_errors() {
        let scheme = PageScheme::new("P", vec![Field::link("L", "P")]).unwrap();
        let html = r#"<div class="adm-page"><a data-attr="L">x</a></div>"#;
        assert!(matches!(
            wrap_page(&scheme, html),
            Err(WrapError::MissingHref(_))
        ));
    }

    #[test]
    fn scoping_prevents_inner_shadowing() {
        // The outer scheme has attribute "Name"; the inner rows also carry
        // "Name". The outer search must not pick the inner one when the
        // outer appears *after* the list in document order.
        let scheme = PageScheme::new(
            "P",
            vec![
                Field::list("Items", vec![Field::text("Name")]),
                Field::text("Name"),
            ],
        )
        .unwrap();
        let html = r#"<div class="adm-page">
            <ul class="adm-list" data-attr="Items">
              <li class="adm-row"><span data-attr="Name">inner</span></li>
            </ul>
            <span data-attr="Name">outer</span>
        </div>"#;
        let t = wrap_page(&scheme, html).unwrap();
        assert_eq!(t.get("Name").unwrap().as_text(), Some("outer"));
        let items = t.get("Items").unwrap().as_list().unwrap();
        assert_eq!(items[0].get("Name").unwrap().as_text(), Some("inner"));
    }

    #[test]
    fn nested_lists_extract_recursively() {
        let scheme = PageScheme::new(
            "EditionPage",
            vec![Field::list(
                "PaperList",
                vec![
                    Field::text("Title"),
                    Field::list(
                        "Authors",
                        vec![Field::text("AName"), Field::link("ToAuthor", "EditionPage")],
                    ),
                ],
            )],
        )
        .unwrap();
        let html = r#"<div class="adm-page">
          <ul class="adm-list" data-attr="PaperList">
            <li class="adm-row">
              <span data-attr="Title">P1</span>
              <ul class="adm-list" data-attr="Authors">
                <li class="adm-row"><span data-attr="AName">Alice</span>
                    <a data-attr="ToAuthor" href="/a/0.html">x</a></li>
                <li class="adm-row"><span data-attr="AName">Bob</span>
                    <a data-attr="ToAuthor" href="/a/1.html">x</a></li>
              </ul>
            </li>
          </ul>
        </div>"#;
        let t = wrap_page(&scheme, html).unwrap();
        let papers = t.get("PaperList").unwrap().as_list().unwrap();
        let authors = papers[0].get("Authors").unwrap().as_list().unwrap();
        assert_eq!(authors.len(), 2);
        assert_eq!(authors[1].get("AName").unwrap().as_text(), Some("Bob"));
    }

    #[test]
    fn image_extracts_src() {
        let scheme = PageScheme::new("P", vec![Field::new("Pic", WebType::Image)]).unwrap();
        let html = r#"<div class="adm-page"><img data-attr="Pic" src="/p.png"></div>"#;
        let t = wrap_page(&scheme, html).unwrap();
        assert_eq!(t.get("Pic").unwrap().as_text(), Some("/p.png"));
    }

    #[test]
    fn falls_back_without_container() {
        let scheme = PageScheme::new("P", vec![Field::text("A")]).unwrap();
        let html = r#"<html><body><span data-attr="A">val</span></body></html>"#;
        let t = wrap_page(&scheme, html).unwrap();
        assert_eq!(t.get("A").unwrap().as_text(), Some("val"));
    }

    #[test]
    fn columnar_wrap_equals_tuple_wrap() {
        let scheme = session_scheme();
        let t = wrap_page(&scheme, SESSION_HTML).unwrap();
        let c = wrap_page_columnar(&scheme, SESSION_HTML).unwrap();
        assert_eq!(c.len(), 1);
        // Field for field, the columnar row materializes to the same tuple.
        assert_eq!(c.tuple_at(0), t);
        // And round-trips through the boundary Relation byte-identically.
        let mut r = adm::Relation::new(
            scheme
                .fields
                .iter()
                .map(|f| f.name.clone())
                .collect::<Vec<_>>(),
        );
        r.push_row(t.into_pairs().into_iter().map(|(_, v)| v).collect())
            .unwrap();
        assert_eq!(c.to_relation(), r);
    }

    #[test]
    fn columnar_wrap_preserves_empty_list_and_null() {
        let scheme = PageScheme::new(
            "P",
            vec![
                Field::optional("B", WebType::Text),
                Field::list("L", vec![Field::text("X")]),
            ],
        )
        .unwrap();
        let html = r#"<div class="adm-page"></div>"#;
        let c = wrap_page_columnar(&scheme, html).unwrap();
        assert!(c.value_at(0, 0).is_null());
        assert_eq!(c.value_at(0, 1), Value::List(vec![]));
    }

    #[test]
    fn entities_decoded_in_values() {
        let scheme = PageScheme::new("P", vec![Field::text("A")]).unwrap();
        let html =
            r#"<div class="adm-page"><span data-attr="A">C &amp; C++ &lt;notes&gt;</span></div>"#;
        let t = wrap_page(&scheme, html).unwrap();
        assert_eq!(t.get("A").unwrap().as_text(), Some("C & C++ <notes>"));
    }
}
