//! Randomized equivalence: pipelined (pooled) evaluation must be
//! observationally identical to sequential evaluation — same relation,
//! same page-access accounting, same broken-link count — for arbitrary
//! sites (including duplicate and dangling links) and any worker count.
//! Completion order inside the pool is nondeterministic, so this pins the
//! out-of-order reassembly logic of the `Follow` pipeline.

use adm::{Field, PageScheme, Tuple, Url, Value, WebScheme};
use nalg::{Evaluator, NalgExpr, PageSource, SharedPageCache, SourceError};
use proptest::prelude::*;
use std::collections::HashMap;

/// An in-memory page source over explicit tuples (thread-safe: reads only).
struct MapSource {
    pages: HashMap<Url, Tuple>,
}

impl PageSource for MapSource {
    fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
        self.pages
            .get(url)
            .cloned()
            .ok_or_else(|| SourceError::NotFound(url.clone()))
    }
}

fn scheme() -> WebScheme {
    let list = PageScheme::new(
        "ListPage",
        vec![Field::list(
            "Items",
            vec![Field::text("Name"), Field::link("ToItem", "ItemPage")],
        )],
    )
    .unwrap();
    let item = PageScheme::new("ItemPage", vec![Field::text("Name"), Field::text("Kind")]).unwrap();
    WebScheme::builder()
        .scheme(list)
        .scheme(item)
        .entry_point("ListPage", "/list.html")
        .build()
        .unwrap()
}

/// One generated list entry: which kind its page has, whether the link
/// dangles (no page behind it), and whether the list references it twice
/// (duplicate links must still count as one distinct access).
type Item = (u8, bool, bool);

fn build_site(items: &[Item]) -> MapSource {
    let mut pages = HashMap::new();
    let mut rows = Vec::new();
    for (i, &(kind, broken, dup)) in items.iter().enumerate() {
        let url = format!("/i/{i}");
        let row = Tuple::new()
            .with("Name", format!("n{i}"))
            .with("ToItem", Value::link(url.as_str()));
        rows.push(row.clone());
        if dup {
            rows.push(row);
        }
        if !broken {
            pages.insert(
                Url::new(url),
                Tuple::new()
                    .with("Name", format!("n{i}"))
                    .with("Kind", format!("k{kind}")),
            );
        }
    }
    pages.insert(
        Url::new("/list.html"),
        Tuple::new().with_list("Items", rows),
    );
    MapSource { pages }
}

fn navigation() -> NalgExpr {
    NalgExpr::entry("ListPage")
        .unnest("Items")
        .follow("ToItem", "ItemPage")
        .project(vec!["ListPage.Items.Name", "ItemPage.Kind"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pooled_eval_equals_sequential(
        items in proptest::collection::vec((0u8..4, any::<bool>(), any::<bool>()), 1..40),
        workers in 1usize..=16,
    ) {
        let ws = scheme();
        let src = build_site(&items);
        let plan = navigation();

        let seq = Evaluator::new(&ws, &src).eval(&plan).unwrap();
        let par = Evaluator::new(&ws, &src)
            .with_concurrent_fetch(workers)
            .eval(&plan)
            .unwrap();

        prop_assert_eq!(par.relation.sorted(), seq.relation.sorted());
        prop_assert_eq!(par.page_accesses, seq.page_accesses);
        prop_assert_eq!(par.broken_links, seq.broken_links);
        prop_assert_eq!(par.cost_model_accesses(), seq.cost_model_accesses());
        prop_assert_eq!(&par.accesses_by_operator, &seq.accesses_by_operator);

        // And through a warm shared cache: same answer, zero downloads.
        let cache = SharedPageCache::default();
        let cold = Evaluator::new(&ws, &src)
            .with_concurrent_fetch(workers)
            .with_shared_cache(&cache)
            .eval(&plan)
            .unwrap();
        prop_assert_eq!(cold.page_accesses, seq.page_accesses);
        let warm = Evaluator::new(&ws, &src)
            .with_concurrent_fetch(workers)
            .with_shared_cache(&cache)
            .eval(&plan)
            .unwrap();
        prop_assert_eq!(warm.relation.sorted(), seq.relation.sorted());
        prop_assert_eq!(warm.page_accesses, 0);
        prop_assert_eq!(warm.cost_model_accesses(), seq.cost_model_accesses());
    }
}
