//! Evaluation of NALG expressions over a page source.
//!
//! The evaluator realizes the paper's execution model: entry points are
//! fetched by their known URL; `follow link` downloads the page behind each
//! *distinct* outgoing link (the quantity the cost function charges);
//! everything else is local and free. A per-query page cache ensures a page
//! fetched by two operators is downloaded once — the report exposes both
//! the per-operator distinct-link counts (the paper's 𝒞) and the actual
//! number of downloads.
//!
//! Two engine features sit on top of the paper's model, both strictly
//! accounted so the paper numbers stay reproducible:
//!
//! * **Pipelined concurrent fetch** ([`Evaluator::with_concurrent_fetch`]):
//!   a persistent worker pool is spawned once per evaluation and serves
//!   every `follow` in the plan; distinct links stream into the pool and
//!   wrapped tuples are consumed as they arrive, overlapping network
//!   latency with wrapping and row assembly. Results and all access
//!   counts are identical to sequential evaluation.
//! * **Shared cross-query cache** ([`Evaluator::with_shared_cache`]): hits
//!   against a [`SharedPageCache`] avoid the network entirely and are
//!   reported separately (`shared_cache_hits`), never as `page_accesses`,
//!   so cost-model comparisons are unaffected.

use crate::cache::SharedPageCache;
use crate::error::EvalError;
use crate::expr::{field_of_column, NalgExpr, Pred};
use crate::fetch::FetchPool;
use crate::Result;
use adm::{
    ColumnData, ColumnRel, ColumnRelBuilder, InclusionConstraint, LinkConstraint, Relation, Symbol,
    Tuple, Url, Value, WebScheme,
};
use obs::trace::{EventKind, TraceSink};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// Errors a [`PageSource`] may return, split into the taxonomy the
/// resilience layer acts on: **transient** failures (a retry may succeed)
/// versus **permanent** ones (retrying is pointless).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The page does not exist (dangling link / deleted page). Permanent.
    NotFound(Url),
    /// The server failed transiently (5xx analogue). Transient.
    Unavailable {
        /// The URL that failed.
        url: Url,
        /// Human-readable failure detail.
        reason: String,
    },
    /// The request timed out. Transient.
    Timeout(Url),
    /// The page was delivered but could not be wrapped (truncated or
    /// corrupt body). Permanent for a given page version.
    Malformed {
        /// The URL whose body failed to parse.
        url: Url,
        /// Human-readable parse-failure detail.
        reason: String,
    },
    /// The fetch was cancelled cooperatively — the request's deadline
    /// expired, a relevance monitor proved the page cannot contribute
    /// an answer tuple, or the fetch layer shut down mid-wait.
    /// Permanent for this evaluation; retrying it would defeat the
    /// cancellation.
    Cancelled(Url),
    /// Anything else (infrastructure failure, …). Permanent.
    Other(String),
}

impl SourceError {
    /// True for failures a retry may fix (unavailable, timeout); false for
    /// permanent conditions (404, malformed body, everything else).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SourceError::Unavailable { .. } | SourceError::Timeout(_)
        )
    }

    /// The URL the error is about, when the error carries one.
    pub fn url(&self) -> Option<&Url> {
        match self {
            SourceError::NotFound(u) | SourceError::Timeout(u) | SourceError::Cancelled(u) => {
                Some(u)
            }
            SourceError::Unavailable { url, .. } | SourceError::Malformed { url, .. } => Some(url),
            SourceError::Other(_) => None,
        }
    }
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::NotFound(u) => write!(f, "not found: {u}"),
            SourceError::Unavailable { url, reason } => {
                write!(f, "unavailable: {url} ({reason})")
            }
            SourceError::Timeout(u) => write!(f, "timeout: {u}"),
            SourceError::Cancelled(u) => write!(f, "cancelled: {u}"),
            SourceError::Malformed { url, reason } => {
                write!(f, "malformed page: {url} ({reason})")
            }
            SourceError::Other(m) => write!(f, "{m}"),
        }
    }
}

/// What evaluation does when a fetch ultimately fails (after whatever
/// retrying the page source performs internally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationMode {
    /// Abort the query on the first non-404 fetch failure (the paper's
    /// implicit model: every navigation succeeds). The default.
    #[default]
    FailFast,
    /// Complete the plan over the reachable pages, skipping failed fetches
    /// and reporting the exact unreachable-URL set in
    /// [`EvalReport::unreachable`].
    Partial,
}

/// Anything that can deliver the wrapped tuple of a page: the live virtual
/// web (`wv-core`'s adapter), a materialized store (`matview`), or a test
/// fixture.
pub trait PageSource {
    /// Fetches and wraps the page at `url`, expected to be an instance of
    /// page-scheme `scheme`.
    fn fetch(&self, url: &Url, scheme: &str) -> std::result::Result<Tuple, SourceError>;

    /// Like [`PageSource::fetch`], additionally reporting the server's
    /// Last-Modified stamp when the source knows it (used to stamp shared
    /// cache entries so URL-check protocols can invalidate stale copies).
    /// The default reports no stamp.
    fn fetch_stamped(
        &self,
        url: &Url,
        scheme: &str,
    ) -> std::result::Result<(Tuple, Option<u64>), SourceError> {
        self.fetch(url, scheme).map(|t| (t, None))
    }
}

/// Configuration for runtime constraint auditing: sample a fraction of
/// the pages a query fetches anyway and check the optimizer's assumed
/// link/inclusion constraints against them with the partial-knowledge
/// verifiers of [`adm::constraints`].
///
/// Auditing is **pure observation**: it never fetches a page, so the
/// answer relation and every access counter are byte-identical with
/// auditing on or off — only [`EvalReport::audit`] differs.
#[derive(Debug, Clone, Default)]
pub struct AuditConfig {
    /// Fraction of fetched pages sampled into the audit instance, in
    /// `[0, 1]`. Zero disables auditing entirely.
    pub rate: f64,
    /// Seed for the deterministic per-URL sampling decision.
    pub seed: u64,
    /// Link constraints to check over the sampled pages.
    pub link: Vec<LinkConstraint>,
    /// Inclusion constraints to check over the sampled pages.
    pub inclusion: Vec<InclusionConstraint>,
}

impl AuditConfig {
    /// True when auditing will record pages and run checks: a positive
    /// rate and at least one constraint to audit.
    pub fn is_active(&self) -> bool {
        self.rate > 0.0 && (!self.link.is_empty() || !self.inclusion.is_empty())
    }
}

/// The audit row of one constraint: how many sampled checks ran and what
/// each detected violation looked like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstraintAudit {
    /// The constraint's canonical display form (its health-registry key).
    pub key: String,
    /// Checks performed over the sampled instance.
    pub checks: u64,
    /// Human-readable violation details, one per violation.
    pub violations: Vec<String>,
}

/// What constraint auditing observed during one evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Distinct pages sampled into the audit instance.
    pub sampled_pages: u64,
    /// One row per configured constraint, in configuration order (link
    /// constraints first, then inclusions).
    pub constraints: Vec<ConstraintAudit>,
}

impl AuditReport {
    /// Total checks across all audited constraints.
    pub fn checks(&self) -> u64 {
        self.constraints.iter().map(|c| c.checks).sum()
    }

    /// Total violations across all audited constraints.
    pub fn violation_count(&self) -> u64 {
        self.constraints
            .iter()
            .map(|c| c.violations.len() as u64)
            .sum()
    }

    /// True when no audited check failed.
    pub fn is_clean(&self) -> bool {
        self.constraints.iter().all(|c| c.violations.is_empty())
    }
}

/// Deterministic per-URL sample decision in `[0, 1)`: FNV-1a over the URL
/// bytes mixed with the seed through a splitmix64 finisher. Independent of
/// fetch order, shared-cache state, and worker count.
fn sample_fraction(seed: u64, url: &Url) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in url.as_str().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = (seed ^ h).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The result of evaluating an expression.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// The answer relation.
    pub relation: Relation,
    /// Actual downloads performed (cache misses).
    pub page_accesses: u64,
    /// Fetches answered by the per-query cache.
    pub cache_hits: u64,
    /// Fetches answered by the shared cross-query cache (zero unless the
    /// evaluator was built [`Evaluator::with_shared_cache`]). These are
    /// *not* page accesses: no connection was opened.
    pub shared_cache_hits: u64,
    /// Links that pointed to missing pages (skipped).
    pub broken_links: u64,
    /// Per-operator distinct-link counts — the quantity the paper's cost
    /// function 𝒞 estimates, one entry per entry-point/navigation operator
    /// in evaluation order.
    pub accesses_by_operator: Vec<(String, u64)>,
    /// The exact set of URLs whose fetch ultimately failed (sorted,
    /// deduplicated): broken links in every mode, plus — under
    /// [`DegradationMode::Partial`] — pages skipped because of non-404
    /// failures. Empty iff the answer is complete.
    pub unreachable: Vec<Url>,
    /// What constraint auditing observed, when an active [`AuditConfig`]
    /// was attached with [`Evaluator::with_audit`]; `None` otherwise.
    pub audit: Option<AuditReport>,
    /// True iff a finite deadline expired during evaluation: the answer
    /// is the partial result over pages fetched in budget, and every
    /// skipped URL is in [`EvalReport::unreachable`].
    pub deadline_exceeded: bool,
    /// URLs whose fetches the relevance monitor cancelled (sorted,
    /// deduplicated). Unlike `unreachable`, these never affect answer
    /// completeness: the monitor proved no output tuple could involve
    /// them. Their cost-model charge in `accesses_by_operator` is still
    /// counted, so cancellation is invisible to the paper's 𝒞 numbers.
    pub cancelled: Vec<Url>,
}

impl EvalReport {
    /// The paper's cost measure: sum of per-operator distinct accesses
    /// (counts a page once per operator that requests it).
    pub fn cost_model_accesses(&self) -> u64 {
        self.accesses_by_operator.iter().map(|(_, n)| n).sum()
    }

    /// True when every page the plan asked for was fetched — the answer
    /// relation is the complete answer, not a partial one.
    pub fn is_complete(&self) -> bool {
        self.unreachable.is_empty()
    }
}

/// The expression evaluator.
pub struct Evaluator<'a, S: PageSource> {
    ws: &'a WebScheme,
    source: &'a S,
    cache_enabled: bool,
    fetch_workers: usize,
    shared: Option<&'a SharedPageCache>,
    degradation: DegradationMode,
    /// Set by [`Evaluator::with_audit`] when the config is active.
    audit: Option<AuditConfig>,
    /// Set by [`Evaluator::with_concurrent_fetch`]: a monomorphized entry
    /// point that spawns the worker pool (requires `S: Sync`, which this
    /// fn pointer captures without constraining the whole type).
    pooled_run: Option<PooledRun<'a, S>>,
    /// Optional trace sink: one [`EventKind::Operator`] span per operator
    /// in the evaluated plan. `None` (the default) costs nothing.
    trace: Option<TraceSink>,
    /// Parent span id the top-level operator span (and pool/audit
    /// events) nest under — set by the serving layer so a whole
    /// evaluation hangs off its request's root span.
    trace_parent: Option<u64>,
    /// When true (the default) operators run on interned, columnar
    /// [`ColumnRel`] batches; [`Evaluator::row_path`] pins the
    /// row-at-a-time reference implementation instead.
    columnar: bool,
    /// The evaluation's wall-clock budget. Infinite (never fires) by
    /// default; when finite, every blocking point checks it and the
    /// evaluation fails over to a partial answer with an exact
    /// not-yet-fetched URL set instead of blocking past it.
    deadline: obs::Deadline,
    /// Cooperative cancellation shared with pool workers and coalescing
    /// followers; auto-created by [`Evaluator::with_relevance_cancel`].
    cancel: Option<obs::CancelToken>,
    /// Hedged-GET policy for the pooled drain loop; `None` disables.
    hedge: Option<crate::fetch::HedgeConfig>,
    /// When true, σ/⋈ residuals above each Follow are used to prove
    /// pending URLs irrelevant and skip their fetches.
    relevance: bool,
}

type PooledRun<'a, S> = fn(&Evaluator<'a, S>, &NalgExpr) -> Result<EvalReport>;

fn run_pooled<S: PageSource + Sync>(ev: &Evaluator<'_, S>, expr: &NalgExpr) -> Result<EvalReport> {
    crate::fetch::with_pool(
        ev.source,
        ev.fetch_workers,
        ev.trace.as_ref(),
        ev.trace_parent,
        ev.cancel.as_ref(),
        |pool| ev.eval_with(expr, Some(pool)),
    )
}

struct Ctx {
    /// Per-query page cache, keyed by interned URL id: a hit hands out a
    /// refcount bump, never a `Url`/`Tuple` clone.
    cache: HashMap<Symbol, Arc<Tuple>>,
    /// Pre-order index of the next operator node (tracing only); matches
    /// the node numbering of `cost::Estimate::nodes` for the same plan.
    node_seq: usize,
    page_accesses: u64,
    cache_hits: u64,
    shared_hits: u64,
    broken_links: u64,
    per_op: Vec<(String, u64)>,
    unreachable: std::collections::BTreeSet<Url>,
    /// Audit bookkeeping (populated only when an audit is attached):
    /// every acquired page by scheme, the dedup set (interned ids), and
    /// the sampled URLs.
    audit_pages: BTreeMap<String, Vec<(Url, Tuple)>>,
    audit_seen: HashSet<Symbol>,
    audit_sampled: BTreeSet<Url>,
    /// URLs the relevance monitor cancelled (answer-complete skips).
    cancelled: BTreeSet<Url>,
    /// Set when a finite deadline fired at any blocking point.
    deadline_exceeded: bool,
    /// Monotonic tag for pooled drains: a deadline-aborted drain leaves
    /// stale completions in the channel; later drains skip them by epoch.
    fetch_epoch: u64,
    /// σ/⋈ residuals on the path from the root to the node being
    /// evaluated (innermost last); only maintained in relevance mode.
    residual: Vec<ResidualFilter>,
}

/// A filter known (from the operators above the current node) to discard
/// rows: a σ predicate, or the join-key value set of an already-computed
/// ⋈ side. A Follow output row that provably fails one can never reach
/// the query's answer — the Benedikt/Gottlob/Senellart relevance
/// criterion specialized to rules 6–9 plan shapes (σ/⋈ over
/// Follow/Unnest chains; π and µ never filter on page content).
enum ResidualFilter {
    /// A selection predicate above the Follow.
    Pred(Pred),
    /// `col` must take one of `allowed` (the other join side's keys).
    InSet {
        col: String,
        allowed: HashSet<Value>,
    },
}

/// One residual atom resolved against a Follow's *input* columns; checks
/// that would bind to the fetched page's own columns (or ambiguously)
/// are dropped as inapplicable — conservative, never unsound.
enum ResolvedCheck<'f> {
    EqConst(usize, &'f Value),
    EqAttrs(usize, usize),
    InSet(usize, &'f HashSet<Value>),
}

/// Resolves `attr` against the Follow's combined output header (input
/// columns ++ page columns), mirroring `adm`'s resolution order: exact
/// name first, then unique dotted suffix. Returns the index only when
/// the unique hit lies on the *input* side — a page-side or ambiguous
/// binding makes the check inapplicable before the page is fetched.
fn resolve_input_side(input_cols: &[&str], page_cols: &[String], attr: &str) -> Option<usize> {
    let all = || {
        input_cols
            .iter()
            .copied()
            .chain(page_cols.iter().map(String::as_str))
    };
    let exact: Vec<usize> = all()
        .enumerate()
        .filter(|(_, c)| *c == attr)
        .map(|(i, _)| i)
        .collect();
    let hits = if exact.is_empty() {
        let suffix = format!(".{attr}");
        all()
            .enumerate()
            .filter(|(_, c)| c.ends_with(&suffix))
            .map(|(i, _)| i)
            .collect()
    } else {
        exact
    };
    match hits.as_slice() {
        [i] if *i < input_cols.len() => Some(*i),
        _ => None,
    }
}

/// Flattens the residual stack into the checks applicable to a Follow's
/// input rows (conjunctions flatten; `Pred` has no disjunction, so each
/// atom is independently necessary and any applicable subset is sound).
fn applicable_checks<'f>(
    filters: &'f [ResidualFilter],
    input_cols: &[&str],
    page_cols: &[String],
) -> Vec<ResolvedCheck<'f>> {
    fn add_pred<'f>(
        p: &'f Pred,
        input_cols: &[&str],
        page_cols: &[String],
        out: &mut Vec<ResolvedCheck<'f>>,
    ) {
        match p {
            Pred::Eq(attr, v) => {
                if let Some(i) = resolve_input_side(input_cols, page_cols, attr) {
                    out.push(ResolvedCheck::EqConst(i, v));
                }
            }
            Pred::EqAttr(a, b) => {
                let (ra, rb) = (
                    resolve_input_side(input_cols, page_cols, a),
                    resolve_input_side(input_cols, page_cols, b),
                );
                if let (Some(i), Some(j)) = (ra, rb) {
                    out.push(ResolvedCheck::EqAttrs(i, j));
                }
            }
            Pred::And(ps) => {
                for p in ps {
                    add_pred(p, input_cols, page_cols, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    for f in filters {
        match f {
            ResidualFilter::Pred(p) => add_pred(p, input_cols, page_cols, &mut out),
            ResidualFilter::InSet { col, allowed } => {
                if let Some(i) = resolve_input_side(input_cols, page_cols, col) {
                    out.push(ResolvedCheck::InSet(i, allowed));
                }
            }
        }
    }
    out
}

/// True iff `row` provably cannot survive the filters above the Follow.
/// Semantics mirror `apply_pred` exactly: constant equality treats
/// `Null = Null` as true, attribute equality never matches nulls, and a
/// join key outside the other side's value set can never join.
fn row_is_dead(row: &[Value], checks: &[ResolvedCheck<'_>]) -> bool {
    checks.iter().any(|c| match c {
        ResolvedCheck::EqConst(i, v) => &row[*i] != *v,
        ResolvedCheck::EqAttrs(i, j) => row[*i].is_null() || row[*i] != row[*j],
        ResolvedCheck::InSet(i, set) => !set.contains(&row[*i]),
    })
}

/// The distinct values of the already-computed join side's column
/// `attr` (nulls included, so the bound is sound whatever the engine's
/// null-join semantics), or `None` when the column does not resolve —
/// the residual is then simply not pushed, which is conservative.
fn join_key_values(car: &Carrier, attr: &str) -> Option<HashSet<Value>> {
    match car {
        Carrier::Row(rel) => {
            let i = rel.resolve(attr).ok()?;
            Some(rel.rows().iter().map(|r| r[i].clone()).collect())
        }
        Carrier::Col(rel) => {
            let i = rel.resolve(attr).ok()?;
            let probe = rel.project_cols(&[i]).to_relation();
            Some(probe.rows().iter().map(|r| r[0].clone()).collect())
        }
    }
}

/// The internal result of one operator: the columnar fast path, or the
/// boundary row representation when the evaluator was pinned to the
/// reference row path. Conversion happens once, at the report boundary.
enum Carrier {
    Row(Relation),
    Col(ColumnRel),
}

impl Carrier {
    fn len(&self) -> usize {
        match self {
            Carrier::Row(r) => r.len(),
            Carrier::Col(c) => c.len(),
        }
    }

    fn into_relation(self) -> Relation {
        match self {
            Carrier::Row(r) => r,
            Carrier::Col(c) => c.to_relation(),
        }
    }
}

impl<'a, S: PageSource> Evaluator<'a, S> {
    /// An evaluator with the per-query page cache enabled (the realistic
    /// engine configuration).
    pub fn new(ws: &'a WebScheme, source: &'a S) -> Self {
        Evaluator {
            ws,
            source,
            cache_enabled: true,
            fetch_workers: 1,
            shared: None,
            degradation: DegradationMode::FailFast,
            audit: None,
            pooled_run: None,
            trace: None,
            trace_parent: None,
            columnar: true,
            deadline: obs::Deadline::infinite(),
            cancel: None,
            hedge: None,
            relevance: false,
        }
    }

    /// Pins the row-at-a-time reference path: every operator runs over
    /// boundary [`Relation`]s exactly as in the pre-columnar engine. Kept
    /// so property tests can assert the columnar kernels produce
    /// byte-identical answers and access counters; production callers have
    /// no reason to use it.
    pub fn row_path(mut self) -> Self {
        self.columnar = false;
        self
    }

    /// Attaches a constraint audit: a deterministic sample of the pages
    /// the query fetches anyway is checked against `cfg`'s constraints and
    /// reported in [`EvalReport::audit`]. An inactive config (zero rate or
    /// no constraints) is dropped. Auditing never fetches a page.
    pub fn with_audit(mut self, cfg: AuditConfig) -> Self {
        self.audit = cfg.is_active().then_some(cfg);
        self
    }

    /// Sets what happens when a fetch ultimately fails: abort the query
    /// ([`DegradationMode::FailFast`], the default) or complete the plan
    /// over reachable pages and report the unreachable set
    /// ([`DegradationMode::Partial`]).
    pub fn with_degradation(mut self, mode: DegradationMode) -> Self {
        self.degradation = mode;
        self
    }

    /// Disables the page cache: each operator re-downloads the pages it
    /// needs, making actual downloads equal the cost model's sum.
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Fetches the distinct links of each navigation with `workers`
    /// persistent worker threads (spawned once per evaluation, shared by
    /// every `follow` in the plan). Links stream into the pool and
    /// completions are consumed as they arrive, hiding network latency;
    /// page-access *counts* and the result relation are unchanged.
    /// Requires a thread-safe page source.
    pub fn with_concurrent_fetch(mut self, workers: usize) -> Self
    where
        S: Sync,
    {
        self.fetch_workers = workers.max(1);
        self.pooled_run = Some(run_pooled::<S>);
        self
    }

    /// Consults (and feeds) a shared cross-query page cache. Hits count as
    /// `shared_cache_hits`, never as `page_accesses`, so every paper
    /// experiment still reproduces its numbers by simply not attaching a
    /// shared cache.
    pub fn with_shared_cache(mut self, cache: &'a SharedPageCache) -> Self {
        self.shared = Some(cache);
        self
    }

    /// Attaches a trace sink: every operator application records an
    /// [`EventKind::Operator`] span carrying its pre-order node index,
    /// output cardinality, and subtree deltas of downloads, cache hits,
    /// shared-cache hits and broken links. Counters and results are
    /// byte-identical with and without a sink; traced shared-cache hits
    /// in particular are never `page_accesses`.
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.trace = Some(sink.clone());
        self
    }

    /// Parents every span this evaluation opens (the top-level operator
    /// span, fetch-worker terminals, audit events) under `parent`, so a
    /// request's whole evaluation is one connected causal tree. A no-op
    /// without a trace sink.
    pub fn with_trace_parent(mut self, parent: u64) -> Self {
        self.trace_parent = Some(parent);
        self
    }

    /// Sets the evaluation's wall-clock budget. When it expires, every
    /// not-yet-fetched URL is reported in [`EvalReport::unreachable`],
    /// [`EvalReport::deadline_exceeded`] is set, and the evaluation
    /// returns the partial answer over the pages fetched so far — even
    /// under [`DegradationMode::FailFast`] (a fired deadline *is* the
    /// degradation decision). The default [`obs::Deadline::infinite`]
    /// never fires and leaves results byte-identical.
    pub fn with_deadline(mut self, deadline: obs::Deadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Shares `token` with pool workers and coalescing followers so
    /// in-flight fetches can be cancelled cooperatively (deadline
    /// aborts, hedge losers, relevance-proved-irrelevant URLs).
    pub fn with_cancel_token(mut self, token: obs::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Enables hedged GETs in the pooled drain loop (requires
    /// [`Evaluator::with_concurrent_fetch`] to have any effect): after
    /// `cfg.delay_us` without a completion, one backup fetch is launched
    /// for the laggard; first response wins, the loser is cancelled
    /// through the cancel token (auto-created if none was attached).
    /// Hedge completions are never charged to `page_accesses`.
    pub fn with_hedging(mut self, cfg: crate::fetch::HedgeConfig) -> Self {
        self.hedge = Some(cfg);
        if self.cancel.is_none() {
            self.cancel = Some(obs::CancelToken::new());
        }
        self
    }

    /// Enables the relevance monitor: σ/⋈ residuals above each Follow
    /// are specialized to the navigation's output header, and a pending
    /// URL whose carrying input rows all provably fail one of them is
    /// cancelled instead of fetched ([`EvalReport::cancelled`]). Rows
    /// of the final answer are unchanged — a cancelled page could only
    /// ever have produced rows the residual filters discard — and the
    /// cost-model charge (`accesses_by_operator`) still counts every
    /// distinct link, so E1–E8 cost numbers stay paper-exact while
    /// `page_accesses` shrinks.
    pub fn with_relevance_cancel(mut self) -> Self {
        self.relevance = true;
        if self.cancel.is_none() {
            self.cancel = Some(obs::CancelToken::new());
        }
        self
    }

    /// Evaluates a computable expression.
    pub fn eval(&self, expr: &NalgExpr) -> Result<EvalReport> {
        if !expr.is_computable() {
            return Err(EvalError::NotComputable(format!(
                "leaves must be entry points: {expr}"
            )));
        }
        match self.pooled_run {
            Some(run) => run(self, expr),
            None => self.eval_with(expr, None),
        }
    }

    fn eval_with(&self, expr: &NalgExpr, pool: Option<&FetchPool>) -> Result<EvalReport> {
        let mut ctx = Ctx {
            cache: HashMap::new(),
            node_seq: 0,
            page_accesses: 0,
            cache_hits: 0,
            shared_hits: 0,
            broken_links: 0,
            per_op: Vec::new(),
            unreachable: std::collections::BTreeSet::new(),
            audit_pages: BTreeMap::new(),
            audit_seen: HashSet::new(),
            audit_sampled: BTreeSet::new(),
            cancelled: std::collections::BTreeSet::new(),
            deadline_exceeded: false,
            fetch_epoch: 0,
            residual: Vec::new(),
        };
        let relation = self
            .eval_expr(expr, &mut ctx, pool, self.trace_parent)?
            .into_relation();
        let audit = self.run_audit(&mut ctx);
        Ok(EvalReport {
            relation,
            page_accesses: ctx.page_accesses,
            cache_hits: ctx.cache_hits,
            shared_cache_hits: ctx.shared_hits,
            broken_links: ctx.broken_links,
            accesses_by_operator: ctx.per_op,
            unreachable: ctx.unreachable.into_iter().collect(),
            audit,
            deadline_exceeded: ctx.deadline_exceeded,
            cancelled: ctx.cancelled.into_iter().collect(),
        })
    }

    /// Records a page acquisition for auditing. A no-op unless an audit is
    /// attached; never fetches or counts anything. Dedup is by interned id
    /// so repeat sightings of a page cost no allocation at all.
    fn audit_record(&self, ctx: &mut Ctx, sym: Symbol, scheme: &str, tuple: &Tuple) {
        let Some(cfg) = &self.audit else { return };
        if !ctx.audit_seen.insert(sym) {
            return;
        }
        let url = sym.to_url();
        if sample_fraction(cfg.seed, &url) < cfg.rate {
            ctx.audit_sampled.insert(url.clone());
        }
        ctx.audit_pages
            .entry(scheme.to_string())
            .or_default()
            .push((url, tuple.clone()));
    }

    /// Checks the configured constraints against the recorded pages with
    /// the partial-knowledge verifiers: sampled pages form the source/sub
    /// instance, every acquired page of the target/sup scheme resolves
    /// references. Pages are sorted by URL first so pooled completion
    /// order cannot affect the report.
    fn run_audit(&self, ctx: &mut Ctx) -> Option<AuditReport> {
        let cfg = self.audit.as_ref()?;
        for pages in ctx.audit_pages.values_mut() {
            pages.sort_by(|a, b| a.0.cmp(&b.0));
        }
        let empty: Vec<(Url, Tuple)> = Vec::new();
        let sampled = |scheme: &str| -> Vec<(Url, Tuple)> {
            ctx.audit_pages
                .get(scheme)
                .map(|pages| {
                    pages
                        .iter()
                        .filter(|(u, _)| ctx.audit_sampled.contains(u))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut constraints = Vec::new();
        for c in &cfg.link {
            let source = sampled(&c.source_attr.scheme);
            let target = ctx.audit_pages.get(&c.target_attr.scheme).unwrap_or(&empty);
            let (checks, violations) =
                adm::constraints::verify_link_constraint_partial(c, &source, target);
            constraints.push(ConstraintAudit {
                key: c.to_string(),
                checks,
                violations: violations.into_iter().map(|v| v.detail).collect(),
            });
        }
        for c in &cfg.inclusion {
            let sub = sampled(&c.sub.scheme);
            let sup = ctx.audit_pages.get(&c.sup.scheme).unwrap_or(&empty);
            let (checks, violations) =
                adm::constraints::verify_inclusion_constraint_partial(c, &sub, sup);
            constraints.push(ConstraintAudit {
                key: c.to_string(),
                checks,
                violations: violations.into_iter().map(|v| v.detail).collect(),
            });
        }
        let report = AuditReport {
            sampled_pages: ctx.audit_sampled.len() as u64,
            constraints,
        };
        if let Some(sink) = &self.trace {
            for row in &report.constraints {
                if row.checks == 0 && row.violations.is_empty() {
                    continue;
                }
                sink.event(
                    EventKind::Constraint,
                    "audit",
                    self.trace_parent,
                    vec![
                        ("constraint".to_string(), row.key.as_str().into()),
                        ("checks".to_string(), row.checks.into()),
                        (
                            "violations".to_string(),
                            (row.violations.len() as u64).into(),
                        ),
                    ],
                );
                for detail in &row.violations {
                    sink.event(
                        EventKind::Constraint,
                        "violation",
                        self.trace_parent,
                        vec![
                            ("constraint".to_string(), row.key.as_str().into()),
                            ("detail".to_string(), detail.as_str().into()),
                        ],
                    );
                }
            }
        }
        Some(report)
    }

    fn fetch(&self, ctx: &mut Ctx, url: &Url, scheme: &str) -> Result<Option<Arc<Tuple>>> {
        let sym = Symbol::from_url(url);
        if self.cache_enabled {
            if let Some(t) = ctx.cache.get(&sym) {
                ctx.cache_hits += 1;
                return Ok(Some(Arc::clone(t)));
            }
        }
        if let Some(shared) = self.shared {
            if let Some(t) = shared.get(url) {
                ctx.shared_hits += 1;
                let t = Arc::new(t);
                if self.cache_enabled {
                    ctx.cache.insert(sym, Arc::clone(&t));
                }
                self.audit_record(ctx, sym, scheme, &t);
                return Ok(Some(t));
            }
        }
        // Caches are free; only the network is gated by the budget. A
        // fired deadline degrades to Partial semantics regardless of the
        // configured mode — the deadline *is* the degradation decision.
        if self.deadline.expired() {
            ctx.deadline_exceeded = true;
            ctx.unreachable.insert(url.clone());
            return Ok(None);
        }
        match timed_fetch_stamped(self.source, url, scheme) {
            Ok((t, lm)) => {
                ctx.page_accesses += 1;
                if let Some(shared) = self.shared {
                    shared.insert(url, &t, lm);
                }
                let t = Arc::new(t);
                if self.cache_enabled {
                    ctx.cache.insert(sym, Arc::clone(&t));
                }
                self.audit_record(ctx, sym, scheme, &t);
                Ok(Some(t))
            }
            Err(SourceError::NotFound(_)) => {
                ctx.broken_links += 1;
                ctx.unreachable.insert(url.clone());
                Ok(None)
            }
            Err(_) if self.degradation == DegradationMode::Partial => {
                ctx.unreachable.insert(url.clone());
                Ok(None)
            }
            // A cancelled fetch under a finite deadline is the budget
            // machinery working as designed, not a query failure.
            Err(SourceError::Cancelled(_)) if self.deadline.is_finite() => {
                ctx.deadline_exceeded = true;
                ctx.unreachable.insert(url.clone());
                Ok(None)
            }
            Err(e) => Err(EvalError::Source(e.to_string())),
        }
    }

    /// The deadline/hedge-aware variant of [`Evaluator::fetch`]: one URL
    /// through the worker pool, so a single laggard GET (an entry point,
    /// typically) can be hedged or abandoned at the budget instead of
    /// blocking the session past it. Cache handling, counters, and error
    /// degradation match `fetch` exactly.
    fn fetch_one_pooled(
        &self,
        ctx: &mut Ctx,
        pool: &FetchPool,
        url: &Url,
        scheme: &str,
    ) -> Result<Option<Arc<Tuple>>> {
        let sym = Symbol::from_url(url);
        if self.cache_enabled {
            if let Some(t) = ctx.cache.get(&sym) {
                ctx.cache_hits += 1;
                return Ok(Some(Arc::clone(t)));
            }
        }
        if let Some(shared) = self.shared {
            if let Some(t) = shared.get(url) {
                ctx.shared_hits += 1;
                let t = Arc::new(t);
                if self.cache_enabled {
                    ctx.cache.insert(sym, Arc::clone(&t));
                }
                self.audit_record(ctx, sym, scheme, &t);
                return Ok(Some(t));
            }
        }
        let mut fetched: Option<Arc<Tuple>> = None;
        self.drain_pooled(
            ctx,
            pool,
            std::slice::from_ref(url),
            scheme,
            |ctx, u, outcome| match outcome {
                Ok((t, lm)) => {
                    ctx.page_accesses += 1;
                    if let Some(shared) = self.shared {
                        shared.insert(&u, &t, lm);
                    }
                    let t = Arc::new(t);
                    let sym = Symbol::from_url(&u);
                    if self.cache_enabled {
                        ctx.cache.insert(sym, Arc::clone(&t));
                    }
                    self.audit_record(ctx, sym, scheme, &t);
                    fetched = Some(t);
                    Ok(())
                }
                Err(SourceError::NotFound(_)) => {
                    ctx.broken_links += 1;
                    ctx.unreachable.insert(u);
                    Ok(())
                }
                Err(_) if self.degradation == DegradationMode::Partial => {
                    ctx.unreachable.insert(u);
                    Ok(())
                }
                Err(e) => Err(EvalError::Source(e.to_string())),
            },
        )?;
        Ok(fetched)
    }

    /// Expands a page tuple into a single-row relation qualified by alias.
    fn expand_page(
        &self,
        alias: &str,
        scheme: &str,
        url: &Url,
        tuple: &Tuple,
    ) -> Result<(Vec<String>, Vec<Value>)> {
        let ps = self.ws.scheme(scheme)?;
        let mut cols = vec![format!("{alias}.URL")];
        let mut vals = vec![Value::Link(url.clone())];
        for f in &ps.fields {
            cols.push(format!("{alias}.{}", f.name));
            vals.push(tuple.get(&f.name).cloned().unwrap_or(Value::Null));
        }
        Ok((cols, vals))
    }

    /// Traced entry to operator evaluation. Without a sink this is a
    /// plain passthrough to [`Evaluator::eval_node`]; with one it opens
    /// a span (pre-order id assignment), evaluates the node, and closes
    /// the span with the node's observations. The `links` field is the
    /// cost-model measure of *this* operator (distinct links charged),
    /// while `downloads`/`*_hits`/`broken_links` are subtree-cumulative
    /// deltas — per-operator exclusive numbers fall out by subtracting
    /// the children's spans.
    fn eval_expr(
        &self,
        expr: &NalgExpr,
        ctx: &mut Ctx,
        pool: Option<&FetchPool>,
        parent: Option<u64>,
    ) -> Result<Carrier> {
        let Some(sink) = &self.trace else {
            return self.eval_node(expr, ctx, pool, parent);
        };
        let node = ctx.node_seq;
        ctx.node_seq += 1;
        let mut span = sink.begin(EventKind::Operator, op_label(expr), parent);
        let before = (
            ctx.page_accesses,
            ctx.cache_hits,
            ctx.shared_hits,
            ctx.broken_links,
            ctx.per_op.len(),
        );
        let result = self.eval_node(expr, ctx, pool, Some(span.id()));
        span.set("node", node);
        match &result {
            Ok(car) => span.set("rows_out", car.len() as u64),
            Err(e) => span.set("error", e.to_string()),
        }
        span.set("downloads", ctx.page_accesses - before.0);
        span.set("cache_hits", ctx.cache_hits - before.1);
        span.set("shared_cache_hits", ctx.shared_hits - before.2);
        span.set("broken_links", ctx.broken_links - before.3);
        if matches!(expr, NalgExpr::Entry { .. } | NalgExpr::Follow { .. })
            && ctx.per_op.len() > before.4
        {
            // The cost-model charge this operator pushed — always the
            // last entry, since it is recorded after the input subtree.
            span.set("links", ctx.per_op[ctx.per_op.len() - 1].1);
        }
        sink.finish(span);
        result
    }

    fn eval_node(
        &self,
        expr: &NalgExpr,
        ctx: &mut Ctx,
        pool: Option<&FetchPool>,
        parent: Option<u64>,
    ) -> Result<Carrier> {
        match expr {
            NalgExpr::External { name } => Err(EvalError::NotComputable(format!(
                "external relation {name}"
            ))),
            NalgExpr::Entry { scheme, alias } => {
                let ep = self.ws.entry_point(scheme).ok_or_else(|| {
                    EvalError::NotComputable(format!("{scheme} is not an entry point"))
                })?;
                let url = ep.url.clone();
                let fetched = match pool {
                    // With a budget or hedging active, even the single
                    // entry GET goes through the pooled drain — a tail
                    // response there is hedged or abandoned at the
                    // deadline rather than blocking the whole session.
                    Some(p) if self.deadline.is_finite() || self.hedge.is_some() => {
                        self.fetch_one_pooled(ctx, p, &url, scheme)?
                    }
                    _ => self.fetch(ctx, &url, scheme)?,
                };
                match fetched {
                    Some(tuple) => {
                        ctx.per_op.push((format!("entry {scheme}"), 1));
                        let (cols, vals) = self.expand_page(alias, scheme, &url, &tuple)?;
                        if self.columnar {
                            let mut b = ColumnRelBuilder::new(&cols);
                            b.push_row(&vals)?;
                            Ok(Carrier::Col(b.finish()))
                        } else {
                            let mut r = Relation::new(cols);
                            r.push_row(vals)?;
                            Ok(Carrier::Row(r))
                        }
                    }
                    // `fetch` already recorded the URL as unreachable; in
                    // Partial mode an unreachable entry point degrades to an
                    // empty relation (with the right header) instead of
                    // aborting the query.
                    None if self.degradation == DegradationMode::Partial
                        || ctx.deadline_exceeded =>
                    {
                        ctx.per_op.push((format!("entry {scheme}"), 1));
                        let cols = crate::expr::page_columns(self.ws, scheme, alias)?;
                        if self.columnar {
                            Ok(Carrier::Col(ColumnRel::empty(&cols)))
                        } else {
                            Ok(Carrier::Row(Relation::new(cols)))
                        }
                    }
                    None => Err(EvalError::Source(format!("entry point {url} missing"))),
                }
            }
            NalgExpr::Select { input, pred } => {
                // Relevance: this predicate filters everything the input
                // subtree produces; Follows inside it can use it to prove
                // pending URLs irrelevant before fetching them.
                if self.relevance {
                    ctx.residual.push(ResidualFilter::Pred(pred.clone()));
                }
                let car = self.eval_expr(input, ctx, pool, parent);
                if self.relevance {
                    ctx.residual.pop();
                }
                match car? {
                    Carrier::Col(rel) => Ok(Carrier::Col(apply_pred_col(&rel, pred)?)),
                    Carrier::Row(rel) => Ok(Carrier::Row(apply_pred(&rel, pred)?)),
                }
            }
            NalgExpr::Project { input, cols } => {
                let car = self.eval_expr(input, ctx, pool, parent)?;
                let refs: Vec<&str> = cols.iter().map(String::as_str).collect();
                match car {
                    Carrier::Col(rel) => Ok(Carrier::Col(rel.project(&refs)?)),
                    Carrier::Row(rel) => Ok(Carrier::Row(rel.project(&refs)?)),
                }
            }
            NalgExpr::Join { left, right, on } => {
                let l = self.eval_expr(left, ctx, pool, parent)?;
                // Relevance: the left side is computed, so its join-key
                // value sets bound what the right side can contribute —
                // a right-side Follow row whose key is outside the set
                // can never join into an output tuple.
                let mut pushed = 0usize;
                if self.relevance {
                    for (a, b) in on {
                        if let Some(allowed) = join_key_values(&l, a) {
                            ctx.residual.push(ResidualFilter::InSet {
                                col: b.clone(),
                                allowed,
                            });
                            pushed += 1;
                        }
                    }
                }
                let r = self.eval_expr(right, ctx, pool, parent);
                for _ in 0..pushed {
                    ctx.residual.pop();
                }
                let r = r?;
                let pairs: Vec<(&str, &str)> =
                    on.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
                match (l, r) {
                    (Carrier::Col(a), Carrier::Col(b)) => Ok(Carrier::Col(a.join(&b, &pairs)?)),
                    (a, b) => Ok(Carrier::Row(
                        a.into_relation().join(&b.into_relation(), &pairs)?,
                    )),
                }
            }
            NalgExpr::Unnest { input, attr } => {
                let car = self.eval_expr(input, ctx, pool, parent)?;
                let qualified = match &car {
                    Carrier::Row(rel) => rel.columns()[rel.resolve(attr)?].clone(),
                    Carrier::Col(rel) => rel.names()[rel.resolve(attr)?].as_str().to_string(),
                };
                let aliases = expr.alias_map()?;
                let field = field_of_column(self.ws, &aliases, &qualified)?;
                let inner: Vec<String> = field
                    .ty
                    .list_fields()
                    .ok_or_else(|| {
                        EvalError::Adm(adm::AdmError::TypeMismatch {
                            attr: qualified.clone(),
                            expected: "list",
                            found: field.ty.kind().to_string(),
                        })
                    })?
                    .iter()
                    .map(|f| f.name.clone())
                    .collect();
                match car {
                    Carrier::Col(rel) => Ok(Carrier::Col(rel.unnest(attr, &inner)?)),
                    Carrier::Row(rel) => Ok(Carrier::Row(rel.unnest(attr, &inner)?)),
                }
            }
            NalgExpr::Follow {
                input,
                link,
                target,
                alias,
            } => match self.eval_expr(input, ctx, pool, parent)? {
                Carrier::Col(rel) => self.follow_col(&rel, link, target, alias, ctx, pool),
                Carrier::Row(rel) => self.follow_row(&rel, link, target, alias, ctx, pool),
            },
        }
    }

    /// Sequentially fetches `misses`, gating each dispatch on the
    /// remaining budget: once the deadline fires, every remaining URL
    /// goes to `unreachable` (the exact not-yet-fetched set) instead of
    /// being fetched past the SLO.
    fn drain_sequential<F>(
        &self,
        ctx: &mut Ctx,
        misses: &[Url],
        scheme: &str,
        mut complete: F,
    ) -> Result<()>
    where
        F: FnMut(
            &mut Ctx,
            Url,
            std::result::Result<(Tuple, Option<u64>), SourceError>,
        ) -> Result<()>,
    {
        for u in misses {
            if self.deadline.expired() {
                ctx.deadline_exceeded = true;
                ctx.unreachable.insert(u.clone());
                continue;
            }
            match timed_fetch_stamped(self.source, u, scheme) {
                Err(SourceError::Cancelled(_))
                    if self.deadline.is_finite()
                        || self.degradation == DegradationMode::Partial =>
                {
                    if self.deadline.expired() {
                        ctx.deadline_exceeded = true;
                    }
                    ctx.unreachable.insert(u.clone());
                }
                outcome => complete(ctx, u.clone(), outcome)?,
            }
        }
        Ok(())
    }

    /// The pooled drain: streams `misses` into the pool, then consumes
    /// completions. Without a finite deadline or hedging this blocks on
    /// each completion exactly as the pre-budget engine did; with
    /// either, the loop waits in bounded quanta so it can (a) abort the
    /// drain the moment the budget is gone — cancelling still-queued
    /// jobs through the token and reporting the exact pending set as
    /// unreachable — and (b) launch one backup fetch per laggard after
    /// the hedge delay, first response winning. Completions are tagged
    /// with a per-drain epoch so a later drain never consumes a stale
    /// completion from an aborted one.
    fn drain_pooled<F>(
        &self,
        ctx: &mut Ctx,
        pool: &FetchPool,
        misses: &[Url],
        scheme: &str,
        mut complete: F,
    ) -> Result<()>
    where
        F: FnMut(
            &mut Ctx,
            Url,
            std::result::Result<(Tuple, Option<u64>), SourceError>,
        ) -> Result<()>,
    {
        use std::time::{Duration, Instant};
        let shutdown = || EvalError::Source("fetch worker pool shut down".to_string());
        if !self.deadline.is_finite() && self.hedge.is_none() {
            // Plain path: pinned byte-identical to the pre-budget engine.
            let mut submitted = 0usize;
            for u in misses {
                if let Some(t) = &self.cancel {
                    t.uncancel_url(u.as_str());
                }
                if !pool.submit(u.clone(), scheme.to_string()) {
                    return Err(shutdown());
                }
                submitted += 1;
            }
            for _ in 0..submitted {
                let Some(done) = pool.recv() else {
                    return Err(shutdown());
                };
                complete(ctx, done.url, done.outcome)?;
            }
            return Ok(());
        }
        ctx.fetch_epoch += 1;
        let epoch = ctx.fetch_epoch;
        struct Pending {
            since: Instant,
            hedged: bool,
        }
        let mut pending: HashMap<Url, Pending> = HashMap::with_capacity(misses.len());
        for u in misses {
            if self.deadline.expired() {
                ctx.deadline_exceeded = true;
                ctx.unreachable.insert(u.clone());
                continue;
            }
            // A URL cancelled for an earlier navigation may be needed
            // now; clear its mark before the workers can see the job.
            if let Some(t) = &self.cancel {
                t.uncancel_url(u.as_str());
            }
            if !pool.submit_tagged(u.clone(), scheme.to_string(), epoch, false) {
                return Err(shutdown());
            }
            pending.insert(
                u.clone(),
                Pending {
                    since: Instant::now(),
                    hedged: false,
                },
            );
        }
        while !pending.is_empty() {
            if self.deadline.expired() {
                // Budget gone: the pending set IS the exact not-yet-
                // fetched URL set. Cancel the queued jobs cooperatively
                // (workers skip them pre-dispatch) and brown out.
                ctx.deadline_exceeded = true;
                for (u, _) in pending.drain() {
                    if let Some(t) = &self.cancel {
                        t.cancel_url(u.as_str());
                    }
                    ctx.unreachable.insert(u);
                }
                break;
            }
            if let Some(h) = &self.hedge {
                let delay = Duration::from_micros(h.delay_us);
                let due: Vec<Url> = pending
                    .iter()
                    .filter(|(_, p)| !p.hedged && p.since.elapsed() >= delay)
                    .map(|(u, _)| u.clone())
                    .collect();
                for u in due {
                    if !pool.submit_tagged(u.clone(), scheme.to_string(), epoch, true) {
                        return Err(shutdown());
                    }
                    h.hedges.inc();
                    pending.get_mut(&u).expect("hedged url is pending").hedged = true;
                }
            }
            // Sleep until the next actionable instant: budget expiry or
            // the earliest hedge coming due.
            let mut wait = self.deadline.remaining().unwrap_or(Duration::from_secs(60));
            if let Some(h) = &self.hedge {
                let delay = Duration::from_micros(h.delay_us);
                if let Some(next) = pending
                    .values()
                    .filter(|p| !p.hedged)
                    .map(|p| delay.saturating_sub(p.since.elapsed()))
                    .min()
                {
                    wait = wait.min(next);
                }
            }
            let wait = wait.clamp(Duration::from_micros(50), Duration::from_secs(60));
            let done = match pool.recv_timeout(wait) {
                Ok(d) => d,
                Err(true) => continue, // quantum elapsed: re-check budget/hedges
                Err(false) => return Err(shutdown()),
            };
            if done.epoch != epoch {
                continue; // stale completion from an aborted earlier drain
            }
            match pending.remove(&done.url) {
                Some(p) => {
                    if p.hedged {
                        // First response wins; cancel the losing twin
                        // before a worker dispatches it.
                        if let Some(t) = &self.cancel {
                            t.cancel_url(done.url.as_str());
                        }
                        if done.hedge {
                            if let Some(h) = &self.hedge {
                                h.hedge_wins.inc();
                            }
                        }
                    }
                    match done.outcome {
                        Err(SourceError::Cancelled(_))
                            if self.deadline.is_finite()
                                || self.degradation == DegradationMode::Partial =>
                        {
                            if self.deadline.expired() {
                                ctx.deadline_exceeded = true;
                            }
                            ctx.unreachable.insert(done.url);
                        }
                        outcome => complete(ctx, done.url, outcome)?,
                    }
                }
                None => {
                    // The losing twin of an already-settled URL. A
                    // cancelled loser cost the server nothing; a
                    // completed one is dropped here — the server counted
                    // its GET, but `page_accesses` charged only the
                    // first completion, keeping the paper's counters
                    // hedge-invisible.
                    if matches!(done.outcome, Err(SourceError::Cancelled(_))) {
                        if let Some(h) = &self.hedge {
                            h.hedge_cancelled.inc();
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The row-at-a-time `follow`: the reference implementation the pin
    /// tests compare against (see [`Evaluator::row_path`]).
    fn follow_row(
        &self,
        rel: &Relation,
        link: &str,
        target: &str,
        alias: &str,
        ctx: &mut Ctx,
        pool: Option<&FetchPool>,
    ) -> Result<Carrier> {
        {
            {
                let li = rel.resolve(link)?;
                // Distinct non-null link values, in first-appearance order.
                let mut seen: HashMap<Url, Option<Vec<Value>>> = HashMap::new();
                let mut order: Vec<Url> = Vec::new();
                for row in rel.rows() {
                    if let Value::Link(u) = &row[li] {
                        if !seen.contains_key(u) {
                            seen.insert(u.clone(), None);
                            order.push(u.clone());
                        }
                    }
                }
                ctx.per_op
                    .push((format!("–{link}→ {target}"), order.len() as u64));
                // Serve per-query cache hits, then shared-cache hits, and
                // only then touch the network for the remaining misses.
                let mut target_cols: Option<Vec<String>> = None;
                let mut misses: Vec<Url> = Vec::new();
                for u in &order {
                    let sym = Symbol::from_url(u);
                    if self.cache_enabled {
                        if let Some(t) = ctx.cache.get(&sym).cloned() {
                            ctx.cache_hits += 1;
                            let (cols, vals) = self.expand_page(alias, target, u, &t)?;
                            target_cols.get_or_insert(cols);
                            seen.insert(u.clone(), Some(vals));
                            continue;
                        }
                    }
                    if let Some(shared) = self.shared {
                        if let Some(t) = shared.get(u) {
                            ctx.shared_hits += 1;
                            let t = Arc::new(t);
                            if self.cache_enabled {
                                ctx.cache.insert(sym, Arc::clone(&t));
                            }
                            self.audit_record(ctx, sym, target, &t);
                            let (cols, vals) = self.expand_page(alias, target, u, &t)?;
                            target_cols.get_or_insert(cols);
                            seen.insert(u.clone(), Some(vals));
                            continue;
                        }
                    }
                    misses.push(u.clone());
                }
                // Relevance: a missed URL whose every carrying row is
                // rejected by some residual σ/⋈ predicate bound entirely
                // to input-side columns can never join into an output
                // tuple — skip its fetch and cancel it through the
                // token. `per_op` above already charged the full distinct
                // set, so the cost-model numbers stay exact.
                if self.relevance && !ctx.residual.is_empty() && !misses.is_empty() {
                    let input_cols: Vec<&str> = rel.columns().iter().map(String::as_str).collect();
                    let page_cols = crate::expr::page_columns(self.ws, target, alias)?;
                    let dead: Vec<Url> = {
                        let checks = applicable_checks(&ctx.residual, &input_cols, &page_cols);
                        if checks.is_empty() {
                            Vec::new()
                        } else {
                            let mut live: HashSet<Url> = HashSet::new();
                            for row in rel.rows() {
                                if let Value::Link(u) = &row[li] {
                                    if !row_is_dead(row, &checks) {
                                        live.insert(u.clone());
                                    }
                                }
                            }
                            misses
                                .iter()
                                .filter(|u| !live.contains(*u))
                                .cloned()
                                .collect()
                        }
                    };
                    if !dead.is_empty() {
                        for u in &dead {
                            if let Some(t) = &self.cancel {
                                t.cancel_url(u.as_str());
                            }
                            ctx.cancelled.insert(u.clone());
                        }
                        let dead: HashSet<Url> = dead.into_iter().collect();
                        misses.retain(|u| !dead.contains(u));
                    }
                }
                // A completed fetch lands in `seen` (keyed by URL), so
                // completion order cannot affect the result.
                let complete = |ctx: &mut Ctx,
                                seen: &mut HashMap<Url, Option<Vec<Value>>>,
                                target_cols: &mut Option<Vec<String>>,
                                u: Url,
                                outcome: std::result::Result<(Tuple, Option<u64>), SourceError>|
                 -> Result<()> {
                    match outcome {
                        Ok((t, lm)) => {
                            ctx.page_accesses += 1;
                            if let Some(shared) = self.shared {
                                shared.insert(&u, &t, lm);
                            }
                            let sym = Symbol::from_url(&u);
                            let t = Arc::new(t);
                            if self.cache_enabled {
                                ctx.cache.insert(sym, Arc::clone(&t));
                            }
                            self.audit_record(ctx, sym, target, &t);
                            let (cols, vals) = self.expand_page(alias, target, &u, &t)?;
                            target_cols.get_or_insert(cols);
                            seen.insert(u, Some(vals));
                            Ok(())
                        }
                        Err(SourceError::NotFound(_)) => {
                            ctx.broken_links += 1;
                            ctx.unreachable.insert(u);
                            Ok(())
                        }
                        Err(_) if self.degradation == DegradationMode::Partial => {
                            ctx.unreachable.insert(u);
                            Ok(())
                        }
                        Err(e) => Err(EvalError::Source(e.to_string())),
                    }
                };
                match pool {
                    // Pipelined: stream every miss into the pool up front,
                    // then wrap and record completions as they arrive —
                    // CPU work overlaps the fetches still in flight.
                    Some(pool) => {
                        self.drain_pooled(ctx, pool, &misses, target, |ctx, u, outcome| {
                            complete(ctx, &mut seen, &mut target_cols, u, outcome)
                        })?;
                    }
                    None => {
                        self.drain_sequential(ctx, &misses, target, |ctx, u, outcome| {
                            complete(ctx, &mut seen, &mut target_cols, u, outcome)
                        })?;
                    }
                }
                let target_cols = match target_cols {
                    Some(c) => c,
                    // No link was followed; synthesize the header statically.
                    None => crate::expr::page_columns(self.ws, target, alias)?,
                };
                let mut columns = rel.columns().to_vec();
                columns.extend(target_cols);
                let mut out = Relation::new(columns);
                for row in rel.rows() {
                    if let Value::Link(u) = &row[li] {
                        if let Some(Some(vals)) = seen.get(u) {
                            let mut new_row = row.clone();
                            new_row.extend(vals.iter().cloned());
                            out.push_row(new_row)?;
                        }
                    }
                }
                Ok(Carrier::Row(out))
            }
        }
    }

    /// The columnar `follow`: the fetch edge stays row-driven — distinct
    /// interned link ids are collected in first-appearance order and
    /// fetched one page at a time (sequential or pooled), so `per_op`
    /// charges and every access counter are byte-identical with the row
    /// path — while the *local* side is batch: fetched pages land in one
    /// [`ColumnRelBuilder`] batch, and the output is a gather
    /// (`take` + `hstack`) over input-row and page-row index vectors
    /// instead of a per-row clone-and-extend.
    fn follow_col(
        &self,
        rel: &ColumnRel,
        link: &str,
        target: &str,
        alias: &str,
        ctx: &mut Ctx,
        pool: Option<&FetchPool>,
    ) -> Result<Carrier> {
        let li = rel.resolve(link)?;
        // Distinct non-null link ids, first-appearance order; non-link
        // cells are skipped, as in the row path.
        let link_of = |row: usize| -> Option<Symbol> {
            let col = &rel.columns()[li];
            match &col.data {
                ColumnData::Link(ids) => col.validity.get(row).then(|| ids[row]),
                ColumnData::Values(vs) => vs[row].as_link().map(Symbol::from_url),
                _ => None,
            }
        };
        let mut page_row: HashMap<Symbol, Option<u32>> = HashMap::new();
        let mut order: Vec<Symbol> = Vec::new();
        for row in 0..rel.len() {
            if let Some(s) = link_of(row) {
                if let std::collections::hash_map::Entry::Vacant(e) = page_row.entry(s) {
                    e.insert(None);
                    order.push(s);
                }
            }
        }
        ctx.per_op
            .push((format!("–{link}→ {target}"), order.len() as u64));
        // The page header is static (alias.URL + alias.fields), so the
        // batch builder exists before any page arrives.
        let header = crate::expr::page_columns(self.ws, target, alias)?;
        let mut pages = ColumnRelBuilder::new(&header);
        // Serve per-query cache hits, then shared-cache hits, and only
        // then touch the network for the remaining misses.
        let mut misses: Vec<Symbol> = Vec::new();
        for &s in &order {
            if self.cache_enabled {
                if let Some(t) = ctx.cache.get(&s).cloned() {
                    ctx.cache_hits += 1;
                    let url = s.to_url();
                    let (_, vals) = self.expand_page(alias, target, &url, &t)?;
                    pages.push_row(&vals)?;
                    page_row.insert(s, Some(pages.len() as u32 - 1));
                    continue;
                }
            }
            if let Some(shared) = self.shared {
                let url = s.to_url();
                if let Some(t) = shared.get(&url) {
                    ctx.shared_hits += 1;
                    let t = Arc::new(t);
                    if self.cache_enabled {
                        ctx.cache.insert(s, Arc::clone(&t));
                    }
                    self.audit_record(ctx, s, target, &t);
                    let (_, vals) = self.expand_page(alias, target, &url, &t)?;
                    pages.push_row(&vals)?;
                    page_row.insert(s, Some(pages.len() as u32 - 1));
                    continue;
                }
            }
            misses.push(s);
        }
        // Relevance: same dead-URL pruning as the row path, probing a
        // materialized copy of the input only when some residual check
        // actually binds to input-side columns.
        if self.relevance && !ctx.residual.is_empty() && !misses.is_empty() {
            let names: Vec<String> = rel.names().iter().map(|s| s.as_str().to_string()).collect();
            let input_cols: Vec<&str> = names.iter().map(String::as_str).collect();
            let dead: Vec<Symbol> = {
                let checks = applicable_checks(&ctx.residual, &input_cols, &header);
                if checks.is_empty() {
                    Vec::new()
                } else {
                    let probe = rel.to_relation();
                    let mut live: HashSet<Symbol> = HashSet::new();
                    for (row_idx, row) in probe.rows().iter().enumerate() {
                        if let Some(s) = link_of(row_idx) {
                            if !row_is_dead(row, &checks) {
                                live.insert(s);
                            }
                        }
                    }
                    misses
                        .iter()
                        .filter(|s| !live.contains(*s))
                        .copied()
                        .collect()
                }
            };
            if !dead.is_empty() {
                for s in &dead {
                    let url = s.to_url();
                    if let Some(t) = &self.cancel {
                        t.cancel_url(url.as_str());
                    }
                    ctx.cancelled.insert(url);
                }
                let dead: HashSet<Symbol> = dead.into_iter().collect();
                misses.retain(|s| !dead.contains(s));
            }
        }
        // A completed fetch lands in `page_row` (keyed by interned id), so
        // pooled completion order cannot affect the result.
        let complete = |ctx: &mut Ctx,
                        pages: &mut ColumnRelBuilder,
                        page_row: &mut HashMap<Symbol, Option<u32>>,
                        s: Symbol,
                        outcome: std::result::Result<(Tuple, Option<u64>), SourceError>|
         -> Result<()> {
            match outcome {
                Ok((t, lm)) => {
                    ctx.page_accesses += 1;
                    let url = s.to_url();
                    if let Some(shared) = self.shared {
                        shared.insert(&url, &t, lm);
                    }
                    let t = Arc::new(t);
                    if self.cache_enabled {
                        ctx.cache.insert(s, Arc::clone(&t));
                    }
                    self.audit_record(ctx, s, target, &t);
                    let (_, vals) = self.expand_page(alias, target, &url, &t)?;
                    pages.push_row(&vals)?;
                    page_row.insert(s, Some(pages.len() as u32 - 1));
                    Ok(())
                }
                Err(SourceError::NotFound(_)) => {
                    ctx.broken_links += 1;
                    ctx.unreachable.insert(s.to_url());
                    Ok(())
                }
                Err(_) if self.degradation == DegradationMode::Partial => {
                    ctx.unreachable.insert(s.to_url());
                    Ok(())
                }
                Err(e) => Err(EvalError::Source(e.to_string())),
            }
        };
        let miss_urls: Vec<Url> = misses.iter().map(|s| s.to_url()).collect();
        match pool {
            // Pipelined: stream every miss into the pool up front, then
            // wrap and record completions as they arrive.
            Some(pool) => {
                self.drain_pooled(ctx, pool, &miss_urls, target, |ctx, u, outcome| {
                    complete(
                        ctx,
                        &mut pages,
                        &mut page_row,
                        Symbol::from_url(&u),
                        outcome,
                    )
                })?;
            }
            None => {
                self.drain_sequential(ctx, &miss_urls, target, |ctx, u, outcome| {
                    complete(
                        ctx,
                        &mut pages,
                        &mut page_row,
                        Symbol::from_url(&u),
                        outcome,
                    )
                })?;
            }
        }
        // Output assembly: one gather per side, input-row order.
        let mut li_idx: Vec<u32> = Vec::new();
        let mut ri_idx: Vec<u32> = Vec::new();
        for row in 0..rel.len() {
            if let Some(s) = link_of(row) {
                if let Some(Some(pr)) = page_row.get(&s) {
                    li_idx.push(row as u32);
                    ri_idx.push(*pr);
                }
            }
        }
        let out = rel.take(&li_idx).hstack(pages.finish().take(&ri_idx));
        Ok(Carrier::Col(out))
    }
}

/// Fetches through the source, charging wall-clock time to the ambient
/// request's fetch clock when one is installed (see [`obs::reqctx`]).
/// Without a context this is a plain passthrough — timing never touches
/// results or counters.
pub(crate) fn timed_fetch_stamped<S: PageSource + ?Sized>(
    source: &S,
    url: &Url,
    scheme: &str,
) -> std::result::Result<(Tuple, Option<u64>), SourceError> {
    match obs::reqctx::current() {
        Some(ctx) => {
            let t0 = std::time::Instant::now();
            let out = source.fetch_stamped(url, scheme);
            ctx.clock.add_us(t0.elapsed().as_micros() as u64);
            out
        }
        None => source.fetch_stamped(url, scheme),
    }
}

/// Display label of one operator node, shared (by convention) with the
/// per-node labels of `cost::Estimate` so EXPLAIN ANALYZE rows read the
/// same on both sides of the predicted/observed join.
fn op_label(expr: &NalgExpr) -> String {
    match expr {
        NalgExpr::External { name } => format!("external {name}"),
        NalgExpr::Entry { scheme, .. } => format!("entry {scheme}"),
        NalgExpr::Select { .. } => "σ".to_string(),
        NalgExpr::Project { .. } => "π".to_string(),
        NalgExpr::Join { .. } => "⋈".to_string(),
        NalgExpr::Unnest { attr, .. } => format!("µ {attr}"),
        NalgExpr::Follow { link, target, .. } => format!("–{link}→ {target}"),
    }
}

/// Applies a predicate to a columnar relation: each atom produces an index
/// vector over the current batch, gathered with one `take` per conjunct.
/// Semantics match [`apply_pred`] cell for cell (including `Null = Null`
/// for constant equality and null-never-equal for attribute equality).
fn apply_pred_col(rel: &ColumnRel, pred: &Pred) -> Result<ColumnRel> {
    match pred {
        Pred::Eq(attr, value) => {
            let i = rel.resolve(attr)?;
            Ok(rel.take(&rel.select_eq_const(i, value)))
        }
        Pred::EqAttr(a, b) => {
            let i = rel.resolve(a)?;
            let j = rel.resolve(b)?;
            Ok(rel.take(&rel.select_eq_cols(i, j)))
        }
        Pred::And(ps) => {
            let mut cur = rel.clone();
            for p in ps {
                cur = apply_pred_col(&cur, p)?;
            }
            Ok(cur)
        }
    }
}

/// Applies a predicate to a relation.
fn apply_pred(rel: &Relation, pred: &Pred) -> Result<Relation> {
    match pred {
        Pred::Eq(attr, value) => {
            let i = rel.resolve(attr)?;
            Ok(rel.select(|row| &row[i] == value))
        }
        Pred::EqAttr(a, b) => {
            let i = rel.resolve(a)?;
            let j = rel.resolve(b)?;
            Ok(rel.select(|row| !row[i].is_null() && row[i] == row[j]))
        }
        Pred::And(ps) => {
            let mut cur = rel.clone();
            for p in ps {
                cur = apply_pred(&cur, p)?;
            }
            Ok(cur)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;
    use adm::{Field, PageScheme};

    /// An in-memory page source over explicit tuples.
    struct MapSource {
        pages: HashMap<Url, Tuple>,
    }

    impl PageSource for MapSource {
        fn fetch(&self, url: &Url, _scheme: &str) -> std::result::Result<Tuple, SourceError> {
            self.pages
                .get(url)
                .cloned()
                .ok_or_else(|| SourceError::NotFound(url.clone()))
        }
    }

    fn scheme() -> WebScheme {
        let list = PageScheme::new(
            "ListPage",
            vec![Field::list(
                "Items",
                vec![Field::text("Name"), Field::link("ToItem", "ItemPage")],
            )],
        )
        .unwrap();
        let item =
            PageScheme::new("ItemPage", vec![Field::text("Name"), Field::text("Kind")]).unwrap();
        WebScheme::builder()
            .scheme(list)
            .scheme(item)
            .entry_point("ListPage", "/list.html")
            .build()
            .unwrap()
    }

    fn source() -> MapSource {
        let mut pages = HashMap::new();
        pages.insert(
            Url::new("/list.html"),
            Tuple::new().with_list(
                "Items",
                vec![
                    Tuple::new()
                        .with("Name", "a")
                        .with("ToItem", Value::link("/i/a")),
                    Tuple::new()
                        .with("Name", "b")
                        .with("ToItem", Value::link("/i/b")),
                    Tuple::new()
                        .with("Name", "c")
                        .with("ToItem", Value::link("/i/c")),
                ],
            ),
        );
        for (n, k) in [("a", "x"), ("b", "y"), ("c", "x")] {
            pages.insert(
                Url::new(format!("/i/{n}")),
                Tuple::new().with("Name", n).with("Kind", k),
            );
        }
        MapSource { pages }
    }

    fn nav() -> NalgExpr {
        NalgExpr::entry("ListPage")
            .unnest("Items")
            .follow("ToItem", "ItemPage")
    }

    #[test]
    fn full_navigation() {
        let ws = scheme();
        let src = source();
        let report = Evaluator::new(&ws, &src).eval(&nav()).unwrap();
        assert_eq!(report.relation.len(), 3);
        assert_eq!(report.page_accesses, 4); // entry + 3 items
        assert_eq!(report.cost_model_accesses(), 4);
        assert_eq!(report.broken_links, 0);
    }

    #[test]
    fn selection_and_projection() {
        let ws = scheme();
        let src = source();
        let e = nav()
            .select(Pred::eq("Kind", "x"))
            .project(vec!["ItemPage.Name"]);
        let report = Evaluator::new(&ws, &src).eval(&e).unwrap();
        assert_eq!(report.relation.len(), 2);
        let names: Vec<String> = report
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"c".to_string()));
    }

    #[test]
    fn selection_before_follow_reduces_accesses() {
        let ws = scheme();
        let src = source();
        let e = NalgExpr::entry("ListPage")
            .unnest("Items")
            .select(Pred::eq("Name", "b"))
            .follow("ToItem", "ItemPage");
        let report = Evaluator::new(&ws, &src).eval(&e).unwrap();
        assert_eq!(report.relation.len(), 1);
        assert_eq!(report.page_accesses, 2); // entry + 1 item
    }

    #[test]
    fn join_on_pointer_sets() {
        let ws = scheme();
        let src = source();
        // Join the unnested list with itself through two aliases via a
        // second entry alias, on the link column.
        let left = NalgExpr::entry("ListPage").unnest("Items");
        let right = NalgExpr::entry_as("ListPage", "L2").unnest("Items");
        let e = left
            .join(right, vec![("ListPage.Items.ToItem", "L2.Items.ToItem")])
            .follow("ListPage.Items.ToItem", "ItemPage");
        let report = Evaluator::new(&ws, &src).eval(&e).unwrap();
        assert_eq!(report.relation.len(), 3);
        // entry fetched once thanks to the cache (two aliases, same URL)
        assert_eq!(report.page_accesses, 4);
        assert_eq!(report.cache_hits, 1);
        // the cost model counts both entry accesses
        assert_eq!(report.cost_model_accesses(), 5);
    }

    #[test]
    fn without_cache_downloads_match_cost_model() {
        let ws = scheme();
        let src = source();
        let left = NalgExpr::entry("ListPage").unnest("Items");
        let right = NalgExpr::entry_as("ListPage", "L2").unnest("Items");
        let e = left
            .join(right, vec![("ListPage.Items.ToItem", "L2.Items.ToItem")])
            .follow("ListPage.Items.ToItem", "ItemPage");
        let report = Evaluator::new(&ws, &src).without_cache().eval(&e).unwrap();
        assert_eq!(report.page_accesses, report.cost_model_accesses());
    }

    #[test]
    fn broken_links_are_skipped_and_counted() {
        let ws = scheme();
        let mut src = source();
        src.pages.remove(&Url::new("/i/b"));
        let report = Evaluator::new(&ws, &src).eval(&nav()).unwrap();
        assert_eq!(report.relation.len(), 2);
        assert_eq!(report.broken_links, 1);
    }

    #[test]
    fn external_leaf_not_computable() {
        let ws = scheme();
        let src = source();
        let e = NalgExpr::external("R");
        assert!(matches!(
            Evaluator::new(&ws, &src).eval(&e),
            Err(EvalError::NotComputable(_))
        ));
    }

    #[test]
    fn entry_must_be_declared() {
        let ws = scheme();
        let src = source();
        let e = NalgExpr::entry("ItemPage"); // not an entry point
        assert!(matches!(
            Evaluator::new(&ws, &src).eval(&e),
            Err(EvalError::NotComputable(_))
        ));
    }

    #[test]
    fn eq_attr_predicate() {
        let ws = scheme();
        let src = source();
        // Items whose anchor equals the item page's name (all of them).
        let e = nav().select(Pred::EqAttr(
            "ListPage.Items.Name".into(),
            "ItemPage.Name".into(),
        ));
        let report = Evaluator::new(&ws, &src).eval(&e).unwrap();
        assert_eq!(report.relation.len(), 3);
    }

    #[test]
    fn per_operator_accounting() {
        let ws = scheme();
        let src = source();
        let report = Evaluator::new(&ws, &src).eval(&nav()).unwrap();
        assert_eq!(
            report.accesses_by_operator,
            vec![
                ("entry ListPage".to_string(), 1),
                ("–ToItem→ ItemPage".to_string(), 3),
            ]
        );
    }

    #[test]
    fn concurrent_fetch_equals_sequential() {
        let ws = scheme();
        let src = source();
        let seq = Evaluator::new(&ws, &src).eval(&nav()).unwrap();
        for workers in [1, 2, 8] {
            let par = Evaluator::new(&ws, &src)
                .with_concurrent_fetch(workers)
                .eval(&nav())
                .unwrap();
            assert_eq!(par.relation.sorted(), seq.relation.sorted());
            assert_eq!(par.page_accesses, seq.page_accesses);
            assert_eq!(par.accesses_by_operator, seq.accesses_by_operator);
        }
    }

    #[test]
    fn concurrent_fetch_skips_broken_links() {
        let ws = scheme();
        let mut src = source();
        src.pages.remove(&Url::new("/i/b"));
        let report = Evaluator::new(&ws, &src)
            .with_concurrent_fetch(4)
            .eval(&nav())
            .unwrap();
        assert_eq!(report.relation.len(), 2);
        assert_eq!(report.broken_links, 1);
    }

    #[test]
    fn shared_cache_serves_second_query_without_accesses() {
        let ws = scheme();
        let src = source();
        let shared = crate::cache::SharedPageCache::default();
        let cold = Evaluator::new(&ws, &src)
            .with_shared_cache(&shared)
            .eval(&nav())
            .unwrap();
        assert_eq!(cold.page_accesses, 4);
        assert_eq!(cold.shared_cache_hits, 0);
        let warm = Evaluator::new(&ws, &src)
            .with_shared_cache(&shared)
            .eval(&nav())
            .unwrap();
        assert_eq!(warm.page_accesses, 0);
        assert_eq!(warm.shared_cache_hits, 4);
        assert_eq!(warm.relation.sorted(), cold.relation.sorted());
        // The paper's cost measure is unaffected by the shared cache.
        assert_eq!(warm.cost_model_accesses(), cold.cost_model_accesses());
    }

    #[test]
    fn shared_cache_with_concurrent_fetch_equals_sequential() {
        let ws = scheme();
        let src = source();
        let baseline = Evaluator::new(&ws, &src).eval(&nav()).unwrap();
        let shared = crate::cache::SharedPageCache::default();
        let cold = Evaluator::new(&ws, &src)
            .with_shared_cache(&shared)
            .with_concurrent_fetch(8)
            .eval(&nav())
            .unwrap();
        assert_eq!(cold.relation.sorted(), baseline.relation.sorted());
        assert_eq!(cold.page_accesses, baseline.page_accesses);
        let warm = Evaluator::new(&ws, &src)
            .with_shared_cache(&shared)
            .with_concurrent_fetch(8)
            .eval(&nav())
            .unwrap();
        assert_eq!(warm.relation.sorted(), baseline.relation.sorted());
        assert_eq!(warm.page_accesses, 0);
        assert_eq!(warm.shared_cache_hits, 4);
        assert_eq!(warm.accesses_by_operator, baseline.accesses_by_operator);
    }

    #[test]
    fn follow_with_no_links_yields_empty_relation_with_header() {
        let ws = scheme();
        let mut pages = HashMap::new();
        pages.insert(
            Url::new("/list.html"),
            Tuple::new().with_list("Items", vec![]),
        );
        let src = MapSource { pages };
        let report = Evaluator::new(&ws, &src).eval(&nav()).unwrap();
        assert!(report.relation.is_empty());
        assert!(report
            .relation
            .columns()
            .contains(&"ItemPage.Kind".to_string()));
    }

    /// A source where named URLs fail with a given error.
    struct FailingSource {
        inner: MapSource,
        fail: HashMap<Url, SourceError>,
    }

    impl PageSource for FailingSource {
        fn fetch(&self, url: &Url, scheme: &str) -> std::result::Result<Tuple, SourceError> {
            if let Some(e) = self.fail.get(url) {
                return Err(e.clone());
            }
            self.inner.fetch(url, scheme)
        }
    }

    fn failing(urls: &[(&str, SourceError)]) -> FailingSource {
        FailingSource {
            inner: source(),
            fail: urls
                .iter()
                .map(|(u, e)| (Url::new(*u), e.clone()))
                .collect(),
        }
    }

    #[test]
    fn fail_fast_aborts_on_transient_error() {
        let ws = scheme();
        let src = failing(&[("/i/b", SourceError::Timeout(Url::new("/i/b")))]);
        let err = Evaluator::new(&ws, &src).eval(&nav()).unwrap_err();
        assert!(matches!(err, EvalError::Source(_)));
    }

    #[test]
    fn partial_mode_skips_failed_pages_and_reports_them() {
        let ws = scheme();
        let src = failing(&[
            ("/i/b", SourceError::Timeout(Url::new("/i/b"))),
            (
                "/i/c",
                SourceError::Unavailable {
                    url: Url::new("/i/c"),
                    reason: "503".into(),
                },
            ),
        ]);
        let report = Evaluator::new(&ws, &src)
            .with_degradation(DegradationMode::Partial)
            .eval(&nav())
            .unwrap();
        assert_eq!(report.relation.len(), 1);
        assert!(!report.is_complete());
        assert_eq!(report.unreachable, vec![Url::new("/i/b"), Url::new("/i/c")]);
        // Failed fetches are not downloads.
        assert_eq!(report.page_accesses, 2); // entry + /i/a
                                             // The cost model still charges the *attempted* distinct links.
        assert_eq!(report.cost_model_accesses(), 4);
    }

    #[test]
    fn partial_mode_records_broken_links_as_unreachable() {
        let ws = scheme();
        let mut src = source();
        src.pages.remove(&Url::new("/i/b"));
        let report = Evaluator::new(&ws, &src)
            .with_degradation(DegradationMode::Partial)
            .eval(&nav())
            .unwrap();
        assert_eq!(report.relation.len(), 2);
        assert_eq!(report.broken_links, 1);
        assert_eq!(report.unreachable, vec![Url::new("/i/b")]);
    }

    #[test]
    fn partial_mode_degrades_missing_entry_point_to_empty_relation() {
        let ws = scheme();
        let src = failing(&[(
            "/list.html",
            SourceError::Unavailable {
                url: Url::new("/list.html"),
                reason: "503".into(),
            },
        )]);
        let report = Evaluator::new(&ws, &src)
            .with_degradation(DegradationMode::Partial)
            .eval(&nav())
            .unwrap();
        assert!(report.relation.is_empty());
        assert!(!report.is_complete());
        assert_eq!(report.unreachable, vec![Url::new("/list.html")]);
        assert_eq!(report.page_accesses, 0);
    }

    #[test]
    fn complete_run_reports_no_unreachable() {
        let ws = scheme();
        let src = source();
        for mode in [DegradationMode::FailFast, DegradationMode::Partial] {
            let report = Evaluator::new(&ws, &src)
                .with_degradation(mode)
                .eval(&nav())
                .unwrap();
            assert!(report.is_complete());
            assert!(report.unreachable.is_empty());
        }
    }

    #[test]
    fn partial_mode_with_pool_matches_sequential() {
        let ws = scheme();
        let src = failing(&[("/i/b", SourceError::Timeout(Url::new("/i/b")))]);
        let seq = Evaluator::new(&ws, &src)
            .with_degradation(DegradationMode::Partial)
            .eval(&nav())
            .unwrap();
        let par = Evaluator::new(&ws, &src)
            .with_degradation(DegradationMode::Partial)
            .with_concurrent_fetch(4)
            .eval(&nav())
            .unwrap();
        assert_eq!(par.relation.sorted(), seq.relation.sorted());
        assert_eq!(par.unreachable, seq.unreachable);
        assert_eq!(par.page_accesses, seq.page_accesses);
    }

    fn audit_cfg(rate: f64) -> AuditConfig {
        use adm::AttrRef;
        AuditConfig {
            rate,
            seed: 7,
            link: vec![LinkConstraint::new(
                AttrRef::new("ListPage", vec!["Items", "ToItem"]),
                AttrRef::new("ListPage", vec!["Items", "Name"]),
                AttrRef::new("ItemPage", vec!["Name"]),
            )],
            inclusion: vec![],
        }
    }

    #[test]
    fn audit_is_pure_observation() {
        let ws = scheme();
        let src = source();
        let plain = Evaluator::new(&ws, &src).eval(&nav()).unwrap();
        let audited = Evaluator::new(&ws, &src)
            .with_audit(audit_cfg(1.0))
            .eval(&nav())
            .unwrap();
        // Everything the paper measures is byte-identical; only the audit
        // field differs.
        assert_eq!(audited.relation, plain.relation);
        assert_eq!(audited.page_accesses, plain.page_accesses);
        assert_eq!(audited.cache_hits, plain.cache_hits);
        assert_eq!(audited.accesses_by_operator, plain.accesses_by_operator);
        let audit = audited.audit.unwrap();
        assert_eq!(audit.checks(), 3, "all three anchors checked at rate 1");
        assert!(audit.is_clean());
        assert_eq!(audit.sampled_pages, 4);
    }

    #[test]
    fn audit_detects_replica_drift_without_fetching() {
        let ws = scheme();
        let mut src = source();
        // The item page's Name drifts away from the anchors pointing at it.
        src.pages.insert(
            Url::new("/i/b"),
            Tuple::new().with("Name", "b [drift]").with("Kind", "y"),
        );
        let report = Evaluator::new(&ws, &src)
            .with_audit(audit_cfg(1.0))
            .eval(&nav())
            .unwrap();
        assert_eq!(report.page_accesses, 4, "auditing never fetches");
        let audit = report.audit.unwrap();
        assert_eq!(audit.violation_count(), 1);
        assert!(audit.constraints[0].violations[0].contains("/i/b"));
    }

    #[test]
    fn zero_rate_audit_is_disabled() {
        let ws = scheme();
        let src = source();
        let report = Evaluator::new(&ws, &src)
            .with_audit(audit_cfg(0.0))
            .eval(&nav())
            .unwrap();
        assert!(report.audit.is_none());
    }

    #[test]
    fn pooled_audit_matches_sequential() {
        let ws = scheme();
        let src = source();
        let seq = Evaluator::new(&ws, &src)
            .with_audit(audit_cfg(0.6))
            .eval(&nav())
            .unwrap();
        for workers in [2, 8] {
            let par = Evaluator::new(&ws, &src)
                .with_audit(audit_cfg(0.6))
                .with_concurrent_fetch(workers)
                .eval(&nav())
                .unwrap();
            assert_eq!(par.audit, seq.audit, "sampling is order-independent");
        }
    }

    /// A source that panics on one URL.
    struct PanickingSource {
        inner: MapSource,
    }

    impl PageSource for PanickingSource {
        fn fetch(&self, url: &Url, scheme: &str) -> std::result::Result<Tuple, SourceError> {
            if url.as_str() == "/i/b" {
                panic!("source blew up");
            }
            self.inner.fetch(url, scheme)
        }
    }

    #[test]
    fn pooled_eval_survives_panicking_source() {
        let ws = scheme();
        let src = PanickingSource { inner: source() };
        // FailFast: the panic surfaces as a source error, not a process
        // abort (the scope join would otherwise re-raise it).
        let err = Evaluator::new(&ws, &src)
            .with_concurrent_fetch(3)
            .eval(&nav())
            .unwrap_err();
        match err {
            EvalError::Source(m) => assert!(m.contains("fetch worker panicked"), "got: {m}"),
            other => panic!("unexpected error: {other:?}"),
        }
        // Partial: the poisoned page is skipped like any other failure.
        let report = Evaluator::new(&ws, &src)
            .with_concurrent_fetch(3)
            .with_degradation(DegradationMode::Partial)
            .eval(&nav())
            .unwrap();
        assert_eq!(report.relation.len(), 2);
        assert_eq!(report.unreachable, vec![Url::new("/i/b")]);
    }

    /// A source that sleeps before serving named URLs. With `slow_once`
    /// only the first attempt per URL sleeps, so a hedged backup fetch
    /// can win deterministically.
    struct SlowSource {
        inner: MapSource,
        slow: HashMap<Url, std::time::Duration>,
        slow_once: bool,
        attempts: std::sync::Mutex<HashMap<Url, u32>>,
    }

    fn slow(urls: &[&str], ms: u64, slow_once: bool) -> SlowSource {
        SlowSource {
            inner: source(),
            slow: urls
                .iter()
                .map(|u| (Url::new(*u), std::time::Duration::from_millis(ms)))
                .collect(),
            slow_once,
            attempts: std::sync::Mutex::new(HashMap::new()),
        }
    }

    impl PageSource for SlowSource {
        fn fetch(&self, url: &Url, scheme: &str) -> std::result::Result<Tuple, SourceError> {
            if let Some(d) = self.slow.get(url) {
                let n = {
                    let mut a = self.attempts.lock().unwrap();
                    let e = a.entry(url.clone()).or_insert(0);
                    *e += 1;
                    *e
                };
                if !self.slow_once || n == 1 {
                    // Quantized, abandonable sleep — mirrors websim's
                    // simulated waits: a requester whose ambient deadline
                    // fired stops waiting out the tail.
                    let t0 = std::time::Instant::now();
                    while t0.elapsed() < *d {
                        if obs::reqctx::current().is_some_and(|c| c.deadline.expired()) {
                            break;
                        }
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                }
            }
            self.inner.fetch(url, scheme)
        }
    }

    #[test]
    fn expired_deadline_fails_over_to_partial_even_under_fail_fast() {
        let ws = scheme();
        let src = source();
        let report = Evaluator::new(&ws, &src)
            .with_deadline(obs::Deadline::after_us(0))
            .eval(&nav())
            .unwrap();
        assert!(report.deadline_exceeded);
        assert!(report.relation.is_empty());
        assert_eq!(report.unreachable, vec![Url::new("/list.html")]);
        assert_eq!(report.page_accesses, 0, "nothing fetched past the budget");
    }

    #[test]
    fn deadline_mid_query_browns_out_with_exact_pending_set() {
        let ws = scheme();
        let src = slow(&["/i/a", "/i/b", "/i/c"], 20, false);
        let report = Evaluator::new(&ws, &src)
            .with_degradation(DegradationMode::Partial)
            .with_deadline(obs::Deadline::after_us(10_000))
            .eval(&nav())
            .unwrap();
        assert!(report.deadline_exceeded);
        assert!(!report.is_complete());
        // Every link is either delivered or reported — never silently lost.
        assert_eq!(report.relation.len() + report.unreachable.len(), 3);
        assert!(!report.unreachable.is_empty());
        // The cost model still charges the attempted distinct links.
        assert_eq!(report.cost_model_accesses(), 4);
    }

    #[test]
    fn pooled_deadline_abort_cancels_pending_and_reports_them() {
        let ws = scheme();
        let src = slow(&["/i/a", "/i/b", "/i/c"], 50, false);
        let token = obs::CancelToken::new();
        let report = Evaluator::new(&ws, &src)
            .with_concurrent_fetch(1)
            .with_degradation(DegradationMode::Partial)
            .with_deadline(obs::Deadline::after_us(10_000))
            .with_cancel_token(token.clone())
            .eval(&nav())
            .unwrap();
        assert!(report.deadline_exceeded);
        assert_eq!(report.relation.len() + report.unreachable.len(), 3);
        assert!(report.unreachable.len() >= 2);
        // Still-queued jobs were cancelled through the token so pool
        // workers skip them pre-dispatch.
        assert!(token.cancelled_url_count() >= 2);
    }

    #[test]
    fn relevance_cancels_provably_dead_urls() {
        let ws = scheme();
        let src = source();
        let e = nav().select(Pred::eq("Items.Name", "b"));
        let plain = Evaluator::new(&ws, &src).eval(&e).unwrap();
        for workers in [None, Some(2)] {
            let mut ev = Evaluator::new(&ws, &src).with_relevance_cancel();
            if let Some(w) = workers {
                ev = ev.with_concurrent_fetch(w);
            }
            let report = ev.eval(&e).unwrap();
            // Same rows, fewer downloads: /i/a and /i/c can never join
            // into an output tuple once σ[Items.Name='b'] is residual.
            assert_eq!(report.relation.sorted(), plain.relation.sorted());
            assert_eq!(report.page_accesses, 2, "entry + /i/b only");
            assert_eq!(report.cancelled, vec![Url::new("/i/a"), Url::new("/i/c")]);
            // Cancelled-as-irrelevant is not missing data.
            assert!(report.unreachable.is_empty());
            assert!(report.is_complete());
            // The cost model is untouched by relevance pruning.
            assert_eq!(report.cost_model_accesses(), plain.cost_model_accesses());
        }
    }

    #[test]
    fn relevance_prunes_on_row_path_too() {
        let ws = scheme();
        let src = source();
        let e = nav().select(Pred::eq("Items.Name", "b"));
        let report = Evaluator::new(&ws, &src)
            .row_path()
            .with_relevance_cancel()
            .eval(&e)
            .unwrap();
        assert_eq!(report.relation.len(), 1);
        assert_eq!(report.page_accesses, 2);
        assert_eq!(report.cancelled, vec![Url::new("/i/a"), Url::new("/i/c")]);
    }

    #[test]
    fn relevance_never_prunes_on_page_side_predicates() {
        let ws = scheme();
        let src = source();
        // σ binds to a *page-side* column: nothing is provably dead
        // before the fetch, so every page is still downloaded.
        let e = nav().select(Pred::eq("ItemPage.Kind", "x"));
        let report = Evaluator::new(&ws, &src)
            .with_relevance_cancel()
            .eval(&e)
            .unwrap();
        assert_eq!(report.relation.len(), 2);
        assert_eq!(report.page_accesses, 4);
        assert!(report.cancelled.is_empty());
    }

    #[test]
    fn relevance_prunes_join_keys_via_semijoin_residual() {
        let ws = scheme();
        let src = source();
        // Left side keeps only row "b"; joining on the link column makes
        // the right-side follow relevant for /i/b alone.
        let left = NalgExpr::entry("ListPage")
            .unnest("Items")
            .select(Pred::eq("Name", "b"));
        let right = NalgExpr::entry_as("ListPage", "L2")
            .unnest("Items")
            .follow("ToItem", "ItemPage");
        let e = left.join(right, vec![("ListPage.Items.ToItem", "L2.Items.ToItem")]);
        let plain = Evaluator::new(&ws, &src).eval(&e).unwrap();
        let report = Evaluator::new(&ws, &src)
            .with_relevance_cancel()
            .eval(&e)
            .unwrap();
        assert_eq!(report.relation.sorted(), plain.relation.sorted());
        assert_eq!(plain.page_accesses, 4, "entry + all three items");
        assert_eq!(report.page_accesses, 2, "entry + /i/b only");
        assert_eq!(report.cancelled, vec![Url::new("/i/a"), Url::new("/i/c")]);
    }

    #[test]
    fn hedged_fetch_wins_without_touching_page_accesses() {
        let ws = scheme();
        // First attempt on /i/b hangs 50ms; the hedge launched after 1ms
        // is served immediately and wins.
        let src = slow(&["/i/b"], 50, true);
        let cfg = crate::fetch::HedgeConfig::new(1_000);
        let (hedges, wins) = (cfg.hedges.clone(), cfg.hedge_wins.clone());
        let report = Evaluator::new(&ws, &src)
            .with_concurrent_fetch(2)
            .with_hedging(cfg)
            .eval(&nav())
            .unwrap();
        assert_eq!(report.relation.len(), 3);
        assert!(report.is_complete());
        assert_eq!(hedges.get(), 1);
        assert_eq!(wins.get(), 1);
        // The paper's counters never see the backup fetch.
        assert_eq!(report.page_accesses, 4);
        assert_eq!(report.cost_model_accesses(), 4);
    }

    #[test]
    fn infinite_deadline_and_token_change_nothing() {
        let ws = scheme();
        let src = source();
        let e = nav().select(Pred::eq("Kind", "x"));
        let plain = Evaluator::new(&ws, &src).eval(&e).unwrap();
        for workers in [None, Some(3)] {
            let mut ev = Evaluator::new(&ws, &src)
                .with_deadline(obs::Deadline::infinite())
                .with_cancel_token(obs::CancelToken::new());
            if let Some(w) = workers {
                ev = ev.with_concurrent_fetch(w);
            }
            let report = ev.eval(&e).unwrap();
            assert_eq!(report.relation.sorted(), plain.relation.sorted());
            assert_eq!(report.page_accesses, plain.page_accesses);
            assert_eq!(report.cache_hits, plain.cache_hits);
            assert_eq!(report.accesses_by_operator, plain.accesses_by_operator);
            assert!(!report.deadline_exceeded);
            assert!(report.cancelled.is_empty());
        }
    }

    #[test]
    fn pooled_entry_fetch_respects_the_deadline() {
        let ws = scheme();
        // The entry GET itself is the laggard: 50ms against a 5ms budget.
        let src = slow(&["/list.html"], 50, false);
        let deadline = obs::Deadline::after_us(5_000);
        // The ambient context carries the same deadline the evaluator
        // enforces — exactly how the serving layer installs it — so the
        // in-flight simulated wait is severed when the budget fires.
        let ctx = obs::reqctx::RequestCtx {
            sink: obs::trace::TraceSink::with_seed(0),
            parent: 0,
            request_id: 0,
            clock: obs::reqctx::FetchClock::new(),
            deadline,
            cancel: None,
        };
        let t0 = std::time::Instant::now();
        let report = obs::reqctx::with_ctx(Some(ctx), || {
            Evaluator::new(&ws, &src)
                .with_concurrent_fetch(2)
                .with_deadline(deadline)
                .eval(&nav())
        })
        .unwrap();
        assert!(report.deadline_exceeded);
        assert_eq!(report.relation.len(), 0);
        assert!(report.unreachable.contains(&Url::new("/list.html")));
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(45),
            "an in-flight entry tail must not block the session past the budget"
        );
    }

    #[test]
    fn entry_fetch_is_hedged_too() {
        let ws = scheme();
        // First attempt on the entry page hangs 50ms; the backup launched
        // after 1ms is served immediately and wins.
        let src = slow(&["/list.html"], 50, true);
        let cfg = crate::fetch::HedgeConfig::new(1_000);
        let (hedges, wins) = (cfg.hedges.clone(), cfg.hedge_wins.clone());
        let report = Evaluator::new(&ws, &src)
            .with_concurrent_fetch(2)
            .with_hedging(cfg)
            .eval(&nav())
            .unwrap();
        assert_eq!(report.relation.len(), 3);
        assert!(report.is_complete());
        assert!(hedges.get() >= 1);
        assert!(wins.get() >= 1);
        assert_eq!(report.page_accesses, 4, "the backup GET is never charged");
    }
}
