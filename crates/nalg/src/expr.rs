//! NALG expression trees and their static analysis.
//!
//! Expressions reference attributes by name; names resolve against the
//! expression's *output columns* by exact match or unique dotted suffix,
//! exactly as the evaluator resolves them against materialized relations.
//! Every `Entry` and `Follow` node carries an **alias** (defaulting to its
//! page-scheme name) that qualifies the columns it contributes, so the same
//! page-scheme may appear several times in one plan (e.g. the three VLDB
//! edition pages of the introduction's query).

use adm::{AdmError, Field, Value, WebScheme};
use std::collections::HashMap;
use std::fmt;

/// A selection predicate: a conjunction of equality atoms (the paper
/// restricts itself to conjunctive queries).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pred {
    /// `attr = constant`.
    Eq(String, Value),
    /// `attr1 = attr2` (both resolved against the input).
    EqAttr(String, String),
    /// Conjunction.
    And(Vec<Pred>),
}

impl Pred {
    /// `attr = text-constant` convenience.
    pub fn eq(attr: impl Into<String>, value: impl Into<Value>) -> Pred {
        Pred::Eq(attr.into(), value.into())
    }

    /// Flattens the predicate into its atomic conjuncts.
    pub fn conjuncts(&self) -> Vec<Pred> {
        match self {
            Pred::And(ps) => ps.iter().flat_map(|p| p.conjuncts()).collect(),
            atom => vec![atom.clone()],
        }
    }

    /// Rebuilds a predicate from conjuncts (`None` if empty).
    pub fn from_conjuncts(mut atoms: Vec<Pred>) -> Option<Pred> {
        match atoms.len() {
            0 => None,
            1 => Some(atoms.remove(0)),
            _ => Some(Pred::And(atoms)),
        }
    }

    /// The attribute names this predicate mentions.
    pub fn attrs(&self) -> Vec<&str> {
        match self {
            Pred::Eq(a, _) => vec![a],
            Pred::EqAttr(a, b) => vec![a, b],
            Pred::And(ps) => ps.iter().flat_map(|p| p.attrs()).collect(),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Eq(a, v) => write!(f, "{a}='{v}'"),
            Pred::EqAttr(a, b) => write!(f, "{a}={b}"),
            Pred::And(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

/// A navigational-algebra expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NalgExpr {
    /// An entry-point page-relation (single tuple, known URL).
    Entry {
        /// The entry-point page-scheme.
        scheme: String,
        /// Column-qualification alias (defaults to the scheme name).
        alias: String,
    },
    /// An external relation, to be replaced by a default navigation
    /// (rewrite rule 1). Not computable as-is.
    External {
        /// The external relation name.
        name: String,
    },
    /// Selection σ.
    Select {
        /// Input expression.
        input: Box<NalgExpr>,
        /// The predicate.
        pred: Pred,
    },
    /// Projection π (set semantics).
    Project {
        /// Input expression.
        input: Box<NalgExpr>,
        /// Columns to keep (resolved by suffix).
        cols: Vec<String>,
    },
    /// Join ⋈ on equality pairs.
    Join {
        /// Left input.
        left: Box<NalgExpr>,
        /// Right input.
        right: Box<NalgExpr>,
        /// Equality pairs `(left column, right column)`.
        on: Vec<(String, String)>,
    },
    /// Unnest page `R ∘ A`.
    Unnest {
        /// Input expression.
        input: Box<NalgExpr>,
        /// The list attribute to unnest (resolved by suffix).
        attr: String,
    },
    /// Follow link `R –L→ P`.
    Follow {
        /// Input expression.
        input: Box<NalgExpr>,
        /// The link attribute to follow (resolved by suffix).
        link: String,
        /// Target page-scheme.
        target: String,
        /// Column-qualification alias for the target's columns.
        alias: String,
    },
}

impl NalgExpr {
    /// An entry-point leaf.
    pub fn entry(scheme: impl Into<String>) -> NalgExpr {
        let scheme = scheme.into();
        NalgExpr::Entry {
            alias: scheme.clone(),
            scheme,
        }
    }

    /// An entry-point leaf with an explicit alias.
    pub fn entry_as(scheme: impl Into<String>, alias: impl Into<String>) -> NalgExpr {
        NalgExpr::Entry {
            scheme: scheme.into(),
            alias: alias.into(),
        }
    }

    /// An external-relation leaf.
    pub fn external(name: impl Into<String>) -> NalgExpr {
        NalgExpr::External { name: name.into() }
    }

    /// σ; builder style.
    pub fn select(self, pred: Pred) -> NalgExpr {
        NalgExpr::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// π; builder style.
    pub fn project<S: Into<String>>(self, cols: Vec<S>) -> NalgExpr {
        NalgExpr::Project {
            input: Box::new(self),
            cols: cols.into_iter().map(Into::into).collect(),
        }
    }

    /// ⋈; builder style.
    pub fn join<S: Into<String>>(self, right: NalgExpr, on: Vec<(S, S)>) -> NalgExpr {
        NalgExpr::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on.into_iter().map(|(a, b)| (a.into(), b.into())).collect(),
        }
    }

    /// `∘ attr`; builder style.
    pub fn unnest(self, attr: impl Into<String>) -> NalgExpr {
        NalgExpr::Unnest {
            input: Box::new(self),
            attr: attr.into(),
        }
    }

    /// `–link→ target`; builder style.
    pub fn follow(self, link: impl Into<String>, target: impl Into<String>) -> NalgExpr {
        let target = target.into();
        NalgExpr::Follow {
            input: Box::new(self),
            link: link.into(),
            alias: target.clone(),
            target,
        }
    }

    /// `–link→ target` with an explicit alias; builder style.
    pub fn follow_as(
        self,
        link: impl Into<String>,
        target: impl Into<String>,
        alias: impl Into<String>,
    ) -> NalgExpr {
        NalgExpr::Follow {
            input: Box::new(self),
            link: link.into(),
            target: target.into(),
            alias: alias.into(),
        }
    }

    /// Builds an expression from a navigation path.
    pub fn from_path(path: &adm::NavPath) -> NalgExpr {
        let mut e = NalgExpr::entry(path.entry.clone());
        for step in &path.steps {
            e = match step {
                adm::PathStep::Unnest(a) => e.unnest(a.clone()),
                adm::PathStep::Follow { link, target } => e.follow(link.clone(), target.clone()),
            };
        }
        e
    }

    /// Direct children.
    pub fn children(&self) -> Vec<&NalgExpr> {
        match self {
            NalgExpr::Entry { .. } | NalgExpr::External { .. } => vec![],
            NalgExpr::Select { input, .. }
            | NalgExpr::Project { input, .. }
            | NalgExpr::Unnest { input, .. }
            | NalgExpr::Follow { input, .. } => vec![input],
            NalgExpr::Join { left, right, .. } => vec![left, right],
        }
    }

    /// True if every leaf is an entry point (Section 4's computability).
    pub fn is_computable(&self) -> bool {
        match self {
            NalgExpr::Entry { .. } => true,
            NalgExpr::External { .. } => false,
            other => other.children().iter().all(|c| c.is_computable()),
        }
    }

    /// True if any external-relation leaf remains.
    pub fn has_external(&self) -> bool {
        match self {
            NalgExpr::External { .. } => true,
            other => other.children().iter().any(|c| c.has_external()),
        }
    }

    /// All external relation names, in leaf order.
    pub fn externals(&self) -> Vec<&str> {
        match self {
            NalgExpr::External { name } => vec![name.as_str()],
            other => other
                .children()
                .iter()
                .flat_map(|c| c.externals())
                .collect(),
        }
    }

    /// Number of operator nodes (tree size).
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Number of follow-link operators (navigations).
    pub fn follow_count(&self) -> usize {
        let here = usize::from(matches!(self, NalgExpr::Follow { .. }));
        here + self
            .children()
            .iter()
            .map(|c| c.follow_count())
            .sum::<usize>()
    }

    /// Rewrites the tree bottom-up: children first, then `f` on the node.
    pub fn transform_bottom_up(self, f: &impl Fn(NalgExpr) -> NalgExpr) -> NalgExpr {
        let rebuilt = match self {
            NalgExpr::Select { input, pred } => NalgExpr::Select {
                input: Box::new(input.transform_bottom_up(f)),
                pred,
            },
            NalgExpr::Project { input, cols } => NalgExpr::Project {
                input: Box::new(input.transform_bottom_up(f)),
                cols,
            },
            NalgExpr::Unnest { input, attr } => NalgExpr::Unnest {
                input: Box::new(input.transform_bottom_up(f)),
                attr,
            },
            NalgExpr::Follow {
                input,
                link,
                target,
                alias,
            } => NalgExpr::Follow {
                input: Box::new(input.transform_bottom_up(f)),
                link,
                target,
                alias,
            },
            NalgExpr::Join { left, right, on } => NalgExpr::Join {
                left: Box::new(left.transform_bottom_up(f)),
                right: Box::new(right.transform_bottom_up(f)),
                on,
            },
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// The alias → page-scheme map contributed by this expression's
    /// `Entry`/`Follow` nodes. Errors on duplicate aliases.
    pub fn alias_map(&self) -> crate::Result<HashMap<String, String>> {
        let mut map = HashMap::new();
        fn walk(e: &NalgExpr, map: &mut HashMap<String, String>) -> crate::Result<()> {
            let binding = match e {
                NalgExpr::Entry { scheme, alias } => Some((alias, scheme)),
                NalgExpr::Follow { target, alias, .. } => Some((alias, target)),
                _ => None,
            };
            if let Some((alias, scheme)) = binding {
                if map.insert(alias.clone(), scheme.clone()).is_some() {
                    return Err(crate::EvalError::DuplicateAlias(alias.clone()));
                }
            }
            for c in e.children() {
                walk(c, map)?;
            }
            Ok(())
        }
        walk(self, &mut map)?;
        Ok(map)
    }

    /// The qualified output columns of this expression under a scheme.
    /// External leaves make this fail ([`crate::EvalError::NotComputable`]).
    pub fn output_columns(&self, ws: &WebScheme) -> crate::Result<Vec<String>> {
        match self {
            NalgExpr::Entry { scheme, alias } => page_columns(ws, scheme, alias),
            NalgExpr::External { name } => Err(crate::EvalError::NotComputable(format!(
                "external relation {name} has no navigational columns"
            ))),
            NalgExpr::Select { input, .. } => input.output_columns(ws),
            NalgExpr::Project { input, cols } => {
                let in_cols = input.output_columns(ws)?;
                cols.iter()
                    .map(|c| resolve_column(&in_cols, c).map(|i| in_cols[i].clone()))
                    .collect()
            }
            NalgExpr::Join { left, right, .. } => {
                let mut cols = left.output_columns(ws)?;
                cols.extend(right.output_columns(ws)?);
                Ok(cols)
            }
            NalgExpr::Unnest { input, attr } => {
                let in_cols = input.output_columns(ws)?;
                let i = resolve_column(&in_cols, attr)?;
                let qualified = in_cols[i].clone();
                let field = field_of_column(ws, &self.alias_map()?, &qualified)?;
                let inner = field.ty.list_fields().ok_or_else(|| {
                    crate::EvalError::Adm(AdmError::TypeMismatch {
                        attr: qualified.clone(),
                        expected: "list",
                        found: field.ty.kind().to_string(),
                    })
                })?;
                let mut out: Vec<String> = in_cols
                    .iter()
                    .filter(|c| **c != qualified)
                    .cloned()
                    .collect();
                out.extend(inner.iter().map(|f| format!("{qualified}.{}", f.name)));
                Ok(out)
            }
            NalgExpr::Follow {
                input,
                link,
                target,
                alias,
            } => {
                let in_cols = input.output_columns(ws)?;
                let i = resolve_column(&in_cols, link)?;
                let qualified = in_cols[i].clone();
                let field = field_of_column(ws, &self.alias_map()?, &qualified)?;
                match field.ty.link_target() {
                    Some(t) if t == target => {}
                    Some(t) => {
                        return Err(crate::EvalError::Adm(AdmError::TypeMismatch {
                            attr: qualified,
                            expected: "link to the follow target",
                            found: format!("link to {t}"),
                        }))
                    }
                    None => {
                        return Err(crate::EvalError::Adm(AdmError::TypeMismatch {
                            attr: qualified,
                            expected: "link",
                            found: field.ty.kind().to_string(),
                        }))
                    }
                }
                let mut cols = in_cols;
                cols.extend(page_columns(ws, target, alias)?);
                Ok(cols)
            }
        }
    }
}

/// The columns a page-relation contributes: `alias.URL` plus one per
/// top-level attribute (lists stay nested in a single column).
pub fn page_columns(ws: &WebScheme, scheme: &str, alias: &str) -> crate::Result<Vec<String>> {
    let ps = ws.scheme(scheme)?;
    let mut cols = vec![format!("{alias}.URL")];
    cols.extend(ps.fields.iter().map(|f| format!("{alias}.{}", f.name)));
    Ok(cols)
}

/// Resolves a column name against a header: exact match, else unique
/// dotted-suffix match (same rule as `adm::Relation::resolve`).
pub fn resolve_column(cols: &[String], name: &str) -> crate::Result<usize> {
    if let Some(i) = cols.iter().position(|c| c == name) {
        return Ok(i);
    }
    let suffix = format!(".{name}");
    let hits: Vec<usize> = cols
        .iter()
        .enumerate()
        .filter(|(_, c)| c.ends_with(&suffix))
        .map(|(i, _)| i)
        .collect();
    match hits.len() {
        1 => Ok(hits[0]),
        0 => Err(crate::EvalError::Adm(AdmError::UnknownAttribute {
            attr: name.to_string(),
            within: format!("columns [{}]", cols.join(", ")),
        })),
        _ => Err(crate::EvalError::Adm(AdmError::AmbiguousAttribute {
            attr: name.to_string(),
            candidates: hits.iter().map(|&i| cols[i].clone()).collect(),
        })),
    }
}

/// Maps a fully qualified column (`alias.path…`) to its field definition.
/// `alias.URL` has no field; it errors (URL is the implicit key).
pub fn field_of_column<'ws>(
    ws: &'ws WebScheme,
    aliases: &HashMap<String, String>,
    qualified: &str,
) -> crate::Result<&'ws Field> {
    let mut parts = qualified.split('.');
    let alias = parts.next().unwrap_or("");
    let path: Vec<&str> = parts.collect();
    let scheme = aliases.get(alias).ok_or_else(|| {
        crate::EvalError::Adm(AdmError::UnknownAttribute {
            attr: qualified.to_string(),
            within: "alias map".to_string(),
        })
    })?;
    if path.is_empty() || path == ["URL"] {
        return Err(crate::EvalError::Adm(AdmError::UnknownAttribute {
            attr: qualified.to_string(),
            within: format!("page-scheme {scheme} (URL is implicit)"),
        }));
    }
    Ok(ws.scheme(scheme)?.resolve_path(&path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adm::{Field, PageScheme};

    fn scheme() -> WebScheme {
        let list = PageScheme::new(
            "ListPage",
            vec![Field::list(
                "Items",
                vec![Field::text("Name"), Field::link("ToItem", "ItemPage")],
            )],
        )
        .unwrap();
        let item =
            PageScheme::new("ItemPage", vec![Field::text("Name"), Field::text("Info")]).unwrap();
        WebScheme::builder()
            .scheme(list)
            .scheme(item)
            .entry_point("ListPage", "/list.html")
            .build()
            .unwrap()
    }

    fn nav() -> NalgExpr {
        NalgExpr::entry("ListPage")
            .unnest("Items")
            .follow("ToItem", "ItemPage")
    }

    #[test]
    fn computability() {
        assert!(nav().is_computable());
        let with_ext = NalgExpr::external("R").join(nav(), vec![("a", "b")]);
        assert!(!with_ext.is_computable());
        assert!(with_ext.has_external());
        assert_eq!(with_ext.externals(), vec!["R"]);
    }

    #[test]
    fn output_columns_through_unnest_and_follow() {
        let cols = nav().output_columns(&scheme()).unwrap();
        assert_eq!(
            cols,
            vec![
                "ListPage.URL",
                "ListPage.Items.Name",
                "ListPage.Items.ToItem",
                "ItemPage.URL",
                "ItemPage.Name",
                "ItemPage.Info",
            ]
        );
    }

    #[test]
    fn project_resolves_by_suffix() {
        let e = nav().project(vec!["Info"]);
        let cols = e.output_columns(&scheme()).unwrap();
        assert_eq!(cols, vec!["ItemPage.Info"]);
    }

    #[test]
    fn ambiguous_suffix_rejected() {
        // Name appears both in the list rows and on the item page.
        let e = nav().project(vec!["Name"]);
        assert!(matches!(
            e.output_columns(&scheme()),
            Err(crate::EvalError::Adm(AdmError::AmbiguousAttribute { .. }))
        ));
    }

    #[test]
    fn follow_validates_link_type() {
        let bad = NalgExpr::entry("ListPage")
            .unnest("Items")
            .follow("Name", "ItemPage"); // Name is text, not link
        assert!(bad.output_columns(&scheme()).is_err());
    }

    #[test]
    fn aliases_allow_same_scheme_twice() {
        let left = NalgExpr::entry("ListPage")
            .unnest("Items")
            .follow_as("ToItem", "ItemPage", "I1");
        let right = NalgExpr::entry_as("ListPage", "L2")
            .unnest("Items")
            .follow_as("ToItem", "ItemPage", "I2");
        let j = left.join(right, vec![("I1.Name", "I2.Name")]);
        let cols = j.output_columns(&scheme()).unwrap();
        assert!(cols.contains(&"I1.Info".to_string()));
        assert!(cols.contains(&"I2.Info".to_string()));
    }

    #[test]
    fn duplicate_alias_rejected() {
        let l = NalgExpr::entry("ListPage");
        let r = NalgExpr::entry("ListPage");
        let j = l.join(r, vec![("URL", "URL")]);
        assert!(matches!(
            j.alias_map(),
            Err(crate::EvalError::DuplicateAlias(_))
        ));
    }

    #[test]
    fn pred_conjunct_flattening() {
        let p = Pred::And(vec![
            Pred::eq("A", "1"),
            Pred::And(vec![
                Pred::eq("B", "2"),
                Pred::EqAttr("C".into(), "D".into()),
            ]),
        ]);
        let atoms = p.conjuncts();
        assert_eq!(atoms.len(), 3);
        let rebuilt = Pred::from_conjuncts(atoms).unwrap();
        assert_eq!(rebuilt.conjuncts().len(), 3);
        assert!(Pred::from_conjuncts(vec![]).is_none());
    }

    #[test]
    fn pred_attrs() {
        let p = Pred::And(vec![
            Pred::eq("A", "1"),
            Pred::EqAttr("B".into(), "C".into()),
        ]);
        assert_eq!(p.attrs(), vec!["A", "B", "C"]);
    }

    #[test]
    fn size_and_follow_count() {
        let e = nav().select(Pred::eq("Info", "x")).project(vec!["Info"]);
        assert_eq!(e.size(), 5);
        assert_eq!(e.follow_count(), 1);
    }

    #[test]
    fn transform_bottom_up_rewrites() {
        // Remove all projections.
        let e = nav().project(vec!["Info"]);
        let stripped = e.transform_bottom_up(&|n| match n {
            NalgExpr::Project { input, .. } => *input,
            other => other,
        });
        assert_eq!(stripped, nav());
    }

    #[test]
    fn from_path_matches_builder() {
        let p = adm::NavPath::at("ListPage")
            .unnest("Items")
            .follow("ToItem", "ItemPage");
        assert_eq!(NalgExpr::from_path(&p), nav());
    }

    #[test]
    fn pred_display() {
        let p = Pred::And(vec![Pred::eq("Session", "Fall"), Pred::eq("Rank", "Full")]);
        assert_eq!(p.to_string(), "Session='Fall' ∧ Rank='Full'");
    }
}
