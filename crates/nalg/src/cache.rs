//! Shared, sharded, size-bounded cross-query page cache.
//!
//! The per-query cache inside the evaluator reproduces the paper's cost
//! model (a page is charged once per query). This cache is the layer the
//! paper does *not* model: a production engine serving many queries over
//! the same site keeps wrapped pages around across queries, so the second
//! query over a site pays almost no network cost. It is:
//!
//! * **shared** — one instance can back many [`crate::Evaluator`]s, the
//!   crawler, and statistics collection concurrently (`&self` API, `Sync`);
//! * **sharded** — entries are spread over [`SHARDS`] independently locked
//!   shards by URL hash, so concurrent fetch workers do not serialize on a
//!   single lock;
//! * **size-bounded** — a byte budget (estimated via
//!   [`adm::Tuple::approx_bytes`]) is enforced per shard with LRU
//!   eviction;
//! * **freshness-aware** — entries carry an optional Last-Modified stamp;
//!   [`SharedPageCache::invalidate_older_than`] lets a URL-check protocol
//!   (matview) drop entries superseded by a newer server copy.
//!
//! Accounting matters more than raw speed here: hits served from this
//! cache are **not** page accesses. The evaluator reports them separately
//! (`EvalReport::shared_cache_hits`) so every paper experiment can still
//! run with the shared cache disabled and reproduce the original numbers.

use adm::{Tuple, Url};
use obs::trace::{EventKind, TraceSink};
use obs::{Counter, MetricsRegistry};
use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of independently locked shards. A power of two; sized so that a
/// 16-worker fetch pool rarely contends on a shard lock.
pub const SHARDS: usize = 16;

/// Default total byte budget (16 MiB) — plenty for the paper's simulated
/// sites while still exercising eviction in stress tests.
pub const DEFAULT_BYTE_BUDGET: usize = 16 << 20;

/// One cached wrapped page.
struct Entry {
    tuple: Tuple,
    bytes: usize,
    /// Server Last-Modified stamp, when the inserting layer knows it.
    last_modified: Option<u64>,
    /// LRU stamp: value of the global clock at last touch.
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<Url, Entry>,
    /// stamp → URL index for O(log n) LRU eviction. Stamps are unique
    /// (global atomic counter), so this is a faithful recency order.
    by_stamp: BTreeMap<u64, Url>,
    bytes: usize,
}

/// Point-in-time counters of cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub insertions: u64,
    pub evictions: u64,
    pub invalidations: u64,
    /// Current number of cached pages.
    pub entries: usize,
    /// Current estimated resident bytes.
    pub bytes: usize,
}

/// See module docs.
///
/// Counters live in an [`obs::MetricsRegistry`] (prefix `cache`);
/// [`CacheStats`] is a point-in-time view over those registry cells, so
/// the numbers are identical to the pre-registry ad-hoc atomics.
pub struct SharedPageCache {
    shards: Vec<RwLock<Shard>>,
    /// Byte budget per shard (total budget / [`SHARDS`]).
    shard_budget: usize,
    clock: AtomicU64,
    registry: MetricsRegistry,
    hits: Counter,
    misses: Counter,
    insertions: Counter,
    evictions: Counter,
    invalidations: Counter,
    trace: Option<TraceSink>,
}

impl Default for SharedPageCache {
    fn default() -> Self {
        Self::with_byte_budget(DEFAULT_BYTE_BUDGET)
    }
}

impl SharedPageCache {
    /// A cache bounded by `budget` estimated bytes in total.
    pub fn with_byte_budget(budget: usize) -> Self {
        let registry = MetricsRegistry::with_prefix("cache");
        SharedPageCache {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            shard_budget: (budget / SHARDS).max(1),
            clock: AtomicU64::new(0),
            hits: registry.counter("hits"),
            misses: registry.counter("misses"),
            insertions: registry.counter("insertions"),
            evictions: registry.counter("evictions"),
            invalidations: registry.counter("invalidations"),
            registry,
            trace: None,
        }
    }

    /// Attaches a trace sink: evictions and invalidations are recorded
    /// as [`EventKind::Cache`] events. No effect on accounting.
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.trace = Some(sink.clone());
        self
    }

    /// The registry backing this cache's counters (prefix `cache`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn shard_of(&self, url: &Url) -> &RwLock<Shard> {
        let mut h = DefaultHasher::new();
        url.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up a page, refreshing its recency on hit.
    pub fn get(&self, url: &Url) -> Option<Tuple> {
        let mut shard = self.shard_of(url).write();
        let stamp = self.tick();
        match shard.map.get_mut(url) {
            Some(e) => {
                let old = std::mem::replace(&mut e.stamp, stamp);
                let t = e.tuple.clone();
                shard.by_stamp.remove(&old);
                shard.by_stamp.insert(stamp, url.clone());
                self.hits.inc();
                Some(t)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts (or refreshes) a page, evicting least-recently-used entries
    /// if the shard exceeds its byte budget. Pages larger than a whole
    /// shard budget are not cached.
    pub fn insert(&self, url: &Url, tuple: &Tuple, last_modified: Option<u64>) {
        let bytes = url.as_str().len() + tuple.approx_bytes();
        if bytes > self.shard_budget {
            return;
        }
        let mut shard = self.shard_of(url).write();
        let stamp = self.tick();
        if let Some(old) = shard.map.remove(url) {
            shard.bytes -= old.bytes;
            shard.by_stamp.remove(&old.stamp);
        }
        shard.map.insert(
            url.clone(),
            Entry {
                tuple: tuple.clone(),
                bytes,
                last_modified,
                stamp,
            },
        );
        shard.by_stamp.insert(stamp, url.clone());
        shard.bytes += bytes;
        self.insertions.inc();
        while shard.bytes > self.shard_budget {
            let (&victim_stamp, victim) = shard
                .by_stamp
                .iter()
                .next()
                .expect("over budget implies at least one entry");
            let victim = victim.clone();
            shard.by_stamp.remove(&victim_stamp);
            let e = shard
                .map
                .remove(&victim)
                .expect("stamp index entry has a map entry");
            shard.bytes -= e.bytes;
            self.evictions.inc();
            if let Some(sink) = &self.trace {
                sink.event(
                    EventKind::Cache,
                    "cache.evict",
                    None,
                    vec![("url".to_string(), victim.as_str().into())],
                );
            }
        }
    }

    /// Drops a page (e.g. the server now returns 404 for it).
    pub fn invalidate(&self, url: &Url) {
        let mut shard = self.shard_of(url).write();
        if let Some(e) = shard.map.remove(url) {
            shard.bytes -= e.bytes;
            shard.by_stamp.remove(&e.stamp);
            self.invalidations.inc();
            self.trace_invalidate(url);
        }
    }

    /// Drops the cached copy of `url` if it predates `last_modified` (or
    /// has no stamp at all). This is the URL-check hook: a HEAD request
    /// revealing a newer server copy invalidates the stale cached page.
    /// Returns true if an entry was dropped.
    pub fn invalidate_older_than(&self, url: &Url, last_modified: u64) -> bool {
        let mut shard = self.shard_of(url).write();
        let stale = match shard.map.get(url) {
            Some(e) => e.last_modified.is_none_or(|lm| lm < last_modified),
            None => false,
        };
        if stale {
            let e = shard.map.remove(url).expect("checked above");
            shard.bytes -= e.bytes;
            shard.by_stamp.remove(&e.stamp);
            self.invalidations.inc();
            self.trace_invalidate(url);
        }
        stale
    }

    fn trace_invalidate(&self, url: &Url) {
        if let Some(sink) = &self.trace {
            sink.event(
                EventKind::Cache,
                "cache.invalidate",
                None,
                vec![("url".to_string(), url.as_str().into())],
            );
        }
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.write();
            let n = s.map.len() as u64;
            s.map.clear();
            s.by_stamp.clear();
            s.bytes = 0;
            self.invalidations.add(n);
        }
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes) = (0, 0);
        for shard in &self.shards {
            let s = shard.read();
            entries += s.map.len();
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            insertions: self.insertions.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(name: &str) -> Tuple {
        Tuple::new().with("Name", name)
    }

    #[test]
    fn get_after_insert_hits() {
        let cache = SharedPageCache::default();
        let url = Url::new("/a");
        assert_eq!(cache.get(&url), None);
        cache.insert(&url, &page("a"), None);
        assert_eq!(cache.get(&url), Some(page("a")));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn byte_budget_evicts_lru() {
        // Budget small enough that a few pages overflow one shard.
        let cache = SharedPageCache::with_byte_budget(SHARDS * 400);
        let urls: Vec<Url> = (0..64).map(|i| Url::new(format!("/p/{i}"))).collect();
        for (i, u) in urls.iter().enumerate() {
            cache.insert(u, &page(&format!("page-{i}-{}", "x".repeat(64))), None);
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "no evictions at {} bytes", s.bytes);
        assert!(s.bytes <= SHARDS * 400);
        // most-recently inserted page should still be resident
        assert!(cache.get(urls.last().unwrap()).is_some());
    }

    #[test]
    fn lru_prefers_recently_used() {
        // Single-page budget per shard: inserting a second page into the
        // same shard evicts the first.
        let cache = SharedPageCache::with_byte_budget(SHARDS * 120);
        let a = Url::new("/a");
        cache.insert(&a, &page("a"), None);
        assert!(cache.get(&a).is_some());
        // Touch /a, then insert colliding pages until /a's shard overflows.
        for i in 0..64 {
            cache.insert(&Url::new(format!("/spill/{i}")), &page("s"), None);
        }
        let s = cache.stats();
        assert!(s.evictions > 0);
    }

    #[test]
    fn invalidate_older_than_is_last_modified_aware() {
        let cache = SharedPageCache::default();
        let url = Url::new("/p");
        cache.insert(&url, &page("v1"), Some(10));
        // Same-age server copy: keep.
        assert!(!cache.invalidate_older_than(&url, 10));
        assert!(cache.get(&url).is_some());
        // Newer server copy: drop.
        assert!(cache.invalidate_older_than(&url, 11));
        assert_eq!(cache.get(&url), None);
        // Unstamped entries are conservatively dropped.
        cache.insert(&url, &page("v?"), None);
        assert!(cache.invalidate_older_than(&url, 1));
    }

    #[test]
    fn invalidate_and_clear() {
        let cache = SharedPageCache::default();
        for i in 0..10 {
            cache.insert(&Url::new(format!("/{i}")), &page("x"), None);
        }
        cache.invalidate(&Url::new("/3"));
        assert_eq!(cache.get(&Url::new("/3")), None);
        assert_eq!(cache.len(), 9);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
    }

    #[test]
    fn concurrent_mixed_use_is_safe() {
        let cache = SharedPageCache::with_byte_budget(SHARDS * 4096);
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..200 {
                        let url = Url::new(format!("/t/{}", (t * 7 + i) % 50));
                        if i % 3 == 0 {
                            cache.insert(&url, &page("c"), Some(i as u64));
                        } else {
                            let _ = cache.get(&url);
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert!(s.insertions > 0 && s.hits > 0);
        assert!(s.bytes <= SHARDS * 4096);
    }
}
