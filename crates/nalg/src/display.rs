//! Paper-style rendering of expressions and query plans.
//!
//! Two forms are provided:
//!
//! * [`inline`] — the compact algebraic notation used in the paper's
//!   running text, e.g.
//!   `π[Name,Email](σ[DName='CS'](ProfListPage ∘ ProfList –ToProf→ ProfPage))`;
//! * [`tree`] — an indented query-plan tree in the style of the paper's
//!   Figures 2–4, with navigation *spines* (entry ∘ unnest –link→ …)
//!   kept on a single line, matching the paper's convention of drawing
//!   unnest infix and links as upward edges.

use crate::expr::NalgExpr;
use std::fmt::Write as _;

/// True if the expression is a pure navigation spine
/// (entry / unnest / follow chain with no σ, π, ⋈).
fn is_spine(e: &NalgExpr) -> bool {
    match e {
        NalgExpr::Entry { .. } | NalgExpr::External { .. } => true,
        NalgExpr::Unnest { input, .. } | NalgExpr::Follow { input, .. } => is_spine(input),
        _ => false,
    }
}

/// Renders a navigation spine on one line.
fn spine_inline(e: &NalgExpr) -> String {
    match e {
        NalgExpr::Entry { scheme, alias } => {
            if alias == scheme {
                scheme.clone()
            } else {
                format!("{scheme} as {alias}")
            }
        }
        NalgExpr::External { name } => format!("⟨{name}⟩"),
        NalgExpr::Unnest { input, attr } => format!("{} ∘ {attr}", spine_inline(input)),
        NalgExpr::Follow {
            input,
            link,
            target,
            alias,
        } => {
            let tgt = if alias == target {
                target.clone()
            } else {
                format!("{target} as {alias}")
            };
            format!("{} –{link}→ {tgt}", spine_inline(input))
        }
        other => inline(other),
    }
}

/// The compact one-line algebraic form.
pub fn inline(e: &NalgExpr) -> String {
    match e {
        NalgExpr::Entry { .. } | NalgExpr::External { .. } => spine_inline(e),
        NalgExpr::Unnest { .. } | NalgExpr::Follow { .. } => spine_inline(e),
        NalgExpr::Select { input, pred } => format!("σ[{pred}]({})", inline(input)),
        NalgExpr::Project { input, cols } => {
            format!("π[{}]({})", cols.join(","), inline(input))
        }
        NalgExpr::Join { left, right, on } => {
            let cond: Vec<String> = on.iter().map(|(a, b)| format!("{a}={b}")).collect();
            format!(
                "({}) ⋈[{}] ({})",
                inline(left),
                cond.join(" ∧ "),
                inline(right)
            )
        }
    }
}

/// The indented query-plan tree (Figures 2–4 style).
pub fn tree(e: &NalgExpr) -> String {
    let mut out = String::new();
    render(e, "", "", &mut out);
    out
}

fn render(e: &NalgExpr, prefix: &str, child_prefix: &str, out: &mut String) {
    if is_spine(e) {
        let _ = writeln!(out, "{prefix}{}", spine_inline(e));
        return;
    }
    match e {
        NalgExpr::Select { input, pred } => {
            let _ = writeln!(out, "{prefix}σ[{pred}]");
            render(
                input,
                &format!("{child_prefix}└─ "),
                &format!("{child_prefix}   "),
                out,
            );
        }
        NalgExpr::Project { input, cols } => {
            let _ = writeln!(out, "{prefix}π[{}]", cols.join(", "));
            render(
                input,
                &format!("{child_prefix}└─ "),
                &format!("{child_prefix}   "),
                out,
            );
        }
        NalgExpr::Join { left, right, on } => {
            let cond: Vec<String> = on.iter().map(|(a, b)| format!("{a} = {b}")).collect();
            let _ = writeln!(out, "{prefix}⋈ [{}]", cond.join(" ∧ "));
            render(
                left,
                &format!("{child_prefix}├─ "),
                &format!("{child_prefix}│  "),
                out,
            );
            render(
                right,
                &format!("{child_prefix}└─ "),
                &format!("{child_prefix}   "),
                out,
            );
        }
        NalgExpr::Unnest { input, attr } => {
            let _ = writeln!(out, "{prefix}∘ {attr}");
            render(
                input,
                &format!("{child_prefix}└─ "),
                &format!("{child_prefix}   "),
                out,
            );
        }
        NalgExpr::Follow {
            input,
            link,
            target,
            alias,
        } => {
            let tgt = if alias == target {
                target.clone()
            } else {
                format!("{target} as {alias}")
            };
            let _ = writeln!(out, "{prefix}–{link}→ {tgt}");
            render(
                input,
                &format!("{child_prefix}└─ "),
                &format!("{child_prefix}   "),
                out,
            );
        }
        NalgExpr::Entry { .. } | NalgExpr::External { .. } => {
            let _ = writeln!(out, "{prefix}{}", spine_inline(e));
        }
    }
}

/// Renders a plan as a DOT digraph (one node per operator; navigation
/// spines are *not* collapsed so the full operator tree is visible).
pub fn dot(e: &NalgExpr) -> String {
    use std::fmt::Write as _;
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    fn label(e: &NalgExpr) -> String {
        match e {
            NalgExpr::Entry { scheme, alias } if alias == scheme => format!("entry {scheme}"),
            NalgExpr::Entry { scheme, alias } => format!("entry {scheme} as {alias}"),
            NalgExpr::External { name } => format!("external {name}"),
            NalgExpr::Select { pred, .. } => format!("σ {pred}"),
            NalgExpr::Project { cols, .. } => format!("π {}", cols.join(", ")),
            NalgExpr::Join { on, .. } => {
                let cond: Vec<String> = on.iter().map(|(a, b)| format!("{a}={b}")).collect();
                format!("⋈ {}", cond.join(" ∧ "))
            }
            NalgExpr::Unnest { attr, .. } => format!("∘ {attr}"),
            NalgExpr::Follow {
                link,
                target,
                alias,
                ..
            } if alias == target => {
                format!("–{link}→ {target}")
            }
            NalgExpr::Follow {
                link,
                target,
                alias,
                ..
            } => {
                format!("–{link}→ {target} as {alias}")
            }
        }
    }
    fn walk(e: &NalgExpr, id: &mut usize, out: &mut String) -> usize {
        let my = *id;
        *id += 1;
        let _ = writeln!(out, "  n{my} [label=\"{}\"];", esc(&label(e)));
        for c in e.children() {
            let child = walk(c, id, out);
            let _ = writeln!(out, "  n{my} -> n{child};");
        }
        my
    }
    let mut out = String::from("digraph plan {\n  node [shape=box, fontsize=10];\n");
    let mut id = 0;
    walk(e, &mut id, &mut out);
    out.push_str("}\n");
    out
}

impl std::fmt::Display for NalgExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&inline(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;

    /// The paper's Expression 2: name and e-mail of CS professors.
    fn paper_expression_2() -> NalgExpr {
        NalgExpr::entry("ProfListPage")
            .unnest("ProfList")
            .follow("ToProf", "ProfPage")
            .select(Pred::eq("DName", "Computer Science"))
            .project(vec!["Name", "Email"])
    }

    #[test]
    fn inline_matches_paper_notation() {
        assert_eq!(
            inline(&paper_expression_2()),
            "π[Name,Email](σ[DName='Computer Science'](ProfListPage ∘ ProfList –ToProf→ ProfPage))"
        );
    }

    #[test]
    fn spine_stays_on_one_line_in_tree() {
        let t = tree(&paper_expression_2());
        assert!(t.contains("ProfListPage ∘ ProfList –ToProf→ ProfPage"));
        assert!(t.lines().count() == 3);
    }

    #[test]
    fn join_renders_two_branches() {
        let left = NalgExpr::entry("ProfListPage")
            .unnest("ProfList")
            .follow("ToProf", "ProfPage")
            .unnest("CourseList");
        let right = NalgExpr::entry("SessionListPage")
            .unnest("SesList")
            .follow("ToSes", "SessionPage")
            .unnest("CourseList");
        let j = left.join(
            right,
            vec![(
                "ProfPage.CourseList.ToCourse",
                "SessionPage.CourseList.ToCourse",
            )],
        );
        let t = tree(&j);
        assert!(t.contains("├─ ProfListPage"));
        assert!(t.contains("└─ SessionListPage"));
        assert!(t.starts_with("⋈ ["));
    }

    #[test]
    fn external_rendering() {
        let e = NalgExpr::external("CourseInstructor");
        assert_eq!(inline(&e), "⟨CourseInstructor⟩");
    }

    #[test]
    fn aliases_shown_when_nontrivial() {
        let e = NalgExpr::entry("ConfPage").unnest("EditionList").follow_as(
            "ToEdition",
            "EditionPage",
            "Ed96",
        );
        assert!(inline(&e).ends_with("–ToEdition→ EditionPage as Ed96"));
    }

    #[test]
    fn display_impl_is_inline() {
        let e = paper_expression_2();
        assert_eq!(format!("{e}"), inline(&e));
    }

    #[test]
    fn dot_renders_full_operator_tree() {
        let e = paper_expression_2();
        let d = dot(&e);
        assert!(d.starts_with("digraph plan {"));
        // one node per operator
        assert_eq!(d.matches("[label=").count(), e.size());
        // edges connect parents to children
        assert_eq!(d.matches("->").count(), e.size() - 1);
        assert!(d.contains("π Name, Email"));
        assert!(d.contains("entry ProfListPage"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let e = NalgExpr::entry("P").select(Pred::eq("A", "say \"hi\""));
        let d = dot(&e);
        assert!(d.contains("\\\""));
    }

    #[test]
    fn nested_tree_indentation() {
        let e = paper_expression_2();
        let t = tree(&e);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("π["));
        assert!(lines[1].starts_with("└─ σ["));
        assert!(lines[2].starts_with("   └─ ProfListPage"));
    }
}
