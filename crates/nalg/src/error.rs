//! Evaluation-layer errors.

use std::fmt;

/// Errors raised while analyzing or evaluating NALG expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An expression is not computable: a leaf is not an entry point, or an
    /// external relation was never replaced by a default navigation.
    NotComputable(String),
    /// A data-model error (unknown scheme/attribute, arity, …).
    Adm(adm::AdmError),
    /// The page source failed in a non-recoverable way.
    Source(String),
    /// An alias or column was introduced twice.
    DuplicateAlias(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NotComputable(m) => write!(f, "expression not computable: {m}"),
            EvalError::Adm(e) => write!(f, "{e}"),
            EvalError::Source(m) => write!(f, "page source error: {m}"),
            EvalError::DuplicateAlias(a) => write!(f, "duplicate alias `{a}`"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::Adm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<adm::AdmError> for EvalError {
    fn from(e: adm::AdmError) -> Self {
        EvalError::Adm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: EvalError = adm::AdmError::UnknownScheme("X".into()).into();
        assert!(e.to_string().contains("X"));
        assert!(std::error::Error::source(&e).is_some());
        let e = EvalError::NotComputable("leaf R".into());
        assert!(e.to_string().contains("leaf R"));
    }
}
