//! Persistent fetch worker pool and single-flight request coalescing.
//!
//! **Pool.** Replaces per-batch scoped threads: the pool's workers are
//! spawned **once per evaluation** and serve every `follow` operator in
//! the plan through a pair of MPMC channels. The evaluator streams
//! distinct links into the job channel and consumes wrapped tuples as they
//! complete, so CPU-side work (wrapping, row assembly) overlaps network
//! latency instead of waiting on a per-batch barrier.
//!
//! Completions arrive out of order; the evaluator's `follow` assembly is
//! keyed by URL, so results are independent of completion order.
//!
//! **Coalescing.** [`CoalescingSource`] wraps any `PageSource + Sync` with
//! single-flight semantics: when N callers (concurrent sessions, pool
//! workers) request the same URL at the same time, exactly one — the
//! *leader* — performs the inner fetch; the rest — *followers* — block and
//! receive a clone of the leader's result. This deduplicates server GETs
//! without touching the paper's accounting: `page_accesses` is counted by
//! each evaluation at fetch *completion*, above this layer, so every
//! session reports exactly the numbers it would report uncoalesced (pinned
//! by the serving-equivalence proptests in `tests/serving.rs`).

use crate::eval::{PageSource, SourceError};
use adm::{Tuple, Url};
use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::trace::{EventKind, TraceSink};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};

/// A fetch request: the URL and the page-scheme it is expected to match.
/// `epoch` tags the drain the job belongs to (a deadline-aborted drain
/// may leave stale completions in the channel; later drains skip them by
/// epoch), `hedge` marks a tail-tolerant backup fetch.
#[derive(Debug)]
struct Job {
    url: Url,
    scheme: String,
    epoch: u64,
    hedge: bool,
}

/// The result of one page fetch: the wrapped tuple plus the source's
/// Last-Modified stamp when known.
pub(crate) type FetchOutcome = Result<(Tuple, Option<u64>), SourceError>;

/// A completed fetch: the wrapped tuple plus the source's Last-Modified
/// stamp when known. Carries the submitting drain's `epoch` and whether
/// this completion came from a hedge job.
pub(crate) struct Done {
    pub url: Url,
    pub outcome: FetchOutcome,
    pub epoch: u64,
    pub hedge: bool,
}

/// Handle to a running pool. Only valid inside [`with_pool`]'s closure;
/// dropping it closes the job channel, which is what terminates workers.
pub struct FetchPool {
    job_tx: Sender<Job>,
    done_rx: Receiver<Done>,
}

impl FetchPool {
    /// Enqueues a fetch; some worker will pick it up. Returns `false` if
    /// every worker has exited (the pool is shut down) — the caller must
    /// surface that as a source error rather than panic.
    #[must_use]
    pub(crate) fn submit(&self, url: Url, scheme: String) -> bool {
        self.submit_tagged(url, scheme, 0, false)
    }

    /// Like [`FetchPool::submit`], tagging the job with the submitting
    /// drain's epoch and whether it is a hedge.
    #[must_use]
    pub(crate) fn submit_tagged(&self, url: Url, scheme: String, epoch: u64, hedge: bool) -> bool {
        self.job_tx
            .send(Job {
                url,
                scheme,
                epoch,
                hedge,
            })
            .is_ok()
    }

    /// Blocks for the next completion, in arrival (not submission) order.
    /// Returns `None` if the pool shut down before delivering one — a
    /// worker died without completing its job.
    #[must_use]
    pub(crate) fn recv(&self) -> Option<Done> {
        self.done_rx.recv().ok()
    }

    /// Bounded-wait [`FetchPool::recv`]: `Ok` on a completion,
    /// `Err(true)` when `timeout` elapsed first, `Err(false)` when the
    /// pool shut down.
    pub(crate) fn recv_timeout(&self, timeout: std::time::Duration) -> Result<Done, bool> {
        use crossbeam::channel::RecvTimeoutError;
        self.done_rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => true,
            RecvTimeoutError::Disconnected => false,
        })
    }
}

/// Runs `f` with a pool of `workers` threads fetching from `source`.
/// Workers live for the whole call — every `follow` in the evaluated plan
/// shares them — and exit when the pool handle is dropped.
///
/// With a trace sink attached, every worker records a terminal
/// `fetch.worker` event on its way out, carrying the number of jobs it
/// served and the shutdown reason: `drained` (job queue closed after a
/// graceful drain) or `abandoned` (the evaluator stopped listening —
/// an early abort). The records are buffered and flushed *after* the
/// workers have been joined, in worker order, so pooled traces stay
/// deterministic; a worker index with **no** terminal event in an
/// exported trace therefore means that worker hung or died rather than
/// draining its queue.
pub(crate) fn with_pool<S, R>(
    source: &S,
    workers: usize,
    trace: Option<&TraceSink>,
    trace_parent: Option<u64>,
    cancel: Option<&obs::CancelToken>,
    f: impl FnOnce(&FetchPool) -> R,
) -> R
where
    S: PageSource + Sync,
{
    let workers = workers.max(1);
    let (job_tx, job_rx) = unbounded::<Job>();
    let (done_tx, done_rx) = unbounded::<Done>();
    let terminals: Mutex<Vec<(usize, u64, &'static str)>> = Mutex::new(Vec::new());
    // Capture the spawning thread's ambient request context so worker
    // threads charge fetch time (and attribute coalesced waits) to the
    // same request the evaluation serves.
    let reqctx = obs::reqctx::current();
    let result = std::thread::scope(|scope| {
        for idx in 0..workers {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let terminals = &terminals;
            let traced = trace.is_some();
            let reqctx = reqctx.clone();
            let cancel = cancel.cloned();
            scope.spawn(move || {
                let clock = reqctx.as_ref().map(|c| c.clock.clone());
                obs::reqctx::with_ctx(reqctx, || {
                    let mut jobs = 0u64;
                    let mut reason = "drained";
                    while let Ok(job) = job_rx.recv() {
                        let t0 = clock.as_ref().map(|_| std::time::Instant::now());
                        // Cooperative cancellation, checked before dispatch:
                        // a cancelled job never reaches the source, so the
                        // server sees no GET for it. A fetch already inside
                        // the source runs to completion (and is counted).
                        let skip = cancel
                            .as_ref()
                            .is_some_and(|t| t.is_url_cancelled(job.url.as_str()));
                        // A panicking source must not take the worker (and with
                        // it the whole process, via the scope join) down: catch
                        // it and report the job as a source error instead.
                        let outcome = if skip {
                            Err(SourceError::Cancelled(job.url.clone()))
                        } else {
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                source.fetch_stamped(&job.url, &job.scheme)
                            }))
                            .unwrap_or_else(|payload| {
                                let msg = payload
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_string())
                                    .or_else(|| payload.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "unknown panic".to_string());
                                Err(SourceError::Other(format!("fetch worker panicked: {msg}")))
                            })
                        };
                        if let (Some(clock), Some(t0)) = (&clock, t0) {
                            clock.add_us(t0.elapsed().as_micros() as u64);
                        }
                        jobs += 1;
                        if done_tx
                            .send(Done {
                                url: job.url,
                                outcome,
                                epoch: job.epoch,
                                hedge: job.hedge,
                            })
                            .is_err()
                        {
                            // Evaluation aborted early (e.g. a source error):
                            // nobody is listening any more.
                            reason = "abandoned";
                            break;
                        }
                    }
                    if traced {
                        terminals.lock().push((idx, jobs, reason));
                    }
                });
            });
        }
        // The pool handle owns the only remaining sender/receiver ends.
        drop(job_rx);
        drop(done_tx);
        let pool = FetchPool { job_tx, done_rx };
        let result = f(&pool);
        drop(pool); // closes the job channel; workers drain and exit
        result
    });
    if let Some(sink) = trace {
        let mut records = terminals.into_inner();
        records.sort_by_key(|&(idx, _, _)| idx);
        for (idx, jobs, reason) in records {
            sink.event(
                EventKind::Fetch,
                "fetch.worker",
                trace_parent,
                vec![
                    ("worker".to_string(), idx.into()),
                    ("jobs".to_string(), jobs.into()),
                    ("reason".to_string(), reason.into()),
                ],
            );
        }
    }
    result
}

/// Hedged-GET configuration for the evaluator's pooled drain loop:
/// after `delay_us` without a completion, one backup fetch is launched
/// for the laggard; first response wins and the loser is cancelled
/// through the evaluator's [`obs::CancelToken`].
///
/// The counters are [`obs::Counter`] handles so a resilience policy can
/// hand in its registry-backed cells and observe hedge activity in
/// `ResilienceSnapshot` directly; hedge completions are **never**
/// charged to `page_accesses` (only the first completion per URL is),
/// keeping the paper's counters exact.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Delay before launching the backup fetch, microseconds.
    pub delay_us: u64,
    /// Backup fetches launched.
    pub hedges: obs::Counter,
    /// Hedges whose response arrived before the primary's.
    pub hedge_wins: obs::Counter,
    /// Losing twins cancelled before dispatch (no server GET happened).
    pub hedge_cancelled: obs::Counter,
}

impl HedgeConfig {
    /// A config with fresh, unregistered counters.
    pub fn new(delay_us: u64) -> Self {
        HedgeConfig {
            delay_us,
            hedges: obs::Counter::new(),
            hedge_wins: obs::Counter::new(),
            hedge_cancelled: obs::Counter::new(),
        }
    }
}

/// One in-flight fetch: followers park on the condvar until the leader
/// (or a shutdown) publishes into the slot.
struct Flight {
    slot: StdMutex<Option<FetchOutcome>>,
    cv: Condvar,
    /// `(request id, fetch.lead event id)` of the leader, when the
    /// leader carried a request context — lets followers link their
    /// join events to the fetch they waited on, across requests.
    leader_tag: StdMutex<Option<(u64, u64)>>,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: StdMutex::new(None),
            cv: Condvar::new(),
            leader_tag: StdMutex::new(None),
        }
    }

    fn publish(&self, outcome: FetchOutcome) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        // First write wins: a shutdown that already woke the followers
        // must not be overwritten by the leader completing afterwards
        // (the leader returns its own result directly either way).
        if slot.is_none() {
            *slot = Some(outcome);
        }
        self.cv.notify_all();
    }
}

/// Point-in-time counters of a [`CoalescingSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoalesceStats {
    /// Fetches that went to the inner source (one per coalition).
    pub leaders: u64,
    /// Fetches served by joining an in-flight leader — each one is a
    /// server GET that did not happen.
    pub followers: u64,
    /// Followers woken early by [`CoalescingSource::shutdown`].
    pub shutdown_wakes: u64,
    /// Followers that stopped waiting on their own: their request's
    /// deadline expired or their URL was cancelled while they were
    /// parked on a leader.
    pub cancel_wakes: u64,
}

impl CoalesceStats {
    /// Server GETs avoided: one per follower that shared a leader's fetch.
    pub fn saved_gets(&self) -> u64 {
        self.followers
            .saturating_sub(self.shutdown_wakes)
            .saturating_sub(self.cancel_wakes)
    }
}

/// Single-flight coalescing wrapper around a thread-safe [`PageSource`].
///
/// Composes like the other source wrappers (`CachedSource`,
/// `ResilientSource`): it borrows the inner source, so retry/breaker
/// machinery stacks *underneath* — one coalesced fetch runs the full
/// resilient path once and every follower shares the outcome, including
/// an error outcome (an error is cheaper to share than to rediscover
/// N times; the per-evaluation degradation policy still applies above).
///
/// The paper's `page_accesses` counter is charged per evaluation at fetch
/// completion, above this layer, so coalescing never changes any
/// E1–E8 number — only the server's GET counter shrinks.
pub struct CoalescingSource<'a, S> {
    inner: &'a S,
    flights: StdMutex<HashMap<Url, Arc<Flight>>>,
    shutdown: AtomicBool,
    leaders: AtomicU64,
    followers: AtomicU64,
    shutdown_wakes: AtomicU64,
    cancel_wakes: AtomicU64,
}

impl<'a, S: PageSource + Sync> CoalescingSource<'a, S> {
    /// Wraps `inner` with single-flight semantics.
    pub fn new(inner: &'a S) -> Self {
        CoalescingSource {
            inner,
            flights: StdMutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            leaders: AtomicU64::new(0),
            followers: AtomicU64::new(0),
            shutdown_wakes: AtomicU64::new(0),
            cancel_wakes: AtomicU64::new(0),
        }
    }

    /// Shuts the coalescer down: every *waiting follower* is woken
    /// immediately with a clean [`SourceError::Cancelled`] (no hang, no
    /// panic, and distinguishable from a transient server failure so
    /// degradation layers do not retry it), and subsequent fetches fail
    /// fast with the same error. Leaders already executing their inner
    /// fetch run to completion and return their own result.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let flights: Vec<(Url, Arc<Flight>)> = {
            let mut map = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            map.drain().collect()
        };
        for (url, flight) in flights {
            flight.publish(Err(SourceError::Cancelled(url)));
        }
    }

    /// True once [`CoalescingSource::shutdown`] has been called.
    pub fn is_shut_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Current leader/follower counters.
    pub fn stats(&self) -> CoalesceStats {
        CoalesceStats {
            leaders: self.leaders.load(Ordering::SeqCst),
            followers: self.followers.load(Ordering::SeqCst),
            shutdown_wakes: self.shutdown_wakes.load(Ordering::SeqCst),
            cancel_wakes: self.cancel_wakes.load(Ordering::SeqCst),
        }
    }

    fn lead(&self, url: &Url, scheme: &str, flight: &Arc<Flight>) -> FetchOutcome {
        self.leaders.fetch_add(1, Ordering::SeqCst);
        // Panic safety: if the inner fetch unwinds, the guard still
        // retires the flight and wakes the followers with an error —
        // a follower must never hang on a dead leader.
        struct Retire<'g, 'a, S> {
            src: &'g CoalescingSource<'a, S>,
            url: &'g Url,
            flight: &'g Arc<Flight>,
            outcome: Option<FetchOutcome>,
        }
        impl<S> Drop for Retire<'_, '_, S> {
            fn drop(&mut self) {
                {
                    let mut map = self.src.flights.lock().unwrap_or_else(|e| e.into_inner());
                    map.remove(self.url);
                }
                let outcome = self.outcome.take().unwrap_or_else(|| {
                    Err(SourceError::Other(format!(
                        "coalesced fetch leader panicked for {}",
                        self.url
                    )))
                });
                self.flight.publish(outcome);
            }
        }
        let mut retire = Retire {
            src: self,
            url,
            flight,
            outcome: None,
        };
        let outcome = self.inner.fetch_stamped(url, scheme);
        retire.outcome = Some(outcome.clone());
        drop(retire);
        outcome
    }

    fn follow_flight(&self, url: &Url, flight: &Arc<Flight>) -> FetchOutcome {
        self.followers.fetch_add(1, Ordering::SeqCst);
        let ctx = obs::reqctx::current();
        // Followers with a finite deadline or a cancel token in scope
        // poll in short quanta so a budget exhaustion / relevance
        // cancellation wakes them without waiting out the leader; all
        // others park on the condvar for free exactly as before.
        let watches = ctx
            .as_ref()
            .is_some_and(|c| c.deadline.is_finite() || c.cancel.is_some());
        let mut slot = flight.slot.lock().unwrap_or_else(|e| e.into_inner());
        while slot.is_none() {
            if watches {
                let c = ctx.as_ref().expect("watches implies ctx");
                let cancelled = c
                    .cancel
                    .as_ref()
                    .is_some_and(|t| t.is_url_cancelled(url.as_str()));
                if cancelled || c.deadline.expired() {
                    drop(slot);
                    self.cancel_wakes.fetch_add(1, Ordering::SeqCst);
                    return Err(SourceError::Cancelled(url.clone()));
                }
                let quantum = c
                    .deadline
                    .remaining()
                    .unwrap_or(std::time::Duration::from_millis(1))
                    .min(std::time::Duration::from_millis(1))
                    .max(std::time::Duration::from_micros(50));
                let (s, _) = flight
                    .cv
                    .wait_timeout(slot, quantum)
                    .unwrap_or_else(|e| e.into_inner());
                slot = s;
            } else {
                slot = flight.cv.wait(slot).unwrap_or_else(|e| e.into_inner());
            }
        }
        let outcome = slot.as_ref().expect("published").clone();
        if matches!(&outcome, Err(SourceError::Cancelled(_))) {
            self.shutdown_wakes.fetch_add(1, Ordering::SeqCst);
        }
        outcome
    }
}

impl<S: PageSource + Sync> PageSource for CoalescingSource<'_, S> {
    fn fetch(&self, url: &Url, scheme: &str) -> Result<Tuple, SourceError> {
        self.fetch_stamped(url, scheme).map(|(t, _)| t)
    }

    fn fetch_stamped(&self, url: &Url, scheme: &str) -> FetchOutcome {
        if self.is_shut_down() {
            return Err(SourceError::Cancelled(url.clone()));
        }
        let ctx = obs::reqctx::current();
        let (flight, is_leader) = {
            let mut map = self.flights.lock().unwrap_or_else(|e| e.into_inner());
            match map.get(url) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::new());
                    if let Some(ctx) = &ctx {
                        // Tag the flight inside the map lock, before any
                        // follower can join: the join event's linkage
                        // must never observe a half-initialized leader.
                        let id = ctx.sink.event(
                            EventKind::Fetch,
                            "fetch.lead",
                            Some(ctx.parent),
                            vec![
                                ("url".to_string(), url.as_str().into()),
                                ("request".to_string(), ctx.request_id.into()),
                            ],
                        );
                        *f.leader_tag.lock().unwrap_or_else(|e| e.into_inner()) =
                            Some((ctx.request_id, id));
                    }
                    map.insert(url.clone(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if is_leader {
            self.lead(url, scheme, &flight)
        } else {
            let t0 = ctx.as_ref().map(|_| std::time::Instant::now());
            let outcome = self.follow_flight(url, &flight);
            if let Some(ctx) = &ctx {
                // The coalesced wait is attributed, not invisible: the
                // follower's own request records where the time went and
                // which leader fetch it shared.
                let mut fields = vec![
                    ("url".to_string(), url.as_str().into()),
                    ("request".to_string(), ctx.request_id.into()),
                    (
                        "waited_us".to_string(),
                        (t0.map(|t| t.elapsed().as_micros() as u64).unwrap_or(0)).into(),
                    ),
                ];
                if let Some((lreq, lid)) =
                    *flight.leader_tag.lock().unwrap_or_else(|e| e.into_inner())
                {
                    fields.push(("leader_request".to_string(), lreq.into()));
                    fields.push(("leader_fetch".to_string(), lid.into()));
                }
                ctx.sink
                    .event(EventKind::Fetch, "fetch.join", Some(ctx.parent), fields);
            }
            outcome
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingSource(AtomicUsize);

    impl PageSource for CountingSource {
        fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
            self.0.fetch_add(1, Ordering::SeqCst);
            if url.as_str().ends_with("missing") {
                Err(SourceError::NotFound(url.clone()))
            } else {
                Ok(Tuple::new().with("Path", url.as_str()))
            }
        }
    }

    #[test]
    fn pool_serves_multiple_batches_with_same_workers() {
        let src = CountingSource(AtomicUsize::new(0));
        let total = with_pool(&src, 4, None, None, None, |pool| {
            let mut done = 0;
            for batch in 0..3 {
                for i in 0..10 {
                    assert!(pool.submit(Url::new(format!("/b{batch}/{i}")), "P".into()));
                }
                for _ in 0..10 {
                    let d = pool.recv().expect("pool alive");
                    assert!(d.outcome.is_ok());
                    done += 1;
                }
            }
            done
        });
        assert_eq!(total, 30);
        assert_eq!(src.0.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn completions_report_not_found() {
        let src = CountingSource(AtomicUsize::new(0));
        with_pool(&src, 2, None, None, None, |pool| {
            assert!(pool.submit(Url::new("/ok"), "P".into()));
            assert!(pool.submit(Url::new("/missing"), "P".into()));
            let outcomes: Vec<_> = (0..2)
                .map(|_| pool.recv().expect("pool alive").outcome)
                .collect();
            assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 1);
            assert!(outcomes
                .iter()
                .any(|o| matches!(o, Err(SourceError::NotFound(_)))));
        });
    }

    #[test]
    fn early_exit_leaves_no_hung_workers() {
        let src = CountingSource(AtomicUsize::new(0));
        // Submit work but consume only part of it; dropping the pool must
        // still terminate the workers (scope join would hang otherwise).
        with_pool(&src, 3, None, None, None, |pool| {
            for i in 0..20 {
                assert!(pool.submit(Url::new(format!("/{i}")), "P".into()));
            }
            pool.recv().expect("pool alive");
        });
    }

    /// A source that panics on some URLs.
    struct PanickySource;

    impl PageSource for PanickySource {
        fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
            if url.as_str().contains("boom") {
                panic!("wrapper exploded on {url}");
            }
            Ok(Tuple::new().with("Path", url.as_str()))
        }
    }

    #[test]
    fn terminal_events_distinguish_drained_from_abandoned() {
        let sink = TraceSink::with_seed(1);
        let src = CountingSource(AtomicUsize::new(0));
        with_pool(&src, 3, Some(&sink), None, None, |pool| {
            for i in 0..6 {
                assert!(pool.submit(Url::new(format!("/{i}")), "P".into()));
            }
            for _ in 0..6 {
                pool.recv().expect("pool alive");
            }
        });
        let events: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.name == "fetch.worker")
            .collect();
        assert_eq!(events.len(), 3, "one terminal event per worker");
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.field_u64("worker"), Some(i as u64), "worker order");
            assert_eq!(e.field_str("reason"), Some("drained"));
        }
        let jobs: u64 = events.iter().map(|e| e.field_u64("jobs").unwrap()).sum();
        assert_eq!(jobs, 6);

        // Abandoned: submit plenty of slow jobs, consume one, drop the
        // pool — the queue cannot drain before the workers notice the
        // evaluator is gone.
        struct SlowSource;
        impl PageSource for SlowSource {
            fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
                std::thread::sleep(std::time::Duration::from_millis(2));
                Ok(Tuple::new().with("Path", url.as_str()))
            }
        }
        let sink = TraceSink::with_seed(1);
        with_pool(&SlowSource, 2, Some(&sink), None, None, |pool| {
            for i in 0..50 {
                assert!(pool.submit(Url::new(format!("/{i}")), "P".into()));
            }
            pool.recv().expect("pool alive");
        });
        let events: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.name == "fetch.worker")
            .collect();
        assert_eq!(events.len(), 2);
        assert!(
            events
                .iter()
                .any(|e| e.field_str("reason") == Some("abandoned")),
            "an early-abort shutdown must be visible in the trace"
        );
    }

    /// A source that blocks each fetch until released, reporting arrivals.
    struct GatedSource {
        entered_tx: crossbeam::channel::Sender<()>,
        release_rx: crossbeam::channel::Receiver<()>,
        fetches: AtomicUsize,
    }

    impl GatedSource {
        fn new() -> (
            Self,
            crossbeam::channel::Receiver<()>,
            crossbeam::channel::Sender<()>,
        ) {
            let (entered_tx, entered_rx) = unbounded();
            let (release_tx, release_rx) = unbounded();
            (
                GatedSource {
                    entered_tx,
                    release_rx,
                    fetches: AtomicUsize::new(0),
                },
                entered_rx,
                release_tx,
            )
        }
    }

    impl PageSource for GatedSource {
        fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
            self.fetches.fetch_add(1, Ordering::SeqCst);
            self.entered_tx.send(()).unwrap();
            self.release_rx.recv().unwrap();
            Ok(Tuple::new().with("Path", url.as_str()))
        }
    }

    /// Spins until `src` has `n` parked followers (bounded wait).
    fn await_followers<S: PageSource + Sync>(src: &CoalescingSource<'_, S>, n: u64) {
        for _ in 0..2000 {
            if src.stats().followers >= n {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        panic!("followers never parked: {:?}", src.stats());
    }

    #[test]
    fn concurrent_fetches_of_one_url_share_one_inner_fetch() {
        let (gated, entered_rx, release_tx) = GatedSource::new();
        let coalesced = CoalescingSource::new(&gated);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..5)
                .map(|_| scope.spawn(|| coalesced.fetch_stamped(&Url::new("/hot"), "P")))
                .collect();
            entered_rx.recv().unwrap(); // the single leader is inside
            await_followers(&coalesced, 4);
            release_tx.send(()).unwrap();
            for h in handles {
                let (tuple, _) = h.join().unwrap().expect("shared fetch succeeds");
                assert_eq!(tuple.get("Path").unwrap().as_text().unwrap(), "/hot");
            }
        });
        assert_eq!(
            gated.fetches.load(Ordering::SeqCst),
            1,
            "one GET for five callers"
        );
        let stats = coalesced.stats();
        assert_eq!((stats.leaders, stats.followers), (1, 4));
        assert_eq!(stats.saved_gets(), 4);
    }

    #[test]
    fn distinct_urls_do_not_coalesce_and_errors_are_shared() {
        struct FailingSource;
        impl PageSource for FailingSource {
            fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
                if url.as_str() == "/missing" {
                    Err(SourceError::NotFound(url.clone()))
                } else {
                    Ok(Tuple::new().with("Path", url.as_str()))
                }
            }
        }
        let coalesced = CoalescingSource::new(&FailingSource);
        assert!(coalesced.fetch_stamped(&Url::new("/a"), "P").is_ok());
        assert!(matches!(
            coalesced.fetch_stamped(&Url::new("/missing"), "P"),
            Err(SourceError::NotFound(_))
        ));
        let stats = coalesced.stats();
        assert_eq!((stats.leaders, stats.followers), (2, 0));
        // A retired flight leaves no residue: the same URL fetches again.
        assert!(coalesced.fetch_stamped(&Url::new("/a"), "P").is_ok());
        assert_eq!(coalesced.stats().leaders, 3);
    }

    #[test]
    fn shutdown_wakes_waiting_followers_with_clean_error() {
        let (gated, entered_rx, release_tx) = GatedSource::new();
        let coalesced = CoalescingSource::new(&gated);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| coalesced.fetch_stamped(&Url::new("/slow"), "P"));
            entered_rx.recv().unwrap(); // leader is blocked inside the source
            let followers: Vec<_> = (0..3)
                .map(|_| scope.spawn(|| coalesced.fetch_stamped(&Url::new("/slow"), "P")))
                .collect();
            await_followers(&coalesced, 3);
            // Shut down while the coalesced fetch has parked followers:
            // all of them must wake promptly with a clean error.
            coalesced.shutdown();
            for f in followers {
                match f.join().expect("no panic") {
                    Err(SourceError::Cancelled(url)) => {
                        assert_eq!(url.as_str(), "/slow");
                    }
                    other => panic!("follower should see Cancelled on shutdown, got {other:?}"),
                }
            }
            // New fetches fail fast rather than hanging.
            assert!(matches!(
                coalesced.fetch_stamped(&Url::new("/other"), "P"),
                Err(SourceError::Cancelled(_))
            ));
            // The in-flight leader still completes normally.
            release_tx.send(()).unwrap();
            assert!(leader.join().unwrap().is_ok());
        });
        let stats = coalesced.stats();
        assert_eq!(stats.shutdown_wakes, 3);
        assert_eq!(stats.saved_gets(), 0, "shutdown wakes are not savings");
    }

    #[test]
    fn leader_panic_wakes_followers_with_error_not_hang() {
        struct PanicAfterSignal {
            entered_tx: crossbeam::channel::Sender<()>,
            release_rx: crossbeam::channel::Receiver<()>,
        }
        impl PageSource for PanicAfterSignal {
            fn fetch(&self, _url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
                self.entered_tx.send(()).unwrap();
                self.release_rx.recv().unwrap();
                panic!("leader exploded");
            }
        }
        let (entered_tx, entered_rx) = unbounded();
        let (release_tx, release_rx) = unbounded();
        let src = PanicAfterSignal {
            entered_tx,
            release_rx,
        };
        let coalesced = CoalescingSource::new(&src);
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    coalesced.fetch_stamped(&Url::new("/boom"), "P")
                }))
            });
            entered_rx.recv().unwrap();
            let follower = scope.spawn(|| coalesced.fetch_stamped(&Url::new("/boom"), "P"));
            await_followers(&coalesced, 1);
            release_tx.send(()).unwrap();
            assert!(leader.join().unwrap().is_err(), "leader unwound");
            match follower.join().expect("follower must not hang or panic") {
                Err(SourceError::Other(m)) => assert!(m.contains("panicked"), "got: {m}"),
                other => panic!("expected leader-panic error, got {other:?}"),
            }
        });
    }

    /// The leader-panic + follower-cancel race: a follower whose URL is
    /// cancelled while it waits must wake itself with `Cancelled` even
    /// though the leader later panics (whose Retire guard publishes a
    /// leader-panic error into the same flight). Neither signal may hang
    /// or panic the follower, and the flight must still retire cleanly.
    #[test]
    fn leader_panic_races_follower_cancellation() {
        use obs::reqctx::{with_ctx, FetchClock, RequestCtx};

        struct PanicAfterSignal {
            entered_tx: crossbeam::channel::Sender<()>,
            release_rx: crossbeam::channel::Receiver<()>,
        }
        impl PageSource for PanicAfterSignal {
            fn fetch(&self, _url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
                self.entered_tx.send(()).unwrap();
                self.release_rx.recv().unwrap();
                panic!("leader exploded");
            }
        }
        let (entered_tx, entered_rx) = unbounded();
        let (release_tx, release_rx) = unbounded();
        let src = PanicAfterSignal {
            entered_tx,
            release_rx,
        };
        let coalesced = CoalescingSource::new(&src);
        let token = obs::CancelToken::new();
        let follower_ctx = RequestCtx {
            sink: TraceSink::with_seed(9),
            parent: 1,
            request_id: 9,
            clock: FetchClock::new(),
            deadline: obs::Deadline::infinite(),
            cancel: Some(token.clone()),
        };
        std::thread::scope(|scope| {
            let leader = scope.spawn(|| {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    coalesced.fetch_stamped(&Url::new("/race"), "P")
                }))
            });
            entered_rx.recv().unwrap(); // leader is inside the source
            let fc = follower_ctx.clone();
            let follower = scope.spawn(|| {
                with_ctx(Some(fc), || {
                    coalesced.fetch_stamped(&Url::new("/race"), "P")
                })
            });
            await_followers(&coalesced, 1);
            // Cancel the follower's URL while the leader is still stuck,
            // then let the leader blow up: both wake paths fire.
            token.cancel_url("/race");
            release_tx.send(()).unwrap();
            assert!(leader.join().unwrap().is_err(), "leader unwound");
            match follower.join().expect("follower must not hang or panic") {
                Err(SourceError::Cancelled(url)) => assert_eq!(url.as_str(), "/race"),
                // The leader's panic may win the race; that error is
                // clean too — but it must be one of exactly these two.
                Err(SourceError::Other(m)) => assert!(m.contains("panicked"), "got: {m}"),
                other => panic!("expected Cancelled or leader-panic error, got {other:?}"),
            }
        });
        // The retired flight leaves no residue and new fetches still work
        // (they will fail by panicking source, but the map must be empty).
        assert!(coalesced
            .flights
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty());
    }

    /// Pool workers honor the cancel token: a job whose URL is cancelled
    /// before a worker picks it up never reaches the source and completes
    /// with `Cancelled`.
    #[test]
    fn pool_workers_skip_cancelled_jobs_without_touching_source() {
        let src = CountingSource(AtomicUsize::new(0));
        let token = obs::CancelToken::new();
        token.cancel_url("/dead");
        with_pool(&src, 2, None, None, Some(&token), |pool| {
            assert!(pool.submit(Url::new("/live"), "P".into()));
            assert!(pool.submit(Url::new("/dead"), "P".into()));
            let outcomes: Vec<_> = (0..2)
                .map(|_| {
                    let d = pool.recv().expect("pool alive");
                    (d.url, d.outcome)
                })
                .collect();
            for (url, outcome) in outcomes {
                if url.as_str() == "/dead" {
                    assert!(matches!(outcome, Err(SourceError::Cancelled(_))));
                } else {
                    assert!(outcome.is_ok());
                }
            }
        });
        assert_eq!(
            src.0.load(Ordering::SeqCst),
            1,
            "the cancelled job must not reach the source"
        );
    }

    #[test]
    fn coalescing_composes_with_the_fetch_pool() {
        let src = CountingSource(AtomicUsize::new(0));
        let coalesced = CoalescingSource::new(&src);
        let total = with_pool(&coalesced, 4, None, None, None, |pool| {
            for _ in 0..4 {
                for i in 0..5 {
                    assert!(pool.submit(Url::new(format!("/{i}")), "P".into()));
                }
            }
            (0..20)
                .filter(|_| pool.recv().expect("pool alive").outcome.is_ok())
                .count()
        });
        assert_eq!(total, 20, "every submitted job completes");
        let stats = coalesced.stats();
        assert_eq!(stats.leaders + stats.followers, 20);
        assert_eq!(
            src.0.load(Ordering::SeqCst) as u64,
            stats.leaders,
            "inner fetches = leaders only"
        );
    }

    #[test]
    fn follower_join_links_to_the_leader_fetch_across_requests() {
        use obs::reqctx::{with_ctx, FetchClock, RequestCtx};

        let ctx = |req: u64| RequestCtx {
            sink: TraceSink::with_seed(req),
            parent: req * 100,
            request_id: req,
            clock: FetchClock::new(),
            deadline: obs::Deadline::infinite(),
            cancel: None,
        };
        let (leader_ctx, follower_ctx) = (ctx(1), ctx(2));

        let (gated, entered_rx, release_tx) = GatedSource::new();
        let coalesced = CoalescingSource::new(&gated);
        std::thread::scope(|scope| {
            let lc = leader_ctx.clone();
            let leader = scope
                .spawn(|| with_ctx(Some(lc), || coalesced.fetch_stamped(&Url::new("/hot"), "P")));
            entered_rx.recv().unwrap(); // leader is inside the source
            let fc = follower_ctx.clone();
            let follower = scope
                .spawn(|| with_ctx(Some(fc), || coalesced.fetch_stamped(&Url::new("/hot"), "P")));
            await_followers(&coalesced, 1);
            release_tx.send(()).unwrap();
            assert!(leader.join().unwrap().is_ok());
            assert!(follower.join().unwrap().is_ok());
        });

        // The leader's request recorded the fetch it led...
        let lead_events = leader_ctx.sink.events();
        assert_eq!(lead_events.len(), 1);
        let lead = &lead_events[0];
        assert_eq!(lead.name, "fetch.lead");
        assert_eq!(lead.parent, Some(100));
        assert_eq!(lead.field_u64("request"), Some(1));
        // ...and the follower's request attributes its wait to it.
        let join_events = follower_ctx.sink.events();
        assert_eq!(join_events.len(), 1);
        let join = &join_events[0];
        assert_eq!(join.name, "fetch.join");
        assert_eq!(join.parent, Some(200));
        assert_eq!(join.field_u64("leader_request"), Some(1));
        assert_eq!(join.field_u64("leader_fetch"), Some(lead.id));
        assert!(join.field_u64("waited_us").is_some());
    }

    #[test]
    fn worker_panic_surfaces_as_source_error() {
        with_pool(&PanickySource, 2, None, None, None, |pool| {
            assert!(pool.submit(Url::new("/ok"), "P".into()));
            assert!(pool.submit(Url::new("/boom"), "P".into()));
            assert!(pool.submit(Url::new("/ok2"), "P".into()));
            let outcomes: Vec<_> = (0..3)
                .map(|_| pool.recv().expect("workers survive panics").outcome)
                .collect();
            assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 2);
            let err = outcomes
                .iter()
                .find_map(|o| o.as_ref().err())
                .expect("one job failed");
            match err {
                SourceError::Other(m) => {
                    assert!(m.contains("fetch worker panicked"), "got: {m}");
                    assert!(m.contains("wrapper exploded"), "got: {m}");
                }
                other => panic!("unexpected error: {other:?}"),
            }
        });
    }
}
