//! Persistent fetch worker pool.
//!
//! Replaces per-batch scoped threads: the pool's workers are spawned
//! **once per evaluation** and serve every `follow` operator in the plan
//! through a pair of MPMC channels. The evaluator streams distinct links
//! into the job channel and consumes wrapped tuples as they complete, so
//! CPU-side work (wrapping, row assembly) overlaps network latency instead
//! of waiting on a per-batch barrier.
//!
//! Completions arrive out of order; the evaluator's `follow` assembly is
//! keyed by URL, so results are independent of completion order.

use crate::eval::{PageSource, SourceError};
use adm::{Tuple, Url};
use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::trace::{EventKind, TraceSink};
use parking_lot::Mutex;

/// A fetch request: the URL and the page-scheme it is expected to match.
#[derive(Debug)]
struct Job {
    url: Url,
    scheme: String,
}

/// A completed fetch: the wrapped tuple plus the source's Last-Modified
/// stamp when known.
pub(crate) struct Done {
    pub url: Url,
    pub outcome: Result<(Tuple, Option<u64>), SourceError>,
}

/// Handle to a running pool. Only valid inside [`with_pool`]'s closure;
/// dropping it closes the job channel, which is what terminates workers.
pub struct FetchPool {
    job_tx: Sender<Job>,
    done_rx: Receiver<Done>,
}

impl FetchPool {
    /// Enqueues a fetch; some worker will pick it up. Returns `false` if
    /// every worker has exited (the pool is shut down) — the caller must
    /// surface that as a source error rather than panic.
    #[must_use]
    pub(crate) fn submit(&self, url: Url, scheme: String) -> bool {
        self.job_tx.send(Job { url, scheme }).is_ok()
    }

    /// Blocks for the next completion, in arrival (not submission) order.
    /// Returns `None` if the pool shut down before delivering one — a
    /// worker died without completing its job.
    #[must_use]
    pub(crate) fn recv(&self) -> Option<Done> {
        self.done_rx.recv().ok()
    }
}

/// Runs `f` with a pool of `workers` threads fetching from `source`.
/// Workers live for the whole call — every `follow` in the evaluated plan
/// shares them — and exit when the pool handle is dropped.
///
/// With a trace sink attached, every worker records a terminal
/// `fetch.worker` event on its way out, carrying the number of jobs it
/// served and the shutdown reason: `drained` (job queue closed after a
/// graceful drain) or `abandoned` (the evaluator stopped listening —
/// an early abort). The records are buffered and flushed *after* the
/// workers have been joined, in worker order, so pooled traces stay
/// deterministic; a worker index with **no** terminal event in an
/// exported trace therefore means that worker hung or died rather than
/// draining its queue.
pub(crate) fn with_pool<S, R>(
    source: &S,
    workers: usize,
    trace: Option<&TraceSink>,
    f: impl FnOnce(&FetchPool) -> R,
) -> R
where
    S: PageSource + Sync,
{
    let workers = workers.max(1);
    let (job_tx, job_rx) = unbounded::<Job>();
    let (done_tx, done_rx) = unbounded::<Done>();
    let terminals: Mutex<Vec<(usize, u64, &'static str)>> = Mutex::new(Vec::new());
    let result = std::thread::scope(|scope| {
        for idx in 0..workers {
            let job_rx = job_rx.clone();
            let done_tx = done_tx.clone();
            let terminals = &terminals;
            let traced = trace.is_some();
            scope.spawn(move || {
                let mut jobs = 0u64;
                let mut reason = "drained";
                while let Ok(job) = job_rx.recv() {
                    // A panicking source must not take the worker (and with
                    // it the whole process, via the scope join) down: catch
                    // it and report the job as a source error instead.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        source.fetch_stamped(&job.url, &job.scheme)
                    }))
                    .unwrap_or_else(|payload| {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "unknown panic".to_string());
                        Err(SourceError::Other(format!("fetch worker panicked: {msg}")))
                    });
                    jobs += 1;
                    if done_tx
                        .send(Done {
                            url: job.url,
                            outcome,
                        })
                        .is_err()
                    {
                        // Evaluation aborted early (e.g. a source error):
                        // nobody is listening any more.
                        reason = "abandoned";
                        break;
                    }
                }
                if traced {
                    terminals.lock().push((idx, jobs, reason));
                }
            });
        }
        // The pool handle owns the only remaining sender/receiver ends.
        drop(job_rx);
        drop(done_tx);
        let pool = FetchPool { job_tx, done_rx };
        let result = f(&pool);
        drop(pool); // closes the job channel; workers drain and exit
        result
    });
    if let Some(sink) = trace {
        let mut records = terminals.into_inner();
        records.sort_by_key(|&(idx, _, _)| idx);
        for (idx, jobs, reason) in records {
            sink.event(
                EventKind::Fetch,
                "fetch.worker",
                None,
                vec![
                    ("worker".to_string(), idx.into()),
                    ("jobs".to_string(), jobs.into()),
                    ("reason".to_string(), reason.into()),
                ],
            );
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingSource(AtomicUsize);

    impl PageSource for CountingSource {
        fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
            self.0.fetch_add(1, Ordering::SeqCst);
            if url.as_str().ends_with("missing") {
                Err(SourceError::NotFound(url.clone()))
            } else {
                Ok(Tuple::new().with("Path", url.as_str()))
            }
        }
    }

    #[test]
    fn pool_serves_multiple_batches_with_same_workers() {
        let src = CountingSource(AtomicUsize::new(0));
        let total = with_pool(&src, 4, None, |pool| {
            let mut done = 0;
            for batch in 0..3 {
                for i in 0..10 {
                    assert!(pool.submit(Url::new(format!("/b{batch}/{i}")), "P".into()));
                }
                for _ in 0..10 {
                    let d = pool.recv().expect("pool alive");
                    assert!(d.outcome.is_ok());
                    done += 1;
                }
            }
            done
        });
        assert_eq!(total, 30);
        assert_eq!(src.0.load(Ordering::SeqCst), 30);
    }

    #[test]
    fn completions_report_not_found() {
        let src = CountingSource(AtomicUsize::new(0));
        with_pool(&src, 2, None, |pool| {
            assert!(pool.submit(Url::new("/ok"), "P".into()));
            assert!(pool.submit(Url::new("/missing"), "P".into()));
            let outcomes: Vec<_> = (0..2)
                .map(|_| pool.recv().expect("pool alive").outcome)
                .collect();
            assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 1);
            assert!(outcomes
                .iter()
                .any(|o| matches!(o, Err(SourceError::NotFound(_)))));
        });
    }

    #[test]
    fn early_exit_leaves_no_hung_workers() {
        let src = CountingSource(AtomicUsize::new(0));
        // Submit work but consume only part of it; dropping the pool must
        // still terminate the workers (scope join would hang otherwise).
        with_pool(&src, 3, None, |pool| {
            for i in 0..20 {
                assert!(pool.submit(Url::new(format!("/{i}")), "P".into()));
            }
            pool.recv().expect("pool alive");
        });
    }

    /// A source that panics on some URLs.
    struct PanickySource;

    impl PageSource for PanickySource {
        fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
            if url.as_str().contains("boom") {
                panic!("wrapper exploded on {url}");
            }
            Ok(Tuple::new().with("Path", url.as_str()))
        }
    }

    #[test]
    fn terminal_events_distinguish_drained_from_abandoned() {
        let sink = TraceSink::with_seed(1);
        let src = CountingSource(AtomicUsize::new(0));
        with_pool(&src, 3, Some(&sink), |pool| {
            for i in 0..6 {
                assert!(pool.submit(Url::new(format!("/{i}")), "P".into()));
            }
            for _ in 0..6 {
                pool.recv().expect("pool alive");
            }
        });
        let events: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.name == "fetch.worker")
            .collect();
        assert_eq!(events.len(), 3, "one terminal event per worker");
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.field_u64("worker"), Some(i as u64), "worker order");
            assert_eq!(e.field_str("reason"), Some("drained"));
        }
        let jobs: u64 = events.iter().map(|e| e.field_u64("jobs").unwrap()).sum();
        assert_eq!(jobs, 6);

        // Abandoned: submit plenty of slow jobs, consume one, drop the
        // pool — the queue cannot drain before the workers notice the
        // evaluator is gone.
        struct SlowSource;
        impl PageSource for SlowSource {
            fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, SourceError> {
                std::thread::sleep(std::time::Duration::from_millis(2));
                Ok(Tuple::new().with("Path", url.as_str()))
            }
        }
        let sink = TraceSink::with_seed(1);
        with_pool(&SlowSource, 2, Some(&sink), |pool| {
            for i in 0..50 {
                assert!(pool.submit(Url::new(format!("/{i}")), "P".into()));
            }
            pool.recv().expect("pool alive");
        });
        let events: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.name == "fetch.worker")
            .collect();
        assert_eq!(events.len(), 2);
        assert!(
            events
                .iter()
                .any(|e| e.field_str("reason") == Some("abandoned")),
            "an early-abort shutdown must be visible in the trace"
        );
    }

    #[test]
    fn worker_panic_surfaces_as_source_error() {
        with_pool(&PanickySource, 2, None, |pool| {
            assert!(pool.submit(Url::new("/ok"), "P".into()));
            assert!(pool.submit(Url::new("/boom"), "P".into()));
            assert!(pool.submit(Url::new("/ok2"), "P".into()));
            let outcomes: Vec<_> = (0..3)
                .map(|_| pool.recv().expect("workers survive panics").outcome)
                .collect();
            assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 2);
            let err = outcomes
                .iter()
                .find_map(|o| o.as_ref().err())
                .expect("one job failed");
            match err {
                SourceError::Other(m) => {
                    assert!(m.contains("fetch worker panicked"), "got: {m}");
                    assert!(m.contains("wrapper exploded"), "got: {m}");
                }
                other => panic!("unexpected error: {other:?}"),
            }
        });
    }
}
