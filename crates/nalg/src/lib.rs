//! # nalg — the navigational algebra
//!
//! The paper's NALG (Section 4) is an algebra for nested page-relations
//! with the classical operators — selection σ, projection π, join ⋈ —
//! plus two navigational ones:
//!
//! * **unnest page** `R ∘ A` — navigate *inside* a page's nested structure
//!   (the traditional unnest μ);
//! * **follow link** `R –L→ P` — navigate *between* pages; semantically a
//!   join `R ⋈_{R.L = P.URL} P`, but physically a page download per
//!   distinct link, which is what the cost model charges for.
//!
//! This crate provides
//! * [`NalgExpr`] — expression trees, with external-relation leaves that
//!   the optimizer replaces by default navigations (rule 1);
//! * static analysis (computability, output columns) driven by the ADM
//!   scheme;
//! * [`display`] — paper-style pretty printing of expressions and query
//!   plans (Figures 2–4);
//! * [`eval`] — an evaluator over any [`PageSource`], with page-access
//!   accounting that realizes the paper's cost measure.
//!
//! ```
//! use nalg::{NalgExpr, Pred};
//!
//! // the paper's Expression 2: name and e-mail of CS professors
//! let expr = NalgExpr::entry("ProfListPage")
//!     .unnest("ProfList")
//!     .follow("ToProf", "ProfPage")
//!     .select(Pred::eq("DName", "Computer Science"))
//!     .project(vec!["Name", "Email"]);
//! assert_eq!(
//!     nalg::display::inline(&expr),
//!     "π[Name,Email](σ[DName='Computer Science'](ProfListPage ∘ ProfList –ToProf→ ProfPage))"
//! );
//! assert!(expr.is_computable());
//! ```

pub mod cache;
pub mod display;
pub mod error;
pub mod eval;
pub mod expr;
mod fetch;

pub use cache::{CacheStats, SharedPageCache};
pub use error::EvalError;
pub use eval::{
    AuditConfig, AuditReport, ConstraintAudit, DegradationMode, EvalReport, Evaluator, PageSource,
    SourceError,
};
pub use expr::{NalgExpr, Pred};
pub use fetch::{CoalesceStats, CoalescingSource, HedgeConfig};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, EvalError>;
