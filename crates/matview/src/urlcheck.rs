//! Function 2 — URLCheck.
//!
//! ```text
//! IF status(U) = new THEN download, wrap, store
//! ELSE open a light connection to U
//!      IF AccessDate < ModificationDate THEN
//!          download, wrap, store
//!          mark outlinks present only in the new version as `new`
//!          mark outlinks present only in the old version as `missing`
//!      ELSE use the stored tuple
//! status(U) := checked
//! ```
//!
//! A 404 on the light connection means the page itself was deleted: it is
//! removed from the store and pushed onto `CheckMissing` for the off-line
//! sweep.

use crate::store::{outlinks, MatStore, UrlStatus};
use crate::{MatError, Result};
use adm::{Tuple, Url, WebScheme};
use std::collections::HashSet;

/// Access counters of the maintenance protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Light connections opened (HEAD analogues).
    pub light_connections: u64,
    /// Full downloads performed (pages that had actually changed or were
    /// new).
    pub downloads: u64,
    /// Tuples served straight from the local store.
    pub from_store: u64,
}

/// Checks one URL, returning the (fresh) tuple, or `None` if the page no
/// longer exists on the site.
pub fn url_check(
    store: &mut MatStore,
    counters: &mut CheckCounters,
    ws: &WebScheme,
    server: &websim::VirtualServer,
    url: &Url,
    scheme: &str,
) -> Result<Option<Tuple>> {
    if store.status(url) == UrlStatus::Checked {
        counters.from_store += 1;
        return Ok(store.get(url).map(|p| p.tuple.clone()));
    }
    let must_download = if store.status(url) == UrlStatus::New || store.get(url).is_none() {
        // a brand-new page (or one we never materialized): no point in a
        // light connection, we need the content anyway
        true
    } else {
        counters.light_connections += 1;
        match server.head(url) {
            Ok(head) => {
                let stored = store.get(url).expect("checked above");
                stored.access_date < head.last_modified
            }
            Err(_) => {
                // the page is gone: forget it, queue for the off-line sweep
                store.remove(url);
                store.set_status(url.clone(), UrlStatus::Missing);
                store.check_missing.push_back(url.clone());
                return Ok(None);
            }
        }
    };
    if must_download {
        let resp = match server.get(url) {
            Ok(r) => r,
            Err(_) => {
                store.remove(url);
                store.set_status(url.clone(), UrlStatus::Missing);
                store.check_missing.push_back(url.clone());
                return Ok(None);
            }
        };
        counters.downloads += 1;
        let ps = ws.scheme(scheme)?;
        let html = std::str::from_utf8(&resp.body)
            .map_err(|e| MatError::Wrap(format!("non-utf8 at {url}: {e}")))?;
        let fresh =
            wrapper::wrap_page(ps, html).map_err(|e| MatError::Wrap(format!("{url}: {e}")))?;
        // outlink diffing against the previous version
        let old_links: HashSet<Url> = store
            .get(url)
            .map(|p| {
                outlinks(&ps.fields, &p.tuple)
                    .into_iter()
                    .map(|(_, u)| u)
                    .collect()
            })
            .unwrap_or_default();
        let new_links: HashSet<Url> = outlinks(&ps.fields, &fresh)
            .into_iter()
            .map(|(_, u)| u)
            .collect();
        for added in new_links.difference(&old_links) {
            if store.status(added) == UrlStatus::None {
                store.set_status(added.clone(), UrlStatus::New);
            }
        }
        for removed in old_links.difference(&new_links) {
            if store.status(removed) == UrlStatus::None {
                store.set_status(removed.clone(), UrlStatus::Missing);
            }
        }
        store.put(
            url.clone(),
            scheme,
            fresh.clone(),
            resp.last_modified.max(server.now()),
        );
        store.set_status(url.clone(), UrlStatus::Checked);
        Ok(Some(fresh))
    } else {
        counters.from_store += 1;
        store.set_status(url.clone(), UrlStatus::Checked);
        Ok(store.get(url).map(|p| p.tuple.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MatStore;
    use websim::sitegen::{University, UniversityConfig};

    fn setup() -> (University, MatStore) {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 10,
            seed: 33,
            ..UniversityConfig::default()
        })
        .unwrap();
        let mut store = MatStore::new();
        store.materialize(&u.site.scheme, &u.site.server).unwrap();
        u.site.server.reset_stats();
        (u, store)
    }

    #[test]
    fn fresh_page_served_from_store_after_light_connection() {
        let (u, mut store) = setup();
        let mut c = CheckCounters::default();
        let url = University::prof_url(0);
        let t = url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &url,
            "ProfPage",
        )
        .unwrap()
        .unwrap();
        assert_eq!(&t, u.site.ground_truth("ProfPage", &url).unwrap());
        assert_eq!(c.light_connections, 1);
        assert_eq!(c.downloads, 0);
        assert_eq!(c.from_store, 1);
        // the server saw only a HEAD
        assert_eq!(u.site.server.stats().gets, 0);
        assert_eq!(u.site.server.stats().heads, 1);
    }

    #[test]
    fn updated_page_is_redownloaded() {
        let (mut u, mut store) = setup();
        u.update_course_description(3, "changed!").unwrap();
        let mut c = CheckCounters::default();
        let url = University::course_url(3);
        let t = url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &url,
            "CoursePage",
        )
        .unwrap()
        .unwrap();
        assert_eq!(t.get("Description").unwrap().as_text(), Some("changed!"));
        assert_eq!(c.downloads, 1);
        // the store now holds the fresh version
        assert_eq!(
            store
                .get(&url)
                .unwrap()
                .tuple
                .get("Description")
                .unwrap()
                .as_text(),
            Some("changed!")
        );
    }

    #[test]
    fn second_check_in_same_query_is_free() {
        let (u, mut store) = setup();
        let mut c = CheckCounters::default();
        let url = University::prof_url(1);
        for _ in 0..3 {
            url_check(
                &mut store,
                &mut c,
                &u.site.scheme,
                &u.site.server,
                &url,
                "ProfPage",
            )
            .unwrap();
        }
        assert_eq!(c.light_connections, 1);
        assert_eq!(c.from_store, 3);
    }

    #[test]
    fn deleted_page_detected_and_queued() {
        let (mut u, mut store) = setup();
        u.remove_course(2).unwrap();
        let mut c = CheckCounters::default();
        let url = University::course_url(2);
        let t = url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &url,
            "CoursePage",
        )
        .unwrap();
        assert!(t.is_none());
        assert!(store.get(&url).is_none());
        assert!(store.check_missing.contains(&url));
    }

    #[test]
    fn new_outlinks_marked_new() {
        let (mut u, mut store) = setup();
        // adding a course updates the professor page with a new outlink
        let id = u.add_course(1, "Fall", "Graduate").unwrap();
        let mut c = CheckCounters::default();
        let prof = University::prof_url(1);
        url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &prof,
            "ProfPage",
        )
        .unwrap()
        .unwrap();
        let new_course = University::course_url(id);
        assert_eq!(store.status(&new_course), UrlStatus::New);
        // and checking the new course downloads it without a light
        // connection
        let before = c;
        url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &new_course,
            "CoursePage",
        )
        .unwrap()
        .unwrap();
        assert_eq!(c.light_connections, before.light_connections);
        assert_eq!(c.downloads, before.downloads + 1);
    }

    #[test]
    fn removed_outlinks_marked_missing() {
        let (mut u, mut store) = setup();
        // find the professor of course 4, then remove the course
        let prof_idx = {
            let t = u
                .site
                .ground_truth("CoursePage", &University::course_url(4))
                .unwrap();
            let prof_url = t.get("ToProf").unwrap().as_link().unwrap().clone();
            (0..u.prof_count())
                .find(|&i| University::prof_url(i) == prof_url)
                .unwrap()
        };
        u.remove_course(4).unwrap();
        let mut c = CheckCounters::default();
        let prof = University::prof_url(prof_idx);
        url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &prof,
            "ProfPage",
        )
        .unwrap()
        .unwrap();
        assert_eq!(store.status(&University::course_url(4)), UrlStatus::Missing);
    }
}
