//! Function 2 — URLCheck.
//!
//! ```text
//! IF status(U) = new THEN download, wrap, store
//! ELSE open a light connection to U
//!      IF AccessDate < ModificationDate THEN
//!          download, wrap, store
//!          mark outlinks present only in the new version as `new`
//!          mark outlinks present only in the old version as `missing`
//!      ELSE use the stored tuple
//! status(U) := checked
//! ```
//!
//! A 404 on the light connection means the page itself was deleted: it is
//! removed from the store and pushed onto `CheckMissing` for the off-line
//! sweep. A *transient* failure (timeout, 5xx) means nothing of the sort:
//! the stored tuple is served as stale-but-retained — flagged in the store
//! and counted in [`CheckCounters::stale_served`] — rather than deleting a
//! page that is probably still alive.

use crate::store::{outlinks, MatStore, UrlStatus};
use crate::{MatError, Result};
use adm::{Tuple, Url, WebScheme};
use std::collections::HashSet;
use websim::PageServer;

/// Access counters of the maintenance protocol.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Light connections opened (HEAD analogues).
    pub light_connections: u64,
    /// Full downloads performed (pages that had actually changed or were
    /// new).
    pub downloads: u64,
    /// Tuples served straight from the local store.
    pub from_store: u64,
    /// Tuples served stale because their check failed transiently (the
    /// freshness of the answer could not be verified).
    pub stale_served: u64,
}

/// Serves the stored copy of a page whose check failed transiently,
/// flagging it stale.
fn serve_stale(store: &mut MatStore, counters: &mut CheckCounters, url: &Url) -> Option<Tuple> {
    let tuple = store.get(url).map(|p| p.tuple.clone())?;
    store.mark_stale(url);
    store.set_status(url.clone(), UrlStatus::Checked);
    counters.stale_served += 1;
    Some(tuple)
}

/// Checks one URL, returning the (fresh) tuple, or `None` if the page no
/// longer exists on the site.
pub fn url_check(
    store: &mut MatStore,
    counters: &mut CheckCounters,
    ws: &WebScheme,
    server: &impl PageServer,
    url: &Url,
    scheme: &str,
) -> Result<Option<Tuple>> {
    if store.status(url) == UrlStatus::Checked {
        counters.from_store += 1;
        return Ok(store.get(url).map(|p| p.tuple.clone()));
    }
    // Capture the stored access date up front: the freshness comparison
    // below must not assume the entry is still there after the light
    // connection (no `expect` — a missing entry means "download").
    let stored_date = store.get(url).map(|p| p.access_date);
    let must_download = match stored_date {
        // a brand-new page (or one we never materialized): no point in a
        // light connection, we need the content anyway
        None => true,
        Some(_) if store.status(url) == UrlStatus::New => true,
        Some(access_date) => {
            counters.light_connections += 1;
            match server.head(url) {
                Ok(head) => access_date < head.last_modified,
                Err(e) if e.is_transient() => {
                    // can't verify freshness right now: serve the stored
                    // copy stale-but-retained instead of deleting a live
                    // page
                    return Ok(serve_stale(store, counters, url));
                }
                Err(_) => {
                    // the page is gone: forget it, queue for the off-line
                    // sweep
                    store.remove(url);
                    store.set_status(url.clone(), UrlStatus::Missing);
                    store.check_missing.push_back(url.clone());
                    return Ok(None);
                }
            }
        }
    };
    if must_download {
        let resp = match server.get(url) {
            Ok(r) => r,
            Err(e) if e.is_transient() => {
                // The page changed (or is new) but the download failed.
                // An old copy is better than aborting: serve it stale.
                // With nothing stored the page is genuinely unreachable.
                return match serve_stale(store, counters, url) {
                    Some(t) => Ok(Some(t)),
                    None => Err(MatError::Unreachable {
                        url: url.clone(),
                        reason: e.to_string(),
                    }),
                };
            }
            Err(_) => {
                store.remove(url);
                store.set_status(url.clone(), UrlStatus::Missing);
                store.check_missing.push_back(url.clone());
                return Ok(None);
            }
        };
        counters.downloads += 1;
        let ps = ws.scheme(scheme)?;
        let html = std::str::from_utf8(&resp.body)
            .map_err(|e| MatError::Wrap(format!("non-utf8 at {url}: {e}")))?;
        let fresh =
            wrapper::wrap_page(ps, html).map_err(|e| MatError::Wrap(format!("{url}: {e}")))?;
        // outlink diffing against the previous version
        let old_links: HashSet<Url> = store
            .get(url)
            .map(|p| {
                outlinks(&ps.fields, &p.tuple)
                    .into_iter()
                    .map(|(_, u)| u)
                    .collect()
            })
            .unwrap_or_default();
        let new_links: HashSet<Url> = outlinks(&ps.fields, &fresh)
            .into_iter()
            .map(|(_, u)| u)
            .collect();
        for added in new_links.difference(&old_links) {
            if store.status(added) == UrlStatus::None {
                store.set_status(added.clone(), UrlStatus::New);
            }
        }
        for removed in old_links.difference(&new_links) {
            if store.status(removed) == UrlStatus::None {
                store.set_status(removed.clone(), UrlStatus::Missing);
            }
        }
        store.put(
            url.clone(),
            scheme,
            fresh.clone(),
            resp.last_modified.max(server.now()),
        );
        store.set_status(url.clone(), UrlStatus::Checked);
        Ok(Some(fresh))
    } else {
        counters.from_store += 1;
        // a successful light connection just attested freshness: lift any
        // staleness flag left by an earlier failed check
        store.clear_stale(url);
        store.set_status(url.clone(), UrlStatus::Checked);
        Ok(store.get(url).map(|p| p.tuple.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MatStore;
    use websim::sitegen::{University, UniversityConfig};

    fn setup() -> (University, MatStore) {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 10,
            seed: 33,
            ..UniversityConfig::default()
        })
        .unwrap();
        let mut store = MatStore::new();
        store.materialize(&u.site.scheme, &u.site.server).unwrap();
        u.site.server.reset_stats();
        (u, store)
    }

    #[test]
    fn fresh_page_served_from_store_after_light_connection() {
        let (u, mut store) = setup();
        let mut c = CheckCounters::default();
        let url = University::prof_url(0);
        let t = url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &url,
            "ProfPage",
        )
        .unwrap()
        .unwrap();
        assert_eq!(&t, u.site.ground_truth("ProfPage", &url).unwrap());
        assert_eq!(c.light_connections, 1);
        assert_eq!(c.downloads, 0);
        assert_eq!(c.from_store, 1);
        // the server saw only a HEAD
        assert_eq!(u.site.server.stats().gets, 0);
        assert_eq!(u.site.server.stats().heads, 1);
    }

    #[test]
    fn updated_page_is_redownloaded() {
        let (mut u, mut store) = setup();
        u.update_course_description(3, "changed!").unwrap();
        let mut c = CheckCounters::default();
        let url = University::course_url(3);
        let t = url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &url,
            "CoursePage",
        )
        .unwrap()
        .unwrap();
        assert_eq!(t.get("Description").unwrap().as_text(), Some("changed!"));
        assert_eq!(c.downloads, 1);
        // the store now holds the fresh version
        assert_eq!(
            store
                .get(&url)
                .unwrap()
                .tuple
                .get("Description")
                .unwrap()
                .as_text(),
            Some("changed!")
        );
    }

    #[test]
    fn second_check_in_same_query_is_free() {
        let (u, mut store) = setup();
        let mut c = CheckCounters::default();
        let url = University::prof_url(1);
        for _ in 0..3 {
            url_check(
                &mut store,
                &mut c,
                &u.site.scheme,
                &u.site.server,
                &url,
                "ProfPage",
            )
            .unwrap();
        }
        assert_eq!(c.light_connections, 1);
        assert_eq!(c.from_store, 3);
    }

    #[test]
    fn deleted_page_detected_and_queued() {
        let (mut u, mut store) = setup();
        u.remove_course(2).unwrap();
        let mut c = CheckCounters::default();
        let url = University::course_url(2);
        let t = url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &url,
            "CoursePage",
        )
        .unwrap();
        assert!(t.is_none());
        assert!(store.get(&url).is_none());
        assert!(store.check_missing.contains(&url));
    }

    #[test]
    fn new_outlinks_marked_new() {
        let (mut u, mut store) = setup();
        // adding a course updates the professor page with a new outlink
        let id = u.add_course(1, "Fall", "Graduate").unwrap();
        let mut c = CheckCounters::default();
        let prof = University::prof_url(1);
        url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &prof,
            "ProfPage",
        )
        .unwrap()
        .unwrap();
        let new_course = University::course_url(id);
        assert_eq!(store.status(&new_course), UrlStatus::New);
        // and checking the new course downloads it without a light
        // connection
        let before = c;
        url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &new_course,
            "CoursePage",
        )
        .unwrap()
        .unwrap();
        assert_eq!(c.light_connections, before.light_connections);
        assert_eq!(c.downloads, before.downloads + 1);
    }

    #[test]
    fn removed_outlinks_marked_missing() {
        let (mut u, mut store) = setup();
        // find the professor of course 4, then remove the course
        let prof_idx = {
            let t = u
                .site
                .ground_truth("CoursePage", &University::course_url(4))
                .unwrap();
            let prof_url = t.get("ToProf").unwrap().as_link().unwrap().clone();
            (0..u.prof_count())
                .find(|&i| University::prof_url(i) == prof_url)
                .unwrap()
        };
        u.remove_course(4).unwrap();
        let mut c = CheckCounters::default();
        let prof = University::prof_url(prof_idx);
        url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &prof,
            "ProfPage",
        )
        .unwrap()
        .unwrap();
        assert_eq!(store.status(&University::course_url(4)), UrlStatus::Missing);
    }

    #[test]
    fn transient_head_failure_serves_stale_and_retains() {
        let (u, mut store) = setup();
        let url = University::prof_url(0);
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(7).with_rule(
                websim::FaultRule::unavailable(1.0)
                    .for_url_prefix(url.as_str())
                    .with_max_per_url(None),
            ),
        );
        let mut c = CheckCounters::default();
        let t = url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &url,
            "ProfPage",
        )
        .unwrap()
        .expect("stored copy must be served stale");
        assert_eq!(&t, &store.get(&url).unwrap().tuple);
        assert_eq!(c.stale_served, 1);
        assert!(store.is_stale(&url), "flag records unverified freshness");
        assert!(
            !store.check_missing.contains(&url),
            "a 503 is not a deletion"
        );
        // once the outage clears, a successful light connection lifts the flag
        u.site.server.clear_fault_plan();
        store.reset_status();
        let mut c2 = CheckCounters::default();
        url_check(
            &mut store,
            &mut c2,
            &u.site.scheme,
            &u.site.server,
            &url,
            "ProfPage",
        )
        .unwrap()
        .unwrap();
        assert!(!store.is_stale(&url));
        assert_eq!(c2.stale_served, 0);
    }

    #[test]
    fn transient_failure_without_stored_copy_is_unreachable() {
        let (u, mut store) = setup();
        let url = University::course_url(5);
        store.remove(&url); // never materialized this page
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(7).with_rule(
                websim::FaultRule::timeouts(1.0)
                    .for_url_prefix(url.as_str())
                    .with_max_per_url(None),
            ),
        );
        let mut c = CheckCounters::default();
        let err = url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &url,
            "CoursePage",
        )
        .unwrap_err();
        assert!(
            matches!(err, MatError::Unreachable { url: ref u, .. } if *u == url),
            "got {err}"
        );
        assert_eq!(c.stale_served, 0);
    }

    #[test]
    fn every_status_and_storage_combination_is_panic_free() {
        // Regression for the `expect("checked above")` that used to sit on
        // the freshness comparison: drive the check through every
        // (status, stored copy) combination and assert it answers — never
        // panics — in each.
        let (u, mut store) = setup();
        let url = University::course_url(2);
        let combos: [(Option<UrlStatus>, bool); 6] = [
            (None, true),                     // no status, stored → HEAD path
            (None, false),                    // no status, nothing stored → download
            (Some(UrlStatus::New), true),     // flagged new with a stored copy
            (Some(UrlStatus::New), false),    // flagged new, nothing stored
            (Some(UrlStatus::Missing), true), // suspected missing, still stored
            (Some(UrlStatus::Missing), false),
        ];
        for (status, keep_copy) in combos {
            let mut s = store.clone();
            s.reset_status();
            if let Some(st) = status {
                s.set_status(url.clone(), st);
            }
            if !keep_copy {
                s.remove(&url);
            }
            let mut c = CheckCounters::default();
            let t = url_check(
                &mut s,
                &mut c,
                &u.site.scheme,
                &u.site.server,
                &url,
                "CoursePage",
            )
            .unwrap();
            assert_eq!(
                t.as_ref(),
                u.site.ground_truth("CoursePage", &url),
                "status {status:?}, stored {keep_copy}"
            );
            assert_eq!(s.status(&url), UrlStatus::Checked);
        }
        let _ = &mut store;
    }

    #[test]
    fn permanent_rot_still_removes_and_queues() {
        let (u, mut store) = setup();
        let url = University::course_url(1);
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(7)
                .with_rule(websim::FaultRule::link_rot(1.0).for_url_prefix(url.as_str())),
        );
        let mut c = CheckCounters::default();
        let t = url_check(
            &mut store,
            &mut c,
            &u.site.scheme,
            &u.site.server,
            &url,
            "CoursePage",
        )
        .unwrap();
        assert!(t.is_none(), "permanent 404 keeps the seed deletion path");
        assert!(store.get(&url).is_none());
        assert!(store.check_missing.contains(&url));
    }
}
