//! # matview — materialized views over the Web (Section 8)
//!
//! When virtual-view evaluation is too slow, the ADM representation of the
//! site is materialized locally: one nested page-relation per page-scheme,
//! each tuple keyed by URL and stamped with the date it was last accessed.
//! Because the site is autonomous (its manager updates pages without
//! notification), the view is maintained **lazily, while answering
//! queries**:
//!
//! * a query plan is selected by the same Algorithm 1 used for virtual
//!   views — it identifies the *minimal* set of pages that must be
//!   consulted;
//! * before a materialized tuple is used, **URLCheck** (the paper's
//!   Function 2) opens a *light connection* (HTTP HEAD analogue — only an
//!   error flag and the last-modified date are exchanged) and re-downloads
//!   the page only when it actually changed, diffing its outgoing links to
//!   mark `new` and `missing` URLs;
//! * URLs marked `missing` are deferred to a [`store::MatStore::check_missing`]
//!   queue purged off-line ([`maintain`]).
//!
//! The cost of a query is then 𝒞(E) light connections plus one download
//! per *changed* page — drastically less than re-navigating the site.

pub mod error;
pub mod eval;
pub mod maintain;
pub mod store;
pub mod urlcheck;

pub use error::MatError;
pub use eval::{MatAnalyzedOutcome, MatOutcome, MatSession};
pub use store::{MatStore, StoredPage, UrlStatus};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MatError>;
