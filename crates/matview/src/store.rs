//! The local ADM database.
//!
//! One nested page-relation per page-scheme; each tuple carries the URL key
//! and an `AccessDate` — "besides ordinary attributes, we also store, for
//! each page, the date we accessed it". A per-query status flag
//! (`none | checked | new | missing`) drives URLCheck, and a persistent
//! `CheckMissing` queue collects URLs whose pages may have been deleted.

use crate::{MatError, Result};
use adm::{Field, Tuple, Url, Value, WebScheme, WebType};
use std::collections::{HashMap, HashSet, VecDeque};

/// A materialized page: its wrapped tuple plus the logical date it was
/// last downloaded.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPage {
    /// The page-scheme the page belongs to.
    pub scheme: String,
    /// The wrapped nested tuple.
    pub tuple: Tuple,
    /// Logical time of the last download.
    pub access_date: u64,
}

/// Per-query URL status (the paper's `status(U)` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UrlStatus {
    /// Not seen in this query yet.
    #[default]
    None,
    /// Already checked during this query.
    Checked,
    /// Appeared as a new outlink of a re-downloaded page.
    New,
    /// Disappeared from a re-downloaded page's outlinks.
    Missing,
}

/// The local materialized store.
#[derive(Debug, Default)]
pub struct MatStore {
    pages: HashMap<Url, StoredPage>,
    status: HashMap<Url, UrlStatus>,
    /// URLs suspected deleted, to be verified off-line
    /// (the paper's `CheckMissing` structure).
    pub check_missing: VecDeque<Url>,
}

/// All outgoing links of a tuple under its scheme's fields.
pub fn outlinks(fields: &[Field], tuple: &Tuple) -> Vec<(String, Url)> {
    let mut out = Vec::new();
    fn walk(fields: &[Field], tuple: &Tuple, out: &mut Vec<(String, Url)>) {
        for f in fields {
            match (&f.ty, tuple.get(&f.name)) {
                (WebType::Link { target }, Some(Value::Link(u))) => {
                    out.push((target.clone(), u.clone()));
                }
                (WebType::List(inner), Some(Value::List(rows))) => {
                    for row in rows {
                        walk(inner, row, out);
                    }
                }
                _ => {}
            }
        }
    }
    walk(fields, tuple, &mut out);
    out
}

impl MatStore {
    /// An empty store.
    pub fn new() -> Self {
        MatStore::default()
    }

    /// The stored page at a URL.
    pub fn get(&self, url: &Url) -> Option<&StoredPage> {
        self.pages.get(url)
    }

    /// Inserts or replaces a page.
    pub fn put(&mut self, url: Url, scheme: impl Into<String>, tuple: Tuple, access_date: u64) {
        self.pages.insert(
            url,
            StoredPage {
                scheme: scheme.into(),
                tuple,
                access_date,
            },
        );
    }

    /// Removes a page (confirmed deleted).
    pub fn remove(&mut self, url: &Url) -> bool {
        self.pages.remove(url).is_some()
    }

    /// Number of materialized pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of pages of one scheme.
    pub fn cardinality(&self, scheme: &str) -> usize {
        self.pages.values().filter(|p| p.scheme == scheme).count()
    }

    /// The status flag of a URL.
    pub fn status(&self, url: &Url) -> UrlStatus {
        self.status.get(url).copied().unwrap_or_default()
    }

    /// Sets the status flag of a URL.
    pub fn set_status(&mut self, url: Url, s: UrlStatus) {
        self.status.insert(url, s);
    }

    /// Resets all status flags (done at the start of every query).
    pub fn reset_status(&mut self) {
        self.status.clear();
    }

    /// Exports the store as flat relations in Partitioned Normal Form —
    /// the paper's observation that the materialized nested relations
    /// "can be easily decomposed in flat relations and stored in a
    /// relational DBMS". One table per nesting level, named
    /// `Scheme` / `Scheme.List` / `Scheme.List.Inner`.
    pub fn export_flat(
        &self,
        ws: &WebScheme,
    ) -> Result<std::collections::BTreeMap<String, adm::Relation>> {
        let mut out = std::collections::BTreeMap::new();
        for scheme in ws.schemes() {
            let instance: Vec<(Url, Tuple)> = {
                let mut pages: Vec<(Url, Tuple)> = self
                    .pages
                    .iter()
                    .filter(|(_, p)| p.scheme == scheme.name)
                    .map(|(u, p)| (u.clone(), p.tuple.clone()))
                    .collect();
                pages.sort_by(|a, b| a.0.cmp(&b.0));
                pages
            };
            if instance.is_empty() {
                continue;
            }
            for (name, rel) in adm::pnf::decompose(scheme, &instance)? {
                out.insert(name, rel);
            }
        }
        Ok(out)
    }

    /// Materializes the whole site by crawling it from its entry points
    /// through the live server, wrapping every page. Returns the number of
    /// pages downloaded.
    pub fn materialize(&mut self, ws: &WebScheme, server: &websim::VirtualServer) -> Result<usize> {
        let mut queue: VecDeque<(Url, String)> = ws
            .entry_points()
            .iter()
            .map(|e| (e.url.clone(), e.scheme.clone()))
            .collect();
        let mut seen: HashSet<Url> = queue.iter().map(|(u, _)| u.clone()).collect();
        let mut downloaded = 0;
        while let Some((url, scheme)) = queue.pop_front() {
            let Ok(resp) = server.get(&url) else {
                continue; // dangling link on the site itself
            };
            downloaded += 1;
            let ps = ws.scheme(&scheme)?;
            let html = std::str::from_utf8(&resp.body)
                .map_err(|e| MatError::Wrap(format!("non-utf8 at {url}: {e}")))?;
            let tuple =
                wrapper::wrap_page(ps, html).map_err(|e| MatError::Wrap(format!("{url}: {e}")))?;
            for (target, link) in outlinks(&ps.fields, &tuple) {
                if seen.insert(link.clone()) {
                    queue.push_back((link, target));
                }
            }
            self.put(url, scheme, tuple, resp.last_modified.max(server.now()));
        }
        Ok(downloaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::sitegen::{University, UniversityConfig};

    fn uni() -> University {
        University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 10,
            seed: 12,
            ..UniversityConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn materialize_downloads_whole_site() {
        let u = uni();
        let mut store = MatStore::new();
        let n = store.materialize(&u.site.scheme, &u.site.server).unwrap();
        assert_eq!(n, u.site.total_pages());
        assert_eq!(store.len(), u.site.total_pages());
        assert_eq!(store.cardinality("CoursePage"), 10);
        // stored tuples equal ground truth
        for (url, truth) in u.site.instance("ProfPage") {
            assert_eq!(store.get(&url).unwrap().tuple, truth);
        }
    }

    #[test]
    fn status_lifecycle() {
        let mut store = MatStore::new();
        let url = Url::new("/x.html");
        assert_eq!(store.status(&url), UrlStatus::None);
        store.set_status(url.clone(), UrlStatus::New);
        assert_eq!(store.status(&url), UrlStatus::New);
        store.reset_status();
        assert_eq!(store.status(&url), UrlStatus::None);
    }

    #[test]
    fn outlinks_found_recursively() {
        let u = uni();
        let ps = u.site.scheme.scheme("ProfPage").unwrap();
        let (url, tuple) = &u.site.instance("ProfPage")[0];
        let links = outlinks(&ps.fields, tuple);
        // at least the department link
        assert!(links.iter().any(|(s, _)| s == "DeptPage"), "{url}");
    }

    #[test]
    fn export_flat_decomposes_per_level() {
        let u = uni();
        let mut store = MatStore::new();
        store.materialize(&u.site.scheme, &u.site.server).unwrap();
        let tables = store.export_flat(&u.site.scheme).unwrap();
        // top tables exist per populated scheme, plus one per list level
        assert_eq!(tables["ProfPage"].len(), 6);
        assert_eq!(tables["CoursePage"].len(), 10);
        // every course appears exactly once in its professor's list table
        assert_eq!(tables["ProfPage.CourseList"].len(), 10);
        // child tables carry the parent key
        assert!(tables["ProfPage.CourseList"]
            .columns()
            .contains(&"ProfPage.URL".to_string()));
        // PNF holds on the stored instances
        for scheme in u.site.scheme.schemes() {
            let inst = u.site.instance(&scheme.name);
            assert!(adm::pnf::is_pnf(scheme, &inst), "{}", scheme.name);
        }
    }

    #[test]
    fn put_remove_roundtrip() {
        let mut store = MatStore::new();
        let url = Url::new("/p.html");
        store.put(url.clone(), "P", Tuple::new().with("A", "x"), 3);
        assert_eq!(store.get(&url).unwrap().access_date, 3);
        assert!(store.remove(&url));
        assert!(!store.remove(&url));
        assert!(store.is_empty());
    }
}
