//! The local ADM database.
//!
//! One nested page-relation per page-scheme; each tuple carries the URL key
//! and an `AccessDate` — "besides ordinary attributes, we also store, for
//! each page, the date we accessed it". A per-query status flag
//! (`none | checked | new | missing`) drives URLCheck, and a persistent
//! `CheckMissing` queue collects URLs whose pages may have been deleted.

use crate::{MatError, Result};
use adm::{Field, Tuple, Url, Value, WebScheme, WebType};
use std::collections::{HashMap, HashSet, VecDeque};

/// A materialized page: its wrapped tuple plus the logical date it was
/// last downloaded.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredPage {
    /// The page-scheme the page belongs to.
    pub scheme: String,
    /// The wrapped nested tuple.
    pub tuple: Tuple,
    /// Logical time of the last download.
    pub access_date: u64,
    /// True when the last refresh attempt failed and the page was
    /// retained as-is: the tuple may no longer match the live page.
    /// Cleared by the next successful download ([`MatStore::put`]).
    pub stale: bool,
}

/// Per-query URL status (the paper's `status(U)` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UrlStatus {
    /// Not seen in this query yet.
    #[default]
    None,
    /// Already checked during this query.
    Checked,
    /// Appeared as a new outlink of a re-downloaded page.
    New,
    /// Disappeared from a re-downloaded page's outlinks.
    Missing,
}

/// The local materialized store.
#[derive(Debug, Default, Clone)]
pub struct MatStore {
    pages: HashMap<Url, StoredPage>,
    status: HashMap<Url, UrlStatus>,
    /// URLs suspected deleted, to be verified off-line
    /// (the paper's `CheckMissing` structure).
    pub check_missing: VecDeque<Url>,
}

/// All outgoing links of a tuple under its scheme's fields.
pub fn outlinks(fields: &[Field], tuple: &Tuple) -> Vec<(String, Url)> {
    let mut out = Vec::new();
    fn walk(fields: &[Field], tuple: &Tuple, out: &mut Vec<(String, Url)>) {
        for f in fields {
            match (&f.ty, tuple.get(&f.name)) {
                (WebType::Link { target }, Some(Value::Link(u))) => {
                    out.push((target.clone(), u.clone()));
                }
                (WebType::List(inner), Some(Value::List(rows))) => {
                    for row in rows {
                        walk(inner, row, out);
                    }
                }
                _ => {}
            }
        }
    }
    walk(fields, tuple, &mut out);
    out
}

impl MatStore {
    /// An empty store.
    pub fn new() -> Self {
        MatStore::default()
    }

    /// The stored page at a URL.
    pub fn get(&self, url: &Url) -> Option<&StoredPage> {
        self.pages.get(url)
    }

    /// Every stored page, URL-ordered — the deterministic inventory the
    /// incremental-maintenance layer and the equivalence proptests compare
    /// against (queries still go through URLCheck; this is maintenance
    /// plumbing, not a query path).
    pub fn pages_sorted(&self) -> Vec<(&Url, &StoredPage)> {
        let mut out: Vec<_> = self.pages.iter().collect();
        out.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        out
    }

    /// Inserts or replaces a page. A fresh download is never stale.
    pub fn put(&mut self, url: Url, scheme: impl Into<String>, tuple: Tuple, access_date: u64) {
        self.pages.insert(
            url,
            StoredPage {
                scheme: scheme.into(),
                tuple,
                access_date,
                stale: false,
            },
        );
    }

    /// Removes a page (confirmed deleted).
    pub fn remove(&mut self, url: &Url) -> bool {
        self.pages.remove(url).is_some()
    }

    /// Flags a stored page as stale-but-retained (its refresh failed, so
    /// the tuple may not match the live page). Returns `false` when the
    /// URL is not materialized.
    pub fn mark_stale(&mut self, url: &Url) -> bool {
        match self.pages.get_mut(url) {
            Some(p) => {
                p.stale = true;
                true
            }
            None => false,
        }
    }

    /// Clears the staleness flag (a later check verified the copy is
    /// current again). Returns `false` when the URL is not materialized.
    pub fn clear_stale(&mut self, url: &Url) -> bool {
        match self.pages.get_mut(url) {
            Some(p) => {
                p.stale = false;
                true
            }
            None => false,
        }
    }

    /// True when the URL is materialized and flagged stale.
    pub fn is_stale(&self, url: &Url) -> bool {
        self.pages.get(url).is_some_and(|p| p.stale)
    }

    /// Number of stale-but-retained pages.
    pub fn stale_count(&self) -> usize {
        self.pages.values().filter(|p| p.stale).count()
    }

    /// Drops every page whose URL is not in `keep` (used by a full
    /// refresh to discard pages no longer reachable from any entry
    /// point). Returns the number of pages dropped.
    pub fn retain_pages(&mut self, keep: &HashSet<Url>) -> usize {
        let before = self.pages.len();
        self.pages.retain(|u, _| keep.contains(u));
        before - self.pages.len()
    }

    /// Number of materialized pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True if nothing is materialized.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of pages of one scheme.
    pub fn cardinality(&self, scheme: &str) -> usize {
        self.pages.values().filter(|p| p.scheme == scheme).count()
    }

    /// The status flag of a URL.
    pub fn status(&self, url: &Url) -> UrlStatus {
        self.status.get(url).copied().unwrap_or_default()
    }

    /// Sets the status flag of a URL.
    pub fn set_status(&mut self, url: Url, s: UrlStatus) {
        self.status.insert(url, s);
    }

    /// Resets all status flags (done at the start of every query).
    pub fn reset_status(&mut self) {
        self.status.clear();
    }

    /// Exports the store as flat relations in Partitioned Normal Form —
    /// the paper's observation that the materialized nested relations
    /// "can be easily decomposed in flat relations and stored in a
    /// relational DBMS". One table per nesting level, named
    /// `Scheme` / `Scheme.List` / `Scheme.List.Inner`.
    pub fn export_flat(
        &self,
        ws: &WebScheme,
    ) -> Result<std::collections::BTreeMap<String, adm::Relation>> {
        let mut out = std::collections::BTreeMap::new();
        for scheme in ws.schemes() {
            let instance: Vec<(Url, Tuple)> = {
                let mut pages: Vec<(Url, Tuple)> = self
                    .pages
                    .iter()
                    .filter(|(_, p)| p.scheme == scheme.name)
                    .map(|(u, p)| (u.clone(), p.tuple.clone()))
                    .collect();
                pages.sort_by(|a, b| a.0.cmp(&b.0));
                pages
            };
            if instance.is_empty() {
                continue;
            }
            for (name, rel) in adm::pnf::decompose(scheme, &instance)? {
                out.insert(name, rel);
            }
        }
        Ok(out)
    }

    /// Materializes the whole site by crawling it from its entry points
    /// through the live server, wrapping every page. Returns the number of
    /// pages downloaded.
    pub fn materialize(
        &mut self,
        ws: &WebScheme,
        server: &impl websim::PageServer,
    ) -> Result<usize> {
        Ok(self.materialize_report(ws, server)?.downloaded)
    }

    /// Like [`MatStore::materialize`], with a full account of the crawl.
    ///
    /// A page whose `GET` fails is **not** silently skipped: if an older
    /// copy is materialized it is marked stale-but-retained (so nothing
    /// pretends the failed refresh succeeded) and the crawl continues
    /// through the *old* tuple's outlinks so the subtree behind it is not
    /// orphaned. Pages that 404 are additionally queued on
    /// [`MatStore::check_missing`] for the off-line sweep.
    pub fn materialize_report(
        &mut self,
        ws: &WebScheme,
        server: &impl websim::PageServer,
    ) -> Result<MaterializeReport> {
        let mut queue: VecDeque<(Url, String)> = ws
            .entry_points()
            .iter()
            .map(|e| (e.url.clone(), e.scheme.clone()))
            .collect();
        let mut seen: HashSet<Url> = queue.iter().map(|(u, _)| u.clone()).collect();
        let mut report = MaterializeReport::default();
        while let Some((url, scheme)) = queue.pop_front() {
            let resp = match server.get(&url) {
                Ok(resp) => resp,
                Err(e) => {
                    report.failed.push(url.clone());
                    if matches!(e, websim::WebError::NotFound(_)) {
                        self.check_missing.push_back(url.clone());
                    }
                    // Keep crawling through the stale copy's outlinks.
                    if let Some(old) = self.pages.get_mut(&url) {
                        old.stale = true;
                        let old_scheme = old.scheme.clone();
                        let old_tuple = old.tuple.clone();
                        let ps = ws.scheme(&old_scheme)?;
                        for (target, link) in outlinks(&ps.fields, &old_tuple) {
                            if seen.insert(link.clone()) {
                                queue.push_back((link, target));
                            }
                        }
                    }
                    continue;
                }
            };
            report.downloaded += 1;
            let ps = ws.scheme(&scheme)?;
            let html = std::str::from_utf8(&resp.body)
                .map_err(|e| MatError::Wrap(format!("non-utf8 at {url}: {e}")))?;
            let tuple =
                wrapper::wrap_page(ps, html).map_err(|e| MatError::Wrap(format!("{url}: {e}")))?;
            for (target, link) in outlinks(&ps.fields, &tuple) {
                if seen.insert(link.clone()) {
                    queue.push_back((link, target));
                }
            }
            self.put(url, scheme, tuple, resp.last_modified.max(server.now()));
        }
        report.failed.sort();
        report.reached = seen;
        Ok(report)
    }
}

/// What a crawl ([`MatStore::materialize_report`]) did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaterializeReport {
    /// Pages downloaded and stored fresh.
    pub downloaded: usize,
    /// URLs whose `GET` failed (sorted). Stored copies, if any, were
    /// marked stale-but-retained.
    pub failed: Vec<Url>,
    /// Every URL the crawl reached — fetched or failed. A full refresh
    /// drops pages outside this set as unreachable from any entry point.
    pub reached: HashSet<Url>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::sitegen::{University, UniversityConfig};

    fn uni() -> University {
        University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 10,
            seed: 12,
            ..UniversityConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn materialize_downloads_whole_site() {
        let u = uni();
        let mut store = MatStore::new();
        let n = store.materialize(&u.site.scheme, &u.site.server).unwrap();
        assert_eq!(n, u.site.total_pages());
        assert_eq!(store.len(), u.site.total_pages());
        assert_eq!(store.cardinality("CoursePage"), 10);
        // stored tuples equal ground truth
        for (url, truth) in u.site.instance("ProfPage") {
            assert_eq!(store.get(&url).unwrap().tuple, truth);
        }
    }

    #[test]
    fn status_lifecycle() {
        let mut store = MatStore::new();
        let url = Url::new("/x.html");
        assert_eq!(store.status(&url), UrlStatus::None);
        store.set_status(url.clone(), UrlStatus::New);
        assert_eq!(store.status(&url), UrlStatus::New);
        store.reset_status();
        assert_eq!(store.status(&url), UrlStatus::None);
    }

    #[test]
    fn outlinks_found_recursively() {
        let u = uni();
        let ps = u.site.scheme.scheme("ProfPage").unwrap();
        let (url, tuple) = &u.site.instance("ProfPage")[0];
        let links = outlinks(&ps.fields, tuple);
        // at least the department link
        assert!(links.iter().any(|(s, _)| s == "DeptPage"), "{url}");
    }

    #[test]
    fn export_flat_decomposes_per_level() {
        let u = uni();
        let mut store = MatStore::new();
        store.materialize(&u.site.scheme, &u.site.server).unwrap();
        let tables = store.export_flat(&u.site.scheme).unwrap();
        // top tables exist per populated scheme, plus one per list level
        assert_eq!(tables["ProfPage"].len(), 6);
        assert_eq!(tables["CoursePage"].len(), 10);
        // every course appears exactly once in its professor's list table
        assert_eq!(tables["ProfPage.CourseList"].len(), 10);
        // child tables carry the parent key
        assert!(tables["ProfPage.CourseList"]
            .columns()
            .contains(&"ProfPage.URL".to_string()));
        // PNF holds on the stored instances
        for scheme in u.site.scheme.schemes() {
            let inst = u.site.instance(&scheme.name);
            assert!(adm::pnf::is_pnf(scheme, &inst), "{}", scheme.name);
        }
    }

    #[test]
    fn put_remove_roundtrip() {
        let mut store = MatStore::new();
        let url = Url::new("/p.html");
        store.put(url.clone(), "P", Tuple::new().with("A", "x"), 3);
        assert_eq!(store.get(&url).unwrap().access_date, 3);
        assert!(store.remove(&url));
        assert!(!store.remove(&url));
        assert!(store.is_empty());
    }

    #[test]
    fn stale_flag_lifecycle() {
        let mut store = MatStore::new();
        let url = Url::new("/p.html");
        assert!(!store.mark_stale(&url), "nothing stored yet");
        store.put(url.clone(), "P", Tuple::new().with("A", "x"), 3);
        assert!(!store.is_stale(&url), "fresh download is never stale");
        assert!(store.mark_stale(&url));
        assert!(store.is_stale(&url));
        assert_eq!(store.stale_count(), 1);
        assert!(store.clear_stale(&url));
        assert!(!store.is_stale(&url));
        store.mark_stale(&url);
        // re-downloading resets the flag
        store.put(url.clone(), "P", Tuple::new().with("A", "y"), 4);
        assert!(!store.is_stale(&url));
        assert_eq!(store.stale_count(), 0);
    }

    #[test]
    fn crawl_with_failing_page_marks_stale_and_keeps_subtree() {
        let u = uni();
        let mut store = MatStore::new();
        store.materialize(&u.site.scheme, &u.site.server).unwrap();
        // make one professor page unreachable; its courses hang below it
        let victim = University::prof_url(0);
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(3).with_rule(
                websim::FaultRule::unavailable(1.0)
                    .for_url_prefix(victim.as_str())
                    .with_max_per_url(None),
            ),
        );
        let report = store
            .materialize_report(&u.site.scheme, &u.site.server)
            .unwrap();
        assert_eq!(report.failed, vec![victim.clone()]);
        assert_eq!(report.downloaded, u.site.total_pages() - 1);
        // the victim survives, flagged; a 5xx is not queued as missing
        assert!(store.is_stale(&victim));
        assert!(!store.check_missing.contains(&victim));
        // the crawl continued through the stale copy: its courses were
        // re-fetched, so every page of the site is in `reached`
        assert_eq!(report.reached.len(), u.site.total_pages());
        assert_eq!(store.len(), u.site.total_pages());
    }

    #[test]
    fn crawl_queues_rotted_pages_for_the_offline_sweep() {
        let u = uni();
        let mut store = MatStore::new();
        store.materialize(&u.site.scheme, &u.site.server).unwrap();
        let victim = University::course_url(4);
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(3)
                .with_rule(websim::FaultRule::link_rot(1.0).for_url_prefix(victim.as_str())),
        );
        let report = store
            .materialize_report(&u.site.scheme, &u.site.server)
            .unwrap();
        assert_eq!(report.failed, vec![victim.clone()]);
        assert!(store.is_stale(&victim), "retained, not silently fresh");
        assert!(store.check_missing.contains(&victim));
    }
}
