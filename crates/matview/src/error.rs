//! Materialized-view errors.

use std::fmt;

/// Errors of the materialized-view layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatError {
    /// Data-model error.
    Adm(adm::AdmError),
    /// Wrapping a downloaded page failed.
    Wrap(String),
    /// Evaluation error.
    Eval(nalg::EvalError),
    /// Optimization error.
    Opt(String),
    /// A required entry-point page is gone from the site.
    EntryGone(adm::Url),
    /// A page could not be reached (transient server failure) and no
    /// usable stored copy exists.
    Unreachable {
        /// The URL that could not be fetched.
        url: adm::Url,
        /// Human-readable failure detail.
        reason: String,
    },
}

impl fmt::Display for MatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatError::Adm(e) => write!(f, "{e}"),
            MatError::Wrap(m) => write!(f, "wrapper failure: {m}"),
            MatError::Eval(e) => write!(f, "{e}"),
            MatError::Opt(m) => write!(f, "optimizer failure: {m}"),
            MatError::EntryGone(u) => write!(f, "entry point {u} no longer exists"),
            MatError::Unreachable { url, reason } => {
                write!(f, "unreachable page {url}: {reason}")
            }
        }
    }
}

impl std::error::Error for MatError {}

impl From<adm::AdmError> for MatError {
    fn from(e: adm::AdmError) -> Self {
        MatError::Adm(e)
    }
}

impl From<nalg::EvalError> for MatError {
    fn from(e: nalg::EvalError) -> Self {
        MatError::Eval(e)
    }
}

impl From<wvcore::OptError> for MatError {
    fn from(e: wvcore::OptError) -> Self {
        MatError::Opt(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = MatError::EntryGone(adm::Url::new("/index.html"));
        assert!(e.to_string().contains("/index.html"));
        let e: MatError = adm::AdmError::UnknownScheme("P".into()).into();
        assert!(e.to_string().contains('P'));
    }
}
