//! Off-line maintenance: the `CheckMissing` sweep, full refresh, and
//! consistency auditing.
//!
//! Lazy maintenance "guarantees correct answers and efficient execution
//! time, but not the overall consistency of the materialized view"; the
//! paper proposes periodically checking the whole view. [`purge_missing`]
//! is the deferred deletion check; [`full_refresh`] is the heavyweight
//! re-crawl used both as the periodic consistency pass and as the eager
//! baseline in the experiments; [`audit`] compares the store against a
//! generated site's ground truth (a test oracle the real system would not
//! have).

use crate::store::MatStore;
use crate::Result;
use adm::WebScheme;
use obs::trace::{EventKind, TraceSink};

/// Outcome of a `CheckMissing` sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PurgeReport {
    /// URLs checked (one light connection each).
    pub checked: u64,
    /// Pages confirmed deleted and dropped from the store.
    pub confirmed_deleted: u64,
    /// Pages that turned out to still exist.
    pub still_alive: u64,
    /// Checks that failed transiently: the page is retained and left on
    /// the queue for the next sweep (a 503 is not a deletion).
    pub inconclusive: u64,
    /// Queue entries skipped because the same URL already appeared earlier
    /// in this sweep — each URL is checked (and counted in `checked`)
    /// exactly once per sweep, however many times it was queued.
    pub duplicates_skipped: u64,
}

/// Drains the `CheckMissing` queue, verifying each URL with a light
/// connection and dropping confirmed-deleted pages from the store. Only a
/// definite 404 deletes: a transient failure (timeout, 5xx) retains the
/// page and re-queues the URL for the next sweep.
pub fn purge_missing(store: &mut MatStore, server: &impl websim::PageServer) -> PurgeReport {
    purge_missing_traced(store, server, None)
}

/// [`purge_missing`] with an optional trace sink: each confirmed
/// deletion is recorded as a `maintain.purge.deleted` event and the
/// sweep ends with a `maintain.purge` summary. The report is identical
/// with or without a sink.
pub fn purge_missing_traced(
    store: &mut MatStore,
    server: &impl websim::PageServer,
    trace: Option<&TraceSink>,
) -> PurgeReport {
    let mut report = PurgeReport::default();
    let mut seen = std::collections::HashSet::new();
    let mut requeue = Vec::new();
    while let Some(url) = store.check_missing.pop_front() {
        if !seen.insert(url.clone()) {
            // same URL queued more than once (e.g. discovered missing from
            // several referrers): dedup explicitly so one sweep never
            // double-checks — and never double-counts — a URL
            report.duplicates_skipped += 1;
            continue;
        }
        report.checked += 1;
        match server.head(&url) {
            Ok(_) => report.still_alive += 1,
            Err(e) if e.is_transient() => {
                report.inconclusive += 1;
                requeue.push(url);
            }
            Err(_) => {
                store.remove(&url);
                report.confirmed_deleted += 1;
                if let Some(sink) = trace {
                    sink.event(
                        EventKind::Maintenance,
                        "maintain.purge.deleted",
                        None,
                        vec![("url".to_string(), url.as_str().into())],
                    );
                }
            }
        }
    }
    store.check_missing.extend(requeue);
    if let Some(sink) = trace {
        sink.event(
            EventKind::Maintenance,
            "maintain.purge",
            None,
            vec![
                ("checked".to_string(), report.checked.into()),
                (
                    "confirmed_deleted".to_string(),
                    report.confirmed_deleted.into(),
                ),
                ("still_alive".to_string(), report.still_alive.into()),
                ("inconclusive".to_string(), report.inconclusive.into()),
                (
                    "duplicates_skipped".to_string(),
                    report.duplicates_skipped.into(),
                ),
            ],
        );
    }
    report
}

/// Eager maintenance: re-crawls the whole site in place. Pages whose
/// re-download fails survive as stale-but-retained (see
/// [`MatStore::materialize_report`]); pages no longer reachable from any
/// entry point are dropped. Returns the number of pages downloaded — the
/// cost the lazy strategy avoids.
pub fn full_refresh(
    store: &mut MatStore,
    ws: &WebScheme,
    server: &impl websim::PageServer,
) -> Result<usize> {
    full_refresh_traced(store, ws, server, None)
}

/// [`full_refresh`] with an optional trace sink: the refresh is recorded
/// as one `maintain.refresh` event carrying the pages downloaded and the
/// store size afterwards. The result is identical with or without a sink.
pub fn full_refresh_traced(
    store: &mut MatStore,
    ws: &WebScheme,
    server: &impl websim::PageServer,
    trace: Option<&TraceSink>,
) -> Result<usize> {
    store.check_missing.clear(); // the crawl re-derives any suspicions
    store.reset_status();
    let report = store.materialize_report(ws, server)?;
    store.retain_pages(&report.reached);
    if let Some(sink) = trace {
        sink.event(
            EventKind::Maintenance,
            "maintain.refresh",
            None,
            vec![
                ("downloaded".to_string(), (report.downloaded as u64).into()),
                ("store_pages".to_string(), (store.len() as u64).into()),
            ],
        );
    }
    Ok(report.downloaded)
}

/// Compares the store against a generated site's ground truth. Returns one
/// line per discrepancy (stale tuple, missing page, phantom page).
pub fn audit(store: &MatStore, site: &websim::Site) -> Vec<String> {
    let mut diffs = Vec::new();
    let mut live_urls = std::collections::HashSet::new();
    for ps in site.scheme.schemes() {
        for (url, truth) in site.instance(&ps.name) {
            live_urls.insert(url.clone());
            match store.get(&url) {
                None => diffs.push(format!("missing locally: {url}")),
                Some(p) if p.tuple != truth => diffs.push(format!("stale: {url}")),
                Some(_) => {}
            }
        }
    }
    // phantom pages: materialized but no longer on the site (detected by
    // count — MatStore exposes no page iterator; queries go through
    // URLCheck by design)
    if store.len() > live_urls.len() {
        diffs.push(format!(
            "store holds {} pages but the site has {}",
            store.len(),
            live_urls.len()
        ));
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MatStore;
    use websim::sitegen::{University, UniversityConfig};

    fn setup() -> (University, MatStore) {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 10,
            seed: 55,
            ..UniversityConfig::default()
        })
        .unwrap();
        let mut store = MatStore::new();
        store.materialize(&u.site.scheme, &u.site.server).unwrap();
        u.site.server.reset_stats();
        (u, store)
    }

    #[test]
    fn fresh_store_audits_clean() {
        let (u, store) = setup();
        assert!(audit(&store, &u.site).is_empty());
    }

    #[test]
    fn audit_detects_staleness_and_refresh_fixes_it() {
        let (mut u, mut store) = setup();
        u.update_course_description(1, "v2").unwrap();
        let diffs = audit(&store, &u.site);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("stale"));
        let n = full_refresh(&mut store, &u.site.scheme, &u.site.server).unwrap();
        assert_eq!(n, u.site.total_pages());
        assert!(audit(&store, &u.site).is_empty());
    }

    #[test]
    fn purge_confirms_deletions() {
        let (mut u, mut store) = setup();
        u.remove_course(0).unwrap();
        store.check_missing.push_back(University::course_url(0));
        // also queue a URL that still exists
        store.check_missing.push_back(University::course_url(1));
        let report = purge_missing(&mut store, &u.site.server);
        assert_eq!(report.checked, 2);
        assert_eq!(report.confirmed_deleted, 1);
        assert_eq!(report.still_alive, 1);
        assert!(store.get(&University::course_url(0)).is_none());
        assert!(store.get(&University::course_url(1)).is_some());
        assert!(store.check_missing.is_empty());
    }

    #[test]
    fn purge_dedups_queue() {
        let (u, mut store) = setup();
        for _ in 0..5 {
            store.check_missing.push_back(University::course_url(1));
        }
        let report = purge_missing(&mut store, &u.site.server);
        assert_eq!(report.checked, 1);
        assert_eq!(
            report.duplicates_skipped, 4,
            "dedup is explicit, not silent"
        );
        assert_eq!(report.still_alive, 1);
    }

    #[test]
    fn purge_never_double_counts_a_requeued_url() {
        let (u, mut store) = setup();
        let url = University::course_url(1);
        for _ in 0..3 {
            store.check_missing.push_back(url.clone());
        }
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(2)
                .with_rule(websim::FaultRule::unavailable(1.0).with_max_per_url(None)),
        );
        let report = purge_missing(&mut store, &u.site.server);
        // one check, one transient result, two duplicates — never three
        // checks for one URL in one sweep
        assert_eq!(report.checked, 1);
        assert_eq!(report.inconclusive, 1);
        assert_eq!(report.duplicates_skipped, 2);
        // the requeue holds the URL exactly once for the next sweep
        assert_eq!(store.check_missing.len(), 1);
        u.site.server.clear_fault_plan();
        let next = purge_missing(&mut store, &u.site.server);
        assert_eq!(next.checked, 1);
        assert_eq!(next.duplicates_skipped, 0);
        assert_eq!(next.still_alive, 1);
        assert!(store.check_missing.is_empty());
    }

    #[test]
    fn audit_detects_deleted_pages_after_refresh_only() {
        let (mut u, mut store) = setup();
        u.remove_course(3).unwrap();
        // stale store still holds the deleted page + the two updated pages
        let diffs = audit(&store, &u.site);
        assert!(!diffs.is_empty());
        full_refresh(&mut store, &u.site.scheme, &u.site.server).unwrap();
        assert!(audit(&store, &u.site).is_empty());
    }

    #[test]
    fn purge_is_inconclusive_under_transient_failures() {
        let (u, mut store) = setup();
        let url = University::course_url(1);
        store.check_missing.push_back(url.clone());
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(2)
                .with_rule(websim::FaultRule::unavailable(1.0).with_max_per_url(None)),
        );
        let report = purge_missing(&mut store, &u.site.server);
        assert_eq!(report.checked, 1);
        assert_eq!(report.inconclusive, 1);
        assert_eq!(report.confirmed_deleted, 0);
        assert!(store.get(&url).is_some(), "a 503 must not delete the page");
        assert_eq!(
            store.check_missing.front(),
            Some(&url),
            "left queued for the next sweep"
        );
        // the next sweep, with the outage over, resolves it
        u.site.server.clear_fault_plan();
        let report = purge_missing(&mut store, &u.site.server);
        assert_eq!(report.still_alive, 1);
        assert!(store.check_missing.is_empty());
    }

    #[test]
    fn full_refresh_retains_failed_pages_as_stale() {
        let (u, mut store) = setup();
        let victim = University::prof_url(2);
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(6).with_rule(
                websim::FaultRule::timeouts(1.0)
                    .for_url_prefix(victim.as_str())
                    .with_max_per_url(None),
            ),
        );
        let n = full_refresh(&mut store, &u.site.scheme, &u.site.server).unwrap();
        assert_eq!(n, u.site.total_pages() - 1);
        assert!(store.get(&victim).is_some(), "retained through the outage");
        assert!(store.is_stale(&victim), "but flagged, not silently fresh");
        assert_eq!(store.len(), u.site.total_pages());
        // a later clean refresh lifts the flag
        u.site.server.clear_fault_plan();
        full_refresh(&mut store, &u.site.scheme, &u.site.server).unwrap();
        assert!(!store.is_stale(&victim));
        assert_eq!(store.stale_count(), 0);
    }

    #[test]
    fn full_refresh_still_drops_unreachable_phantoms() {
        let (mut u, mut store) = setup();
        u.remove_course(5).unwrap();
        let gone = University::course_url(5);
        assert!(store.get(&gone).is_some());
        // even with transient chaos elsewhere, the phantom is dropped
        // (chaos scoped to another course page, whose stale copy cannot
        // re-reach the removed one)
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(8).with_rule(
                websim::FaultRule::timeouts(1.0)
                    .for_url_prefix(University::course_url(6).as_str())
                    .with_max_per_url(None),
            ),
        );
        full_refresh(&mut store, &u.site.scheme, &u.site.server).unwrap();
        assert!(store.get(&gone).is_none(), "no longer reachable: dropped");
    }
}
