//! Algorithm 3 — query evaluation for materialized views.
//!
//! A plan is selected with Algorithm 1 (the same optimizer as for virtual
//! views), then evaluated against the *local* relations: navigations become
//! joins over URLs, but before any tuple is used its URL is checked with
//! [`crate::urlcheck::url_check`]. URLs flagged `missing` are not used;
//! they are deferred to the `CheckMissing` queue (purged off-line by
//! [`crate::maintain::purge_missing`]). Answering a query thus costs
//! 𝒞(E) light connections plus one download per actually-updated page —
//! and maintains the view as a side effect.

use crate::store::{MatStore, UrlStatus};
use crate::urlcheck::{url_check, CheckCounters};
use crate::{MatError, Result};
use adm::{Relation, Tuple, Url, WebScheme};
use nalg::{DegradationMode, Evaluator, NalgExpr, PageSource, SharedPageCache, SourceError};
use obs::trace::{EventKind, TraceSink};
use std::cell::RefCell;
use wvcore::{ConjunctiveQuery, Explain, ExplainAnalyze, Optimizer, SiteStatistics, ViewCatalog};

/// The outcome of a materialized-view query.
#[derive(Debug, Clone)]
pub struct MatOutcome {
    /// The optimizer's explanation.
    pub explain: Explain,
    /// The answer.
    pub relation: Relation,
    /// Maintenance traffic incurred while answering.
    pub counters: CheckCounters,
    /// Links that turned out to point at deleted pages.
    pub broken_links: u64,
    /// Pages skipped because they were unreachable (sorted, deduplicated;
    /// non-empty only under [`DegradationMode::Partial`] with faults).
    pub unreachable: Vec<Url>,
}

impl MatOutcome {
    /// `true` when no page had to be skipped: the answer is complete.
    pub fn is_complete(&self) -> bool {
        self.unreachable.is_empty()
    }
}

/// A [`MatOutcome`] plus its EXPLAIN ANALYZE join and the trace it was
/// computed from (see [`MatSession::run_analyzed`]).
#[derive(Debug, Clone)]
pub struct MatAnalyzedOutcome {
    /// The ordinary outcome — answer and counters byte-identical to an
    /// untraced [`MatSession::run`].
    pub outcome: MatOutcome,
    /// Predicted vs. observed page accesses per operator. Observed
    /// *downloads* here are the maintenance re-downloads the URL-check
    /// protocol decided on, so a fresh view shows 0 everywhere.
    pub analysis: ExplainAnalyze,
    /// The full trace (optimizer events, operator spans, per-URL-check
    /// maintenance events).
    pub trace: TraceSink,
}

/// A page source that consults the materialized store, checking freshness
/// through light connections (Algorithm 3's per-URL protocol).
struct CheckingSource<'a, P> {
    ws: &'a WebScheme,
    server: &'a P,
    store: RefCell<&'a mut MatStore>,
    counters: RefCell<CheckCounters>,
    error: RefCell<Option<crate::MatError>>,
    /// Shared cross-query cache, kept in sync as a side effect of URL
    /// checking: freshly verified tuples are written through with their
    /// Last-Modified stamp, deleted pages are invalidated. The cache is
    /// never *read* here — every access still goes through the paper's
    /// URL-check protocol, so `CheckCounters` are unaffected.
    shared: Option<&'a SharedPageCache>,
    /// Records one [`EventKind::Maintenance`] event per URL check,
    /// carrying what the protocol decided (downloaded / from_store /
    /// stale_served / deferred_missing / deleted). Never affects
    /// [`CheckCounters`].
    trace: Option<TraceSink>,
}

impl<P> CheckingSource<'_, P> {
    fn trace_check(&self, url: &Url, outcome: &str, light: u64) {
        if let Some(sink) = &self.trace {
            sink.event(
                EventKind::Maintenance,
                "matview.urlcheck",
                None,
                vec![
                    ("url".to_string(), url.as_str().into()),
                    ("outcome".to_string(), outcome.into()),
                    ("light_connections".to_string(), light.into()),
                ],
            );
        }
    }
}

impl<P: websim::PageServer> PageSource for CheckingSource<'_, P> {
    fn fetch(&self, url: &Url, scheme: &str) -> std::result::Result<Tuple, SourceError> {
        let mut store = self.store.borrow_mut();
        // "URLs whose flag equals missing … will not be used in the query
        // evaluation phase; we defer this check and do it periodically
        // off-line."
        if store.status(url) == UrlStatus::Missing {
            store.check_missing.push_back(url.clone());
            if let Some(cache) = self.shared {
                cache.invalidate(url);
            }
            self.trace_check(url, "deferred_missing", 0);
            return Err(SourceError::NotFound(url.clone()));
        }
        let mut counters = self.counters.borrow_mut();
        let before = *counters;
        let outcome_of = |after: &CheckCounters| {
            if after.downloads > before.downloads {
                "downloaded"
            } else if after.stale_served > before.stale_served {
                "stale_served"
            } else {
                "from_store"
            }
        };
        match url_check(&mut store, &mut counters, self.ws, self.server, url, scheme) {
            Ok(Some(t)) => {
                self.trace_check(
                    url,
                    outcome_of(&counters),
                    counters.light_connections - before.light_connections,
                );
                if let Some(cache) = self.shared {
                    // The store's access date is the freshest stamp we can
                    // attest for this tuple: drop any older cached copy
                    // and write the verified one through.
                    let lm = store.get(url).map(|p| p.access_date);
                    if let Some(lm) = lm {
                        cache.invalidate_older_than(url, lm);
                    }
                    cache.insert(url, &t, lm);
                }
                Ok(t)
            }
            Ok(None) => {
                if let Some(cache) = self.shared {
                    cache.invalidate(url);
                }
                self.trace_check(
                    url,
                    "deleted",
                    counters.light_connections - before.light_connections,
                );
                Err(SourceError::NotFound(url.clone()))
            }
            Err(crate::MatError::Unreachable { url, reason }) => {
                // A transient outage with no stored fallback: surface it as
                // a transient source error (NOT via the error cell) so the
                // evaluator's degradation mode decides — `Partial` skips the
                // page and reports it, `FailFast` aborts the query.
                Err(SourceError::Unavailable { url, reason })
            }
            Err(e) => {
                *self.error.borrow_mut() = Some(e.clone());
                Err(SourceError::Other(e.to_string()))
            }
        }
    }
}

/// A query session over a materialized view of a site.
///
/// Generic over the page server so the maintenance traffic can be routed
/// through a resilience wrapper (retries, circuit breaking) instead of
/// hitting the [`websim::VirtualServer`] directly.
pub struct MatSession<'a, P = websim::VirtualServer> {
    ws: &'a WebScheme,
    catalog: &'a ViewCatalog,
    stats: &'a SiteStatistics,
    server: &'a P,
    mask: wvcore::RuleMask,
    shared_cache: Option<&'a SharedPageCache>,
    degradation: DegradationMode,
    trace: Option<TraceSink>,
}

impl<'a, P: websim::PageServer> MatSession<'a, P> {
    /// Creates a session.
    pub fn new(
        ws: &'a WebScheme,
        catalog: &'a ViewCatalog,
        stats: &'a SiteStatistics,
        server: &'a P,
    ) -> Self {
        MatSession {
            ws,
            catalog,
            stats,
            server,
            mask: wvcore::RuleMask::all(),
            shared_cache: None,
            degradation: DegradationMode::FailFast,
            trace: None,
        }
    }

    /// Attaches a trace sink: optimizer rule events, one span per
    /// executed operator, and one maintenance event per URL check.
    /// Answers and every counter ([`CheckCounters`] included) are
    /// byte-identical with or without a sink.
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.trace = Some(sink.clone());
        self
    }

    /// Sets the optimizer rule mask (builder style).
    pub fn with_mask(mut self, mask: wvcore::RuleMask) -> Self {
        self.mask = mask;
        self
    }

    /// Sets the degradation mode for evaluation (builder style). In
    /// [`DegradationMode::Partial`] a page that is transiently unreachable
    /// *and* has no stored copy to serve stale is skipped and reported,
    /// instead of aborting the query.
    pub fn with_degradation(mut self, mode: DegradationMode) -> Self {
        self.degradation = mode;
        self
    }

    /// Keeps a shared cross-query page cache in sync while answering:
    /// URL-checked tuples are written through with their freshness stamp
    /// and pages found deleted are invalidated. Maintenance traffic
    /// ([`CheckCounters`]) is unchanged — the cache is never consulted in
    /// place of the URL-check protocol.
    pub fn with_shared_cache(mut self, cache: &'a SharedPageCache) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    /// Runs a conjunctive query against the materialized view,
    /// lazily maintaining it (Algorithm 3).
    pub fn run(&self, store: &mut MatStore, q: &ConjunctiveQuery) -> Result<MatOutcome> {
        self.run_traced(store, q, self.trace.as_ref())
    }

    fn run_traced(
        &self,
        store: &mut MatStore,
        q: &ConjunctiveQuery,
        trace: Option<&TraceSink>,
    ) -> Result<MatOutcome> {
        let mut opt = Optimizer::new(self.ws, self.catalog, self.stats).with_mask(self.mask);
        if let Some(sink) = trace {
            opt = opt.with_trace(sink);
        }
        let explain = opt.optimize(q)?;
        // `Explain::best` indexes candidates[0]; go through `first` so an
        // empty candidate set is an error, not a panic.
        let best = explain
            .candidates
            .first()
            .ok_or_else(|| MatError::Opt("optimizer produced no candidate plans".into()))?
            .expr
            .clone();
        let (relation, counters, broken, unreachable) = self.execute_traced(store, &best, trace)?;
        Ok(MatOutcome {
            explain,
            relation,
            counters,
            broken_links: broken,
            unreachable,
        })
    }

    /// EXPLAIN ANALYZE over the materialized view: optimizes, answers
    /// under a fresh deterministic trace sink, and joins the optimizer's
    /// per-operator estimates onto the executed spans. Note the
    /// semantics: predicted pages are what a *virtual*-view evaluation
    /// would download, while observed downloads are the re-downloads the
    /// URL-check protocol actually decided on — the gap between the two
    /// columns is exactly what materialization saves.
    pub fn run_analyzed(
        &self,
        store: &mut MatStore,
        q: &ConjunctiveQuery,
    ) -> Result<MatAnalyzedOutcome> {
        let sink = TraceSink::with_seed(0);
        let outcome = self.run_traced(store, q, Some(&sink))?;
        let best = outcome
            .explain
            .candidates
            .first()
            .ok_or_else(|| MatError::Opt("optimizer produced no candidate plans".into()))?;
        let analysis = ExplainAnalyze::from_parts(&best.estimate, &sink.events());
        Ok(MatAnalyzedOutcome {
            outcome,
            analysis,
            trace: sink,
        })
    }

    /// Evaluates one plan against the store with URL checking; returns the
    /// answer, the maintenance counters, the broken-link count, and the
    /// unreachable pages skipped (empty unless degradation is `Partial`).
    pub fn execute(
        &self,
        store: &mut MatStore,
        plan: &NalgExpr,
    ) -> Result<(Relation, CheckCounters, u64, Vec<Url>)> {
        self.execute_traced(store, plan, self.trace.as_ref())
    }

    fn execute_traced(
        &self,
        store: &mut MatStore,
        plan: &NalgExpr,
        trace: Option<&TraceSink>,
    ) -> Result<(Relation, CheckCounters, u64, Vec<Url>)> {
        store.reset_status();
        let source = CheckingSource {
            ws: self.ws,
            server: self.server,
            store: RefCell::new(store),
            counters: RefCell::new(CheckCounters::default()),
            error: RefCell::new(None),
            shared: self.shared_cache,
            trace: trace.cloned(),
        };
        let mut ev = Evaluator::new(self.ws, &source).with_degradation(self.degradation);
        if let Some(sink) = trace {
            ev = ev.with_trace(sink);
        }
        let report = ev.eval(plan)?;
        if let Some(e) = source.error.into_inner() {
            return Err(e);
        }
        Ok((
            report.relation,
            source.counters.into_inner(),
            report.broken_links,
            report.unreachable,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::sitegen::{University, UniversityConfig};
    use wvcore::views::university_catalog;

    fn setup() -> (University, MatStore, SiteStatistics, ViewCatalog) {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 9,
            courses: 18,
            seed: 44,
            ..UniversityConfig::default()
        })
        .unwrap();
        let mut store = MatStore::new();
        store.materialize(&u.site.scheme, &u.site.server).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        u.site.server.reset_stats();
        (u, store, stats, university_catalog())
    }

    fn grad_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new("grad")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"))
    }

    #[test]
    fn unchanged_site_costs_zero_downloads() {
        let (u, mut store, stats, catalog) = setup();
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &grad_query()).unwrap();
        assert_eq!(out.counters.downloads, 0);
        assert!(out.counters.light_connections > 0);
        // server agrees: only HEADs
        assert_eq!(u.site.server.stats().gets, 0);
        assert_eq!(u.site.server.stats().heads, out.counters.light_connections);
        // answer matches the oracle
        let expected: std::collections::HashSet<String> = u
            .expected_course()
            .into_iter()
            .filter(|(_, _, _, t)| t == "Graduate")
            .map(|(c, _, _, _)| c)
            .collect();
        let got: std::collections::HashSet<String> = out
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn updated_pages_are_redownloaded_and_answer_is_fresh() {
        let (mut u, mut store, stats, catalog) = setup();
        // flip one course to Graduate by republishing it with a new type —
        // simplest path: change its description then verify re-download;
        // for answer freshness, change a description the query projects.
        let q = ConjunctiveQuery::new("descr")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"))
            .project((0, "Description"));
        let grad_id = u
            .course_ids()
            .into_iter()
            .find(|&id| {
                u.site
                    .ground_truth("CoursePage", &University::course_url(id))
                    .unwrap()
                    .get("Type")
                    .unwrap()
                    .as_text()
                    == Some("Graduate")
            })
            .unwrap();
        u.update_course_description(grad_id, "BRAND NEW CONTENT")
            .unwrap();
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &q).unwrap();
        assert_eq!(out.counters.downloads, 1, "only the changed page");
        assert!(out
            .relation
            .rows()
            .iter()
            .any(|r| r[1].as_text() == Some("BRAND NEW CONTENT")));
    }

    #[test]
    fn deleted_course_disappears_from_answers() {
        let (mut u, mut store, stats, catalog) = setup();
        let victim = u.course_ids()[0];
        let victim_name = u
            .site
            .ground_truth("CoursePage", &University::course_url(victim))
            .unwrap()
            .get("CName")
            .unwrap()
            .as_text()
            .unwrap()
            .to_string();
        u.remove_course(victim).unwrap();
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let q = ConjunctiveQuery::new("all-courses")
            .atom("Course")
            .select((0, "Session"), "Fall")
            .project((0, "CName"));
        let out = session.run(&mut store, &q).unwrap();
        assert!(!out
            .relation
            .rows()
            .iter()
            .any(|r| r[0].as_text() == Some(victim_name.as_str())));
    }

    #[test]
    fn added_course_appears_in_answers() {
        let (mut u, mut store, stats, catalog) = setup();
        let id = u.add_course(2, "Fall", "Graduate").unwrap();
        let name = u
            .site
            .ground_truth("CoursePage", &University::course_url(id))
            .unwrap()
            .get("CName")
            .unwrap()
            .as_text()
            .unwrap()
            .to_string();
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &grad_query()).unwrap();
        assert!(
            out.relation
                .rows()
                .iter()
                .any(|r| r[0].as_text() == Some(name.as_str())),
            "new course {name} missing from answer"
        );
        // the store learned the new page while answering
        assert!(store.get(&University::course_url(id)).is_some());
    }

    #[test]
    fn rule_mask_controls_plan_and_traffic() {
        let (u, mut store, stats, catalog) = setup();
        // naive mask must still answer correctly, just touch more pages
        let naive = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server)
            .with_mask(wvcore::RuleMask::none());
        let out_naive = naive.run(&mut store, &grad_query()).unwrap();
        store.reset_status();
        let smart = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out_smart = smart.run(&mut store, &grad_query()).unwrap();
        assert_eq!(
            out_naive.relation.sorted().rows().len(),
            out_smart.relation.sorted().rows().len()
        );
        assert!(out_smart.counters.light_connections <= out_naive.counters.light_connections);
    }

    #[test]
    fn shared_cache_is_warmed_and_invalidated_without_extra_traffic() {
        let (u, mut store, stats, catalog) = setup();
        let cache = SharedPageCache::default();
        let victim = u.course_ids()[0];
        {
            let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server)
                .with_shared_cache(&cache);
            let out = session.run(&mut store, &grad_query()).unwrap();
            // Traffic is exactly what the plain session pays: the cache is
            // write-through only, never consulted instead of the URL check.
            assert_eq!(out.counters.downloads, 0);
            assert_eq!(u.site.server.stats().gets, 0);
            assert_eq!(u.site.server.stats().heads, out.counters.light_connections);
            // ...but every URL-checked tuple was written through.
            assert!(!cache.is_empty());
            assert!(cache.get(&University::course_url(victim)).is_some());
        }
        // Delete the page server-side only (a dangling link, the case
        // URL-check exists to detect): answering again evicts it.
        u.site.server.remove(&University::course_url(victim));
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server)
            .with_shared_cache(&cache);
        session.run(&mut store, &grad_query()).unwrap();
        assert!(cache.get(&University::course_url(victim)).is_none());
    }

    #[test]
    fn transient_chaos_answers_from_stale_copies() {
        let (u, mut store, stats, catalog) = setup();
        // baseline answer on a clean site
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let clean = session.run(&mut store, &grad_query()).unwrap();
        store.reset_status();
        // total outage: every light connection fails — but the store holds
        // a copy of everything, so the view still answers (stale-served)
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(4)
                .with_rule(websim::FaultRule::unavailable(1.0).with_max_per_url(None)),
        );
        let out = session.run(&mut store, &grad_query()).unwrap();
        assert_eq!(
            out.relation.sorted().rows(),
            clean.relation.sorted().rows(),
            "the stored copies were fresh, so the stale answer is right"
        );
        assert!(out.counters.stale_served > 0);
        assert_eq!(out.counters.downloads, 0);
        assert!(store.stale_count() > 0, "served pages are flagged");
        assert!(out.is_complete(), "nothing was skipped, only served stale");
        assert_eq!(u.site.server.stats().gets, 0);
    }

    #[test]
    fn unreachable_new_page_fails_fast_by_default_but_degrades_in_partial() {
        let (mut u, mut store, stats, catalog) = setup();
        let id = u.add_course(1, "Fall", "Graduate").unwrap();
        let new_url = University::course_url(id);
        // the brand-new page (never materialized) is behind an outage
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(4).with_rule(
                websim::FaultRule::timeouts(1.0)
                    .for_url_prefix(new_url.as_str())
                    .with_max_per_url(None),
            ),
        );
        let strict = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        assert!(
            strict.run(&mut store, &grad_query()).is_err(),
            "FailFast: an unreachable page with no stored copy aborts"
        );
        store.reset_status();
        let lenient = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server)
            .with_degradation(DegradationMode::Partial);
        let out = lenient.run(&mut store, &grad_query()).unwrap();
        assert_eq!(out.unreachable, vec![new_url], "the exact skipped set");
        assert!(!out.is_complete());
        // every materialized course is still in the answer
        let expected: std::collections::HashSet<String> = u
            .expected_course()
            .into_iter()
            .filter(|(_, _, _, t)| t == "Graduate")
            .map(|(c, _, _, _)| c)
            .collect();
        let got: std::collections::HashSet<String> = out
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(
            got.len(),
            expected.len() - 1,
            "only the new course is missing"
        );
        assert!(got.is_subset(&expected));
    }

    #[test]
    fn run_analyzed_is_counter_identical_and_joins_urlchecks() {
        let (u, mut store, stats, catalog) = setup();
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let plain = session.run(&mut store, &grad_query()).unwrap();
        let analyzed = session.run_analyzed(&mut store, &grad_query()).unwrap();
        // tracing changes nothing the paper reports
        assert_eq!(
            analyzed.outcome.relation.sorted().rows(),
            plain.relation.sorted().rows()
        );
        assert_eq!(analyzed.outcome.counters, plain.counters);
        // the join renders, and maintenance events carry the protocol's
        // per-URL decisions
        assert!(analyzed.analysis.render().contains("total:"));
        let events = analyzed.trace.events();
        let checks: Vec<_> = events
            .iter()
            .filter(|e| e.name == "matview.urlcheck")
            .collect();
        // one event per URL check: every successful check lands in
        // exactly one of the three counters
        let c = &analyzed.outcome.counters;
        assert_eq!(
            checks.len() as u64,
            c.from_store + c.downloads + c.stale_served
        );
        assert!(!checks.is_empty());
        assert!(checks
            .iter()
            .all(|e| e.field_str("outcome") == Some("from_store")
                || e.field_str("outcome") == Some("downloaded")));
        assert!(events.iter().any(|e| e.kind == EventKind::Operator));
    }

    #[test]
    fn maintenance_is_scoped_to_the_query() {
        let (mut u, mut store, stats, catalog) = setup();
        // update a professor page — a course-only query must not touch it
        u.update_prof_email(0, Some("new@uni.example".into()))
            .unwrap();
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &grad_query()).unwrap();
        assert_eq!(out.counters.downloads, 0);
        // the professor page is still stale locally (lazy maintenance)
        let stale = store.get(&University::prof_url(0)).unwrap();
        assert_ne!(
            stale.tuple.get("Email").unwrap().as_text(),
            Some("new@uni.example")
        );
    }
}
