//! Materialized views over the second (bibliography) site — the matview
//! machinery is scheme-agnostic.

use matview::{MatSession, MatStore};
use websim::sitegen::{BibConfig, Bibliography};
use wvcore::views::bibliography_catalog;
use wvcore::{ConjunctiveQuery, SiteStatistics};

#[test]
fn editors_query_over_materialized_bibliography() {
    let bib = Bibliography::generate(BibConfig {
        authors: 40,
        conferences: 6,
        db_conferences: 2,
        featured: 1,
        editions_per_conf: 4,
        papers_per_edition: 5,
        seed: 61,
        ..BibConfig::default()
    })
    .unwrap();
    let stats = SiteStatistics::from_site(&bib.site);
    let catalog = bibliography_catalog();
    let mut store = MatStore::new();
    store
        .materialize(&bib.site.scheme, &bib.site.server)
        .unwrap();
    bib.site.server.reset_stats();

    let q = ConjunctiveQuery::new("editors")
        .atom("ConfEdition")
        .select((0, "ConfName"), "VLDB")
        .select((0, "Year"), "1996")
        .project((0, "Editors"));
    let session = MatSession::new(&bib.site.scheme, &catalog, &stats, &bib.site.server);
    let out = session.run(&mut store, &q).unwrap();
    assert_eq!(out.counters.downloads, 0);
    // the pruned 3-page plan needs only 3 light connections
    assert!(
        out.counters.light_connections <= 3,
        "{}",
        out.counters.light_connections
    );
    assert_eq!(
        out.relation.rows()[0][0].as_text().unwrap(),
        bib.expected_editors(0, 1996)
    );
}

#[test]
fn nested_author_lists_survive_store_round_trip() {
    let bib = Bibliography::generate(BibConfig {
        authors: 25,
        conferences: 3,
        db_conferences: 1,
        featured: 1,
        editions_per_conf: 2,
        papers_per_edition: 4,
        seed: 7,
        ..BibConfig::default()
    })
    .unwrap();
    let mut store = MatStore::new();
    store
        .materialize(&bib.site.scheme, &bib.site.server)
        .unwrap();
    // every edition page's doubly-nested tuple is stored intact
    for (url, truth) in bib.site.instance("EditionPage") {
        assert_eq!(store.get(&url).unwrap().tuple, truth);
    }
}
