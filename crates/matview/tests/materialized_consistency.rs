//! Materialized views over a *drifted* site.
//!
//! Constraint drift rewrites replicated attributes on live pages. A
//! materialized view must never keep serving those values as if they were
//! fresh: the URL-check protocol re-downloads changed pages while
//! answering, the off-line audit flags the rest, and when a re-download
//! fails the affected tuple is retained **marked stale** rather than
//! silently passed off as current.

use matview::maintain::{audit, full_refresh};
use matview::{MatSession, MatStore};
use websim::mutation::{DriftPlan, DriftRule};
use websim::sitegen::{University, UniversityConfig};
use wvcore::views::university_catalog;
use wvcore::{ConjunctiveQuery, SiteStatistics, ViewCatalog};

fn setup() -> (University, MatStore, SiteStatistics, ViewCatalog) {
    let u = University::generate(UniversityConfig {
        departments: 4,
        professors: 8,
        courses: 10,
        seed: 21,
        ..UniversityConfig::default()
    })
    .unwrap();
    let mut store = MatStore::new();
    store.materialize(&u.site.scheme, &u.site.server).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    u.site.server.reset_stats();
    (u, store, stats, university_catalog())
}

/// Projects Address too, so every DeptPage must actually be consulted —
/// DName alone could be answered from its replicated copy on the list page.
fn dept_query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("depts")
        .atom("Dept")
        .project((0, "DName"))
        .project((0, "Address"))
}

fn dept_drift() -> DriftPlan {
    DriftPlan::new(3).with_rule(DriftRule::perturb_attr("DeptPage", "DName", 0.5))
}

#[test]
fn queries_refetch_drifted_pages_and_answer_fresh() {
    let (mut u, mut store, stats, catalog) = setup();
    let report = dept_drift().apply(&mut u.site).unwrap();
    assert!(report.perturbed_pages >= 1, "seed 3 must drift something");
    u.site.server.reset_stats();

    let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
    let out = session.run(&mut store, &dept_query()).unwrap();
    // exactly the drifted pages are re-downloaded, nothing else
    assert_eq!(out.counters.downloads, report.perturbed_pages);
    // the answer carries the drifted values, not the materialized ones
    let drifted_rows = out
        .relation
        .rows()
        .iter()
        .filter(|r| r[0].as_text().is_some_and(|s| s.contains("[drift")))
        .count() as u64;
    assert_eq!(drifted_rows, report.perturbed_pages);
    // and agrees exactly with the drifted site's ground truth
    let mut expected: Vec<String> = u
        .site
        .instance("DeptPage")
        .iter()
        .map(|(_, t)| t.get("DName").unwrap().as_text().unwrap().to_string())
        .collect();
    let mut got: Vec<String> = out
        .relation
        .rows()
        .iter()
        .map(|r| r[0].as_text().unwrap().to_string())
        .collect();
    expected.sort();
    got.sort();
    assert_eq!(got, expected);
    // the store was maintained as a side effect: nothing is stale now
    assert_eq!(store.stale_count(), 0);
}

#[test]
fn audit_flags_drift_until_full_refresh() {
    let (mut u, mut store, _stats, _catalog) = setup();
    let report = dept_drift().apply(&mut u.site).unwrap();
    let diffs = audit(&store, &u.site);
    assert_eq!(diffs.len() as u64, report.perturbed_pages);
    assert!(diffs.iter().all(|d| d.starts_with("stale:")));
    full_refresh(&mut store, &u.site.scheme, &u.site.server).unwrap();
    assert!(audit(&store, &u.site).is_empty());
    // the refreshed store holds the drifted values
    let marked = u
        .site
        .instance("DeptPage")
        .iter()
        .filter(|(url, _)| {
            store
                .get(url)
                .and_then(|p| p.tuple.get("DName"))
                .and_then(|v| v.as_text())
                .is_some_and(|s| s.contains("[drift"))
        })
        .count() as u64;
    assert_eq!(marked, report.perturbed_pages);
}

#[test]
fn outage_serves_old_values_but_marks_them_stale() {
    let (mut u, mut store, stats, catalog) = setup();
    let report = dept_drift().apply(&mut u.site).unwrap();
    // total outage: the drifted pages cannot be re-downloaded
    u.site.server.set_fault_plan(
        websim::FaultPlan::new(4)
            .with_rule(websim::FaultRule::unavailable(1.0).with_max_per_url(None)),
    );
    let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
    let out = session.run(&mut store, &dept_query()).unwrap();
    // the old values are served — but flagged, never passed off as fresh
    assert!(out
        .relation
        .rows()
        .iter()
        .all(|r| !r[0].as_text().unwrap().contains("[drift")));
    assert!(out.counters.stale_served > 0);
    assert_eq!(out.counters.downloads, 0);
    assert!(store.stale_count() > 0, "served tuples are marked stale");
    // once the outage clears, the next query repairs the drifted pages
    u.site.server.clear_fault_plan();
    store.reset_status();
    let out = session.run(&mut store, &dept_query()).unwrap();
    assert_eq!(out.counters.downloads, report.perturbed_pages);
    let drifted_rows = out
        .relation
        .rows()
        .iter()
        .filter(|r| r[0].as_text().is_some_and(|s| s.contains("[drift")))
        .count() as u64;
    assert_eq!(drifted_rows, report.perturbed_pages);
}

#[test]
fn failed_redownload_is_marked_stale_not_kept_wrong() {
    let (mut u, mut store, _stats, _catalog) = setup();
    // drift every course's replicated CName
    let report = DriftPlan::new(7)
        .with_rule(DriftRule::perturb_attr("CoursePage", "CName", 1.0))
        .apply(&mut u.site)
        .unwrap();
    assert_eq!(report.perturbed_pages, 10);
    // one drifted page is unreachable during the refresh
    let victim = University::course_url(2);
    u.site.server.set_fault_plan(
        websim::FaultPlan::new(6).with_rule(
            websim::FaultRule::timeouts(1.0)
                .for_url_prefix(victim.as_str())
                .with_max_per_url(None),
        ),
    );
    let n = full_refresh(&mut store, &u.site.scheme, &u.site.server).unwrap();
    assert_eq!(n, u.site.total_pages() - 1);
    // the victim still holds the pre-drift value — but is flagged stale
    let kept = store.get(&victim).expect("retained through the outage");
    assert!(!kept
        .tuple
        .get("CName")
        .unwrap()
        .as_text()
        .unwrap()
        .contains("[drift"));
    assert!(store.is_stale(&victim));
    // the audit agrees: exactly the victim is inconsistent
    let diffs = audit(&store, &u.site);
    assert_eq!(diffs.len(), 1);
    assert!(diffs[0].contains(victim.as_str()));
    // a clean refresh completes the repair
    u.site.server.clear_fault_plan();
    full_refresh(&mut store, &u.site.scheme, &u.site.server).unwrap();
    assert!(!store.is_stale(&victim));
    assert!(store
        .get(&victim)
        .unwrap()
        .tuple
        .get("CName")
        .unwrap()
        .as_text()
        .unwrap()
        .contains("[drift"));
    assert!(audit(&store, &u.site).is_empty());
}
