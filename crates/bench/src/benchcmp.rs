//! `harness benchcmp A.json B.json` — diff two `BENCH_<ID>.json` files.
//!
//! Regression tooling wants "did the numbers move?", not a JSON diff: the
//! comparator parses the harness's own flat format (see [`crate::json`]),
//! matches rows by position, and reports every numeric cell whose value
//! changed, plus the wall-clock delta. Cells that are not plain numbers
//! (labels, `25.0 / 25` composites, `93%`) are compared textually.
//! Throughput columns (`req/s`, `rows/s`) additionally report the a→b
//! ratio; percentile columns whose two files share a histogram resolution
//! (`hdr32`) report relative deltas and annotate moves within the grid's
//! quantization step rather than flagging them. `--deterministic` turns
//! any non-timing cell change into a hard error — the CI regression gate
//! against a committed baseline. The parser is hand-rolled for exactly
//! the subset `experiment_json` emits — the harness has no JSON
//! dependency and does not need one.

/// One parsed `BENCH_<ID>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// The `experiment` field (e.g. `"x5"`).
    pub experiment: String,
    /// The file's layout version ([`crate::json::SCHEMA_VERSION`]);
    /// files written before the field existed parse as version 1.
    pub schema_version: u64,
    /// The table title.
    pub title: String,
    /// Wall-clock of the run, milliseconds.
    pub wall_clock_ms: f64,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (cells as written).
    pub rows: Vec<Vec<String>>,
    /// Latency-histogram resolution tag (e.g. `"hdr32"`), when the
    /// experiment reports percentile columns backed by a histogram.
    pub histogram: Option<String>,
}

/// Scans a JSON string literal starting at the opening quote; returns the
/// unescaped contents and the index just past the closing quote.
fn scan_string(s: &[u8], mut i: usize) -> Result<(String, usize), String> {
    if s.get(i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    i += 1;
    let mut out = String::new();
    while let Some(&c) = s.get(i) {
        match c {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = s.get(i + 1).ok_or("dangling escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = s.get(i + 2..i + 6).ok_or("short \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        i += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
                i += 2;
            }
            _ => {
                // multi-byte UTF-8: copy the whole scalar
                let rest = std::str::from_utf8(&s[i..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("truncated string")?;
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn skip_ws(s: &[u8], mut i: usize) -> usize {
    while matches!(s.get(i), Some(b' ' | b'\n' | b'\r' | b'\t')) {
        i += 1;
    }
    i
}

/// Scans `["a", "b", ...]` starting at the opening bracket.
fn scan_string_array(s: &[u8], mut i: usize) -> Result<(Vec<String>, usize), String> {
    if s.get(i) != Some(&b'[') {
        return Err(format!("expected array at byte {i}"));
    }
    i = skip_ws(s, i + 1);
    let mut out = Vec::new();
    if s.get(i) == Some(&b']') {
        return Ok((out, i + 1));
    }
    loop {
        let (item, next) = scan_string(s, i)?;
        out.push(item);
        i = skip_ws(s, next);
        match s.get(i) {
            Some(b',') => i = skip_ws(s, i + 1),
            Some(b']') => return Ok((out, i + 1)),
            _ => return Err(format!("expected , or ] at byte {i}")),
        }
    }
}

/// Finds the value position of a top-level `"key":` occurrence.
fn value_of(text: &str, key: &str) -> Result<usize, String> {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("no \"{key}\" field"))?;
    Ok(skip_ws(text.as_bytes(), at + needle.len()))
}

/// Parses one `BENCH_<ID>.json` produced by [`crate::json`].
pub fn parse(text: &str) -> Result<BenchFile, String> {
    let bytes = text.as_bytes();
    let (experiment, _) = scan_string(bytes, value_of(text, "experiment")?)?;
    // Optional: absent in files written before the field existed.
    let schema_version = match value_of(text, "schema_version") {
        Ok(at) => {
            let end = text[at..]
                .find([',', '\n', '}'])
                .map(|d| at + d)
                .ok_or("unterminated schema_version")?;
            text[at..end]
                .trim()
                .parse()
                .map_err(|e| format!("schema_version: {e}"))?
        }
        Err(_) => 1,
    };
    let histogram = match value_of(text, "histogram") {
        Ok(at) => Some(scan_string(bytes, at)?.0),
        Err(_) => None,
    };
    let (title, _) = scan_string(bytes, value_of(text, "title")?)?;
    let wall_start = value_of(text, "wall_clock_ms")?;
    let wall_end = text[wall_start..]
        .find([',', '\n', '}'])
        .map(|d| wall_start + d)
        .ok_or("unterminated wall_clock_ms")?;
    let wall_clock_ms: f64 = text[wall_start..wall_end]
        .trim()
        .parse()
        .map_err(|e| format!("wall_clock_ms: {e}"))?;
    let (headers, _) = scan_string_array(bytes, value_of(text, "headers")?)?;
    let mut i = value_of(text, "rows")?;
    if bytes.get(i) != Some(&b'[') {
        return Err("rows is not an array".to_string());
    }
    i = skip_ws(bytes, i + 1);
    let mut rows = Vec::new();
    if bytes.get(i) != Some(&b']') {
        loop {
            let (row, next) = scan_string_array(bytes, i)?;
            rows.push(row);
            i = skip_ws(bytes, next);
            match bytes.get(i) {
                Some(b',') => i = skip_ws(bytes, i + 1),
                Some(b']') => break,
                _ => return Err(format!("expected , or ] at byte {i}")),
            }
        }
    }
    Ok(BenchFile {
        experiment,
        schema_version,
        title,
        wall_clock_ms,
        headers,
        rows,
        histogram,
    })
}

fn numeric(cell: &str) -> Option<f64> {
    cell.trim().parse::<f64>().ok()
}

/// Headers whose cells are wall-clock or derived-from-wall-clock numbers:
/// latencies (`... ms`), throughputs (`.../s`), and speedup ratios. These
/// vary run to run on the same code and are excluded by `--deterministic`.
fn is_timing_header(header: &str) -> bool {
    header.ends_with(" ms") || header.contains("/s") || header.contains("speedup")
}

/// Headers whose cells count load-dependent robustness activity:
/// brown-outs, hedges, and completion splits move with scheduling and
/// wall-clock (which request hits its deadline, which GET gets hedged),
/// so same-code runs legitimately differ. The correctness columns of the
/// same tables ("diverged", "bad answers") stay strictly compared.
fn is_load_header(header: &str) -> bool {
    header.contains("hedge")
        || header.contains("brown-out")
        || header.contains("cancelled")
        || header == "complete"
}

/// Throughput headers (`req/s`, `rows/s`, ...) additionally get an a→b
/// ratio in the report — "how many times faster" reads better than a
/// percentage once the delta is large.
fn is_throughput_header(header: &str) -> bool {
    header.contains("/s")
}

/// Percentile headers backed by the latency histogram (`p50 ms`,
/// `p99.9 ms`).
fn is_percentile_header(header: &str) -> bool {
    header.starts_with('p')
        && header.ends_with(" ms")
        && header[1..2].chars().all(|c| c.is_ascii_digit())
}

/// The relative grid step of a histogram resolution tag: `hdr32` buckets
/// values on a ~1/32 (3.1%) grid. Unknown tags yield `None`.
fn quantization_pct(histogram: &str) -> Option<f64> {
    histogram
        .strip_prefix("hdr")
        .and_then(|n| n.parse::<f64>().ok())
        .filter(|n| *n > 0.0)
        .map(|n| 100.0 / n)
}

/// Renders the comparison of two parsed files (`a` = before, `b` =
/// after): per-cell numeric deltas, textual changes, row-count changes,
/// and the wall-clock delta. Identical tables yield a single "no
/// differences" line after the header.
pub fn compare(a_name: &str, a: &BenchFile, b_name: &str, b: &BenchFile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "benchcmp {a_name} ({}) -> {b_name} ({})\n",
        a.experiment, b.experiment
    ));
    if a.histogram != b.histogram {
        let name = |h: &Option<String>| h.clone().unwrap_or_else(|| "<none>".to_string());
        out.push_str(&format!(
            "  histogram resolution changed: {} -> {} — percentile columns are \
             quantized on different grids; their deltas below are not comparable\n",
            name(&a.histogram),
            name(&b.histogram)
        ));
    }
    if a.headers != b.headers {
        out.push_str(&format!(
            "  headers differ:\n    before: {:?}\n    after:  {:?}\n",
            a.headers, b.headers
        ));
    }
    if a.rows.len() != b.rows.len() {
        out.push_str(&format!(
            "  row count: {} -> {}\n",
            a.rows.len(),
            b.rows.len()
        ));
    }
    // Percentile columns on the same histogram grid diff as relative
    // deltas: a step within the grid's resolution is quantization, not a
    // regression, and is annotated as such.
    let shared_quantum = match (&a.histogram, &b.histogram) {
        (Some(ha), Some(hb)) if ha == hb => quantization_pct(ha).map(|q| (ha.clone(), q)),
        _ => None,
    };
    let mut changes = 0usize;
    for (r, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
        let label = ra.first().map(String::as_str).unwrap_or("");
        for (c, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            if ca == cb {
                continue;
            }
            changes += 1;
            let header = a
                .headers
                .get(c)
                .map(String::as_str)
                .unwrap_or("<no header>");
            match (numeric(ca), numeric(cb)) {
                (Some(va), Some(vb)) => {
                    let rel = if va.abs() > f64::EPSILON {
                        Some(100.0 * (vb - va) / va)
                    } else {
                        None
                    };
                    let mut annot = rel.map(|p| format!("{p:+.1}%")).unwrap_or_default();
                    if is_throughput_header(header) && va > 0.0 {
                        annot.push_str(&format!(", {:.2}x", vb / va));
                    }
                    if let (Some(p), Some((tag, quantum))) = (rel, &shared_quantum) {
                        if is_percentile_header(header) && p.abs() <= *quantum {
                            annot.push_str(&format!(", within {tag} quantization"));
                        }
                    }
                    let annot = if annot.is_empty() {
                        String::new()
                    } else {
                        format!(" ({annot})")
                    };
                    out.push_str(&format!(
                        "  row {r} [{label}] {header}: {va} -> {vb}{annot}\n"
                    ));
                }
                _ => out.push_str(&format!(
                    "  row {r} [{label}] {header}: \"{ca}\" -> \"{cb}\"\n"
                )),
            }
        }
    }
    if changes == 0 && a.rows.len() == b.rows.len() && a.headers == b.headers {
        out.push_str("  no differences in table cells\n");
    }
    out.push_str(&format!(
        "  wall clock: {:.1} ms -> {:.1} ms\n",
        a.wall_clock_ms, b.wall_clock_ms
    ));
    out
}

/// The cells that must be byte-identical across runs of the same code:
/// everything except wall-clock-derived columns (latency, throughput,
/// speedup). Returns one line per mismatch — page counts, GET counts,
/// divergence flags, row counts, headers.
pub fn deterministic_diffs(a: &BenchFile, b: &BenchFile) -> Vec<String> {
    let mut diffs = Vec::new();
    if a.headers != b.headers {
        diffs.push(format!(
            "headers differ: {:?} -> {:?}",
            a.headers, b.headers
        ));
        return diffs;
    }
    if a.rows.len() != b.rows.len() {
        diffs.push(format!("row count: {} -> {}", a.rows.len(), b.rows.len()));
    }
    for (r, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
        let label = ra.first().map(String::as_str).unwrap_or("");
        for (c, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            let header = a.headers.get(c).map(String::as_str).unwrap_or("");
            if ca != cb && !is_timing_header(header) && !is_load_header(header) {
                diffs.push(format!("row {r} [{label}] {header}: \"{ca}\" -> \"{cb}\""));
            }
        }
    }
    diffs
}

/// The `benchcmp` subcommand: reads two files, prints the comparison.
/// With `--deterministic`, any difference outside the timing columns
/// (latency/throughput/speedup) is an error — the CI regression gate.
pub fn run(args: &[String]) -> Result<String, String> {
    let (deterministic, paths): (bool, Vec<&String>) = {
        let flags: Vec<&String> = args.iter().filter(|a| *a == "--deterministic").collect();
        (
            !flags.is_empty(),
            args.iter().filter(|a| *a != "--deterministic").collect(),
        )
    };
    let [a_path, b_path] = paths[..] else {
        return Err(
            "usage: harness benchcmp [--deterministic] <before.json> <after.json>".to_string(),
        );
    };
    let read = |p: &String| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let a = parse(&read(a_path)?).map_err(|e| format!("{a_path}: {e}"))?;
    let b = parse(&read(b_path)?).map_err(|e| format!("{b_path}: {e}"))?;
    if a.schema_version != b.schema_version {
        return Err(format!(
            "schema_version mismatch: {a_path} is version {}, {b_path} is version {} — \
             the file layouts are not comparable; regenerate the older file with the \
             current harness (`cargo run -p bench --bin harness -- <id> --json`)",
            a.schema_version, b.schema_version
        ));
    }
    let report = compare(a_path, &a, b_path, &b);
    if deterministic {
        let diffs = deterministic_diffs(&a, &b);
        if !diffs.is_empty() {
            return Err(format!(
                "{report}deterministic check FAILED — {} non-timing cell(s) changed:\n  {}",
                diffs.len(),
                diffs.join("\n  ")
            ));
        }
        return Ok(format!(
            "{report}deterministic check ok: every non-timing cell identical\n"
        ));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::experiment_json;
    use crate::table::Table;

    fn sample(pages: u64, wall: f64) -> String {
        let mut t = Table::new("T — \"sample\"", vec!["query", "pages", "note"]);
        t.row(vec!["q1".into(), pages.to_string(), "25.0 / 25".into()]);
        t.row(vec!["q2".into(), "7".into(), "x\ny".into()]);
        experiment_json("x9", &[("scale", "[1]".into())], wall, &t)
    }

    #[test]
    fn parses_the_harness_format_round_trip() {
        let f = parse(&sample(40, 12.3)).expect("parses");
        assert_eq!(f.experiment, "x9");
        assert_eq!(f.title, "T — \"sample\"");
        assert_eq!(f.wall_clock_ms, 12.3);
        assert_eq!(f.headers, vec!["query", "pages", "note"]);
        assert_eq!(f.rows.len(), 2);
        assert_eq!(f.rows[0][1], "40");
        assert_eq!(f.rows[1][2], "x\ny", "escapes survive the round trip");
    }

    #[test]
    fn compare_reports_numeric_deltas_and_no_change() {
        let a = parse(&sample(40, 10.0)).unwrap();
        let b = parse(&sample(50, 11.0)).unwrap();
        let report = compare("a.json", &a, "b.json", &b);
        assert!(report.contains("pages: 40 -> 50 (+25.0%)"), "{report}");
        assert!(report.contains("wall clock: 10.0 ms -> 11.0 ms"));
        let same = compare("a.json", &a, "a.json", &a.clone());
        assert!(same.contains("no differences in table cells"), "{same}");
    }

    #[test]
    fn schema_version_parses_and_legacy_defaults_to_one() {
        let current = parse(&sample(1, 1.0)).unwrap();
        assert_eq!(current.schema_version, crate::json::SCHEMA_VERSION);
        // A file from before the field existed.
        let legacy = sample(1, 1.0).replace(
            &format!("\n  \"schema_version\": {},", crate::json::SCHEMA_VERSION),
            "",
        );
        assert!(!legacy.contains("schema_version"));
        assert_eq!(parse(&legacy).unwrap().schema_version, 1);
    }

    #[test]
    fn run_refuses_cross_version_diffs() {
        let dir = std::env::temp_dir().join("wv_benchcmp_ver_test");
        std::fs::create_dir_all(&dir).unwrap();
        let new = dir.join("new.json");
        let old = dir.join("old.json");
        std::fs::write(&new, sample(4, 1.0)).unwrap();
        let legacy = sample(4, 1.0).replace(
            &format!("\n  \"schema_version\": {},", crate::json::SCHEMA_VERSION),
            "",
        );
        std::fs::write(&old, legacy).unwrap();
        let err = run(&[
            old.to_str().unwrap().to_string(),
            new.to_str().unwrap().to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("schema_version mismatch"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn histogram_resolution_change_is_flagged() {
        let mk = |res: &str| {
            let mut t = Table::new("T", vec!["q", "p99 ms"]);
            t.row(vec!["q1".into(), "4.2".into()]);
            crate::json::experiment_json_with_extras(
                "x5",
                &[],
                1.0,
                &t,
                &[("histogram".to_string(), format!("\"{res}\""))],
            )
        };
        let a = parse(&mk("sorted")).unwrap();
        let b = parse(&mk("hdr32")).unwrap();
        assert_eq!(b.histogram.as_deref(), Some("hdr32"));
        let report = compare("a", &a, "b", &b);
        assert!(
            report.contains("histogram resolution changed: sorted -> hdr32"),
            "{report}"
        );
        let same = compare("b", &b, "b", &b.clone());
        assert!(!same.contains("histogram resolution"), "{same}");
    }

    #[test]
    fn same_resolution_percentiles_diff_with_quantization_note() {
        let mk = |p99: &str| {
            let mut t = Table::new("T", vec!["config", "p99 ms", "server GETs"]);
            t.row(vec!["closed".into(), p99.into(), "120".into()]);
            crate::json::experiment_json_with_extras(
                "x5",
                &[],
                1.0,
                &t,
                &[("histogram".to_string(), "\"hdr32\"".to_string())],
            )
        };
        let a = parse(&mk("4.00")).unwrap();
        // +2.5% — within hdr32's ~3.1% grid step.
        let b = parse(&mk("4.10")).unwrap();
        let report = compare("a", &a, "b", &b);
        assert!(
            report.contains("p99 ms: 4 -> 4.1 (+2.5%, within hdr32 quantization)"),
            "{report}"
        );
        // +25% — a real move, no quantization note.
        let c = parse(&mk("5.00")).unwrap();
        let report = compare("a", &a, "c", &c);
        assert!(report.contains("p99 ms: 4 -> 5 (+25.0%)"), "{report}");
        assert!(!report.contains("quantization"), "{report}");
    }

    #[test]
    fn throughput_headers_report_the_ratio() {
        let mk = |rps: &str| {
            let mut t = Table::new("T", vec!["config", "req/s"]);
            t.row(vec!["closed".into(), rps.into()]);
            experiment_json("x5", &[], 1.0, &t)
        };
        let a = parse(&mk("100")).unwrap();
        let b = parse(&mk("180")).unwrap();
        let report = compare("a", &a, "b", &b);
        assert!(
            report.contains("req/s: 100 -> 180 (+80.0%, 1.80x)"),
            "{report}"
        );
    }

    #[test]
    fn deterministic_gate_ignores_timing_but_fails_on_counters() {
        let mk = |wall: &str, rps: &str, gets: &str| {
            let mut t = Table::new("T", vec!["config", "wall ms", "req/s", "server GETs"]);
            t.row(vec!["closed".into(), wall.into(), rps.into(), gets.into()]);
            experiment_json("x5", &[], 1.0, &t)
        };
        let dir = std::env::temp_dir().join("wv_benchcmp_det_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.json");
        std::fs::write(&base, mk("100.0", "148", "120")).unwrap();
        let timing_only = dir.join("timing.json");
        std::fs::write(&timing_only, mk("90.0", "190", "120")).unwrap();
        let arg = |p: &std::path::Path| p.to_str().unwrap().to_string();
        let ok = run(&["--deterministic".to_string(), arg(&base), arg(&timing_only)])
            .expect("timing-only changes pass");
        assert!(ok.contains("deterministic check ok"), "{ok}");
        let regressed = dir.join("gets.json");
        std::fs::write(&regressed, mk("100.0", "148", "240")).unwrap();
        let err = run(&["--deterministic".to_string(), arg(&base), arg(&regressed)]).unwrap_err();
        assert!(err.contains("deterministic check FAILED"), "{err}");
        assert!(err.contains("server GETs"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deterministic_gate_ignores_load_counters_but_fails_on_bad_answers() {
        let mk = |complete: &str, brown: &str, hedges: &str, bad: &str| {
            let mut t = Table::new(
                "T",
                vec!["config", "complete", "brown-outs", "hedges", "bad answers"],
            );
            t.row(vec![
                "deadline + hedge".into(),
                complete.into(),
                brown.into(),
                hedges.into(),
                bad.into(),
            ]);
            experiment_json("x8", &[], 1.0, &t)
        };
        let a = parse(&mk("19", "29", "184", "0")).unwrap();
        // Which requests brown out and which GETs hedge moves with
        // scheduling — same-code runs differ here and must pass.
        let b = parse(&mk("24", "24", "150", "0")).unwrap();
        assert!(deterministic_diffs(&a, &b).is_empty());
        // A bad answer is a correctness regression, never load noise.
        let c = parse(&mk("19", "29", "184", "1")).unwrap();
        let diffs = deterministic_diffs(&a, &c);
        assert_eq!(diffs.len(), 1, "{diffs:?}");
        assert!(diffs[0].contains("bad answers"), "{diffs:?}");
    }

    #[test]
    fn run_rejects_bad_usage() {
        assert!(run(&[]).is_err());
        assert!(run(&["only-one.json".to_string()]).is_err());
        let err = run(&["/no/such/a.json".to_string(), "/no/such/b.json".to_string()]).unwrap_err();
        assert!(err.contains("/no/such/a.json"));
    }
}
