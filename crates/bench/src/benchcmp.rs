//! `harness benchcmp A.json B.json` — diff two `BENCH_<ID>.json` files.
//!
//! Regression tooling wants "did the numbers move?", not a JSON diff: the
//! comparator parses the harness's own flat format (see [`crate::json`]),
//! matches rows by position, and reports every numeric cell whose value
//! changed, plus the wall-clock delta. Cells that are not plain numbers
//! (labels, `25.0 / 25` composites, `93%`) are compared textually. The
//! parser is hand-rolled for exactly the subset `experiment_json` emits —
//! the harness has no JSON dependency and does not need one.

/// One parsed `BENCH_<ID>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchFile {
    /// The `experiment` field (e.g. `"x5"`).
    pub experiment: String,
    /// The file's layout version ([`crate::json::SCHEMA_VERSION`]);
    /// files written before the field existed parse as version 1.
    pub schema_version: u64,
    /// The table title.
    pub title: String,
    /// Wall-clock of the run, milliseconds.
    pub wall_clock_ms: f64,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (cells as written).
    pub rows: Vec<Vec<String>>,
    /// Latency-histogram resolution tag (e.g. `"hdr32"`), when the
    /// experiment reports percentile columns backed by a histogram.
    pub histogram: Option<String>,
}

/// Scans a JSON string literal starting at the opening quote; returns the
/// unescaped contents and the index just past the closing quote.
fn scan_string(s: &[u8], mut i: usize) -> Result<(String, usize), String> {
    if s.get(i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    i += 1;
    let mut out = String::new();
    while let Some(&c) = s.get(i) {
        match c {
            b'"' => return Ok((out, i + 1)),
            b'\\' => {
                let esc = s.get(i + 1).ok_or("dangling escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = s.get(i + 2..i + 6).ok_or("short \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                        i += 4;
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
                i += 2;
            }
            _ => {
                // multi-byte UTF-8: copy the whole scalar
                let rest = std::str::from_utf8(&s[i..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("truncated string")?;
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err("unterminated string".to_string())
}

fn skip_ws(s: &[u8], mut i: usize) -> usize {
    while matches!(s.get(i), Some(b' ' | b'\n' | b'\r' | b'\t')) {
        i += 1;
    }
    i
}

/// Scans `["a", "b", ...]` starting at the opening bracket.
fn scan_string_array(s: &[u8], mut i: usize) -> Result<(Vec<String>, usize), String> {
    if s.get(i) != Some(&b'[') {
        return Err(format!("expected array at byte {i}"));
    }
    i = skip_ws(s, i + 1);
    let mut out = Vec::new();
    if s.get(i) == Some(&b']') {
        return Ok((out, i + 1));
    }
    loop {
        let (item, next) = scan_string(s, i)?;
        out.push(item);
        i = skip_ws(s, next);
        match s.get(i) {
            Some(b',') => i = skip_ws(s, i + 1),
            Some(b']') => return Ok((out, i + 1)),
            _ => return Err(format!("expected , or ] at byte {i}")),
        }
    }
}

/// Finds the value position of a top-level `"key":` occurrence.
fn value_of(text: &str, key: &str) -> Result<usize, String> {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("no \"{key}\" field"))?;
    Ok(skip_ws(text.as_bytes(), at + needle.len()))
}

/// Parses one `BENCH_<ID>.json` produced by [`crate::json`].
pub fn parse(text: &str) -> Result<BenchFile, String> {
    let bytes = text.as_bytes();
    let (experiment, _) = scan_string(bytes, value_of(text, "experiment")?)?;
    // Optional: absent in files written before the field existed.
    let schema_version = match value_of(text, "schema_version") {
        Ok(at) => {
            let end = text[at..]
                .find([',', '\n', '}'])
                .map(|d| at + d)
                .ok_or("unterminated schema_version")?;
            text[at..end]
                .trim()
                .parse()
                .map_err(|e| format!("schema_version: {e}"))?
        }
        Err(_) => 1,
    };
    let histogram = match value_of(text, "histogram") {
        Ok(at) => Some(scan_string(bytes, at)?.0),
        Err(_) => None,
    };
    let (title, _) = scan_string(bytes, value_of(text, "title")?)?;
    let wall_start = value_of(text, "wall_clock_ms")?;
    let wall_end = text[wall_start..]
        .find([',', '\n', '}'])
        .map(|d| wall_start + d)
        .ok_or("unterminated wall_clock_ms")?;
    let wall_clock_ms: f64 = text[wall_start..wall_end]
        .trim()
        .parse()
        .map_err(|e| format!("wall_clock_ms: {e}"))?;
    let (headers, _) = scan_string_array(bytes, value_of(text, "headers")?)?;
    let mut i = value_of(text, "rows")?;
    if bytes.get(i) != Some(&b'[') {
        return Err("rows is not an array".to_string());
    }
    i = skip_ws(bytes, i + 1);
    let mut rows = Vec::new();
    if bytes.get(i) != Some(&b']') {
        loop {
            let (row, next) = scan_string_array(bytes, i)?;
            rows.push(row);
            i = skip_ws(bytes, next);
            match bytes.get(i) {
                Some(b',') => i = skip_ws(bytes, i + 1),
                Some(b']') => break,
                _ => return Err(format!("expected , or ] at byte {i}")),
            }
        }
    }
    Ok(BenchFile {
        experiment,
        schema_version,
        title,
        wall_clock_ms,
        headers,
        rows,
        histogram,
    })
}

fn numeric(cell: &str) -> Option<f64> {
    cell.trim().parse::<f64>().ok()
}

/// Renders the comparison of two parsed files (`a` = before, `b` =
/// after): per-cell numeric deltas, textual changes, row-count changes,
/// and the wall-clock delta. Identical tables yield a single "no
/// differences" line after the header.
pub fn compare(a_name: &str, a: &BenchFile, b_name: &str, b: &BenchFile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "benchcmp {a_name} ({}) -> {b_name} ({})\n",
        a.experiment, b.experiment
    ));
    if a.histogram != b.histogram {
        let name = |h: &Option<String>| h.clone().unwrap_or_else(|| "<none>".to_string());
        out.push_str(&format!(
            "  histogram resolution changed: {} -> {} — percentile columns are \
             quantized on different grids; their deltas below are not comparable\n",
            name(&a.histogram),
            name(&b.histogram)
        ));
    }
    if a.headers != b.headers {
        out.push_str(&format!(
            "  headers differ:\n    before: {:?}\n    after:  {:?}\n",
            a.headers, b.headers
        ));
    }
    if a.rows.len() != b.rows.len() {
        out.push_str(&format!(
            "  row count: {} -> {}\n",
            a.rows.len(),
            b.rows.len()
        ));
    }
    let mut changes = 0usize;
    for (r, (ra, rb)) in a.rows.iter().zip(&b.rows).enumerate() {
        let label = ra.first().map(String::as_str).unwrap_or("");
        for (c, (ca, cb)) in ra.iter().zip(rb).enumerate() {
            if ca == cb {
                continue;
            }
            changes += 1;
            let header = a
                .headers
                .get(c)
                .map(String::as_str)
                .unwrap_or("<no header>");
            match (numeric(ca), numeric(cb)) {
                (Some(va), Some(vb)) => {
                    let pct = if va.abs() > f64::EPSILON {
                        format!(" ({:+.1}%)", 100.0 * (vb - va) / va)
                    } else {
                        String::new()
                    };
                    out.push_str(&format!(
                        "  row {r} [{label}] {header}: {va} -> {vb}{pct}\n"
                    ));
                }
                _ => out.push_str(&format!(
                    "  row {r} [{label}] {header}: \"{ca}\" -> \"{cb}\"\n"
                )),
            }
        }
    }
    if changes == 0 && a.rows.len() == b.rows.len() && a.headers == b.headers {
        out.push_str("  no differences in table cells\n");
    }
    out.push_str(&format!(
        "  wall clock: {:.1} ms -> {:.1} ms\n",
        a.wall_clock_ms, b.wall_clock_ms
    ));
    out
}

/// The `benchcmp` subcommand: reads two files, prints the comparison.
pub fn run(args: &[String]) -> Result<String, String> {
    let [a_path, b_path] = args else {
        return Err("usage: harness benchcmp <before.json> <after.json>".to_string());
    };
    let read = |p: &String| std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"));
    let a = parse(&read(a_path)?).map_err(|e| format!("{a_path}: {e}"))?;
    let b = parse(&read(b_path)?).map_err(|e| format!("{b_path}: {e}"))?;
    if a.schema_version != b.schema_version {
        return Err(format!(
            "schema_version mismatch: {a_path} is version {}, {b_path} is version {} — \
             the file layouts are not comparable; regenerate the older file with the \
             current harness (`cargo run -p bench --bin harness -- <id> --json`)",
            a.schema_version, b.schema_version
        ));
    }
    Ok(compare(a_path, &a, b_path, &b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::experiment_json;
    use crate::table::Table;

    fn sample(pages: u64, wall: f64) -> String {
        let mut t = Table::new("T — \"sample\"", vec!["query", "pages", "note"]);
        t.row(vec!["q1".into(), pages.to_string(), "25.0 / 25".into()]);
        t.row(vec!["q2".into(), "7".into(), "x\ny".into()]);
        experiment_json("x9", &[("scale", "[1]".into())], wall, &t)
    }

    #[test]
    fn parses_the_harness_format_round_trip() {
        let f = parse(&sample(40, 12.3)).expect("parses");
        assert_eq!(f.experiment, "x9");
        assert_eq!(f.title, "T — \"sample\"");
        assert_eq!(f.wall_clock_ms, 12.3);
        assert_eq!(f.headers, vec!["query", "pages", "note"]);
        assert_eq!(f.rows.len(), 2);
        assert_eq!(f.rows[0][1], "40");
        assert_eq!(f.rows[1][2], "x\ny", "escapes survive the round trip");
    }

    #[test]
    fn compare_reports_numeric_deltas_and_no_change() {
        let a = parse(&sample(40, 10.0)).unwrap();
        let b = parse(&sample(50, 11.0)).unwrap();
        let report = compare("a.json", &a, "b.json", &b);
        assert!(report.contains("pages: 40 -> 50 (+25.0%)"), "{report}");
        assert!(report.contains("wall clock: 10.0 ms -> 11.0 ms"));
        let same = compare("a.json", &a, "a.json", &a.clone());
        assert!(same.contains("no differences in table cells"), "{same}");
    }

    #[test]
    fn schema_version_parses_and_legacy_defaults_to_one() {
        let current = parse(&sample(1, 1.0)).unwrap();
        assert_eq!(current.schema_version, crate::json::SCHEMA_VERSION);
        // A file from before the field existed.
        let legacy = sample(1, 1.0).replace(
            &format!("\n  \"schema_version\": {},", crate::json::SCHEMA_VERSION),
            "",
        );
        assert!(!legacy.contains("schema_version"));
        assert_eq!(parse(&legacy).unwrap().schema_version, 1);
    }

    #[test]
    fn run_refuses_cross_version_diffs() {
        let dir = std::env::temp_dir().join("wv_benchcmp_ver_test");
        std::fs::create_dir_all(&dir).unwrap();
        let new = dir.join("new.json");
        let old = dir.join("old.json");
        std::fs::write(&new, sample(4, 1.0)).unwrap();
        let legacy = sample(4, 1.0).replace(
            &format!("\n  \"schema_version\": {},", crate::json::SCHEMA_VERSION),
            "",
        );
        std::fs::write(&old, legacy).unwrap();
        let err = run(&[
            old.to_str().unwrap().to_string(),
            new.to_str().unwrap().to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("schema_version mismatch"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn histogram_resolution_change_is_flagged() {
        let mk = |res: &str| {
            let mut t = Table::new("T", vec!["q", "p99 ms"]);
            t.row(vec!["q1".into(), "4.2".into()]);
            crate::json::experiment_json_with_extras(
                "x5",
                &[],
                1.0,
                &t,
                &[("histogram".to_string(), format!("\"{res}\""))],
            )
        };
        let a = parse(&mk("sorted")).unwrap();
        let b = parse(&mk("hdr32")).unwrap();
        assert_eq!(b.histogram.as_deref(), Some("hdr32"));
        let report = compare("a", &a, "b", &b);
        assert!(
            report.contains("histogram resolution changed: sorted -> hdr32"),
            "{report}"
        );
        let same = compare("b", &b, "b", &b.clone());
        assert!(!same.contains("histogram resolution"), "{same}");
    }

    #[test]
    fn run_rejects_bad_usage() {
        assert!(run(&[]).is_err());
        assert!(run(&["only-one.json".to_string()]).is_err());
        let err = run(&["/no/such/a.json".to_string(), "/no/such/b.json".to_string()]).unwrap_err();
        assert!(err.contains("/no/such/a.json"));
    }
}
