//! SWEEP — rows/sec of the local operators, row-at-a-time vs columnar.
//!
//! The paper's cost model prices local operators at zero, so the serving
//! stack's throughput ceiling is whatever the evaluator's σ/π/join/unnest
//! kernels can push per second. This sweep times both executions of each
//! operator over identical E1–E8-scale relations — the boxed row path
//! ([`adm::Relation`], `Vec<Vec<Value>>` with per-tuple clones) against the
//! interned columnar kernels ([`adm::ColumnRel`], symbol-id vectors with
//! index-vector selection and token-encoded hashing — see DESIGN §16) —
//! and reports rows/sec plus the speedup. Both paths are verified
//! byte-identical by `tests/columnar_props.rs`; this table is only about
//! throughput.
//!
//! `harness sweep --sweep-check [min]` exits non-zero when any gated
//! operator (σ, π-dedup, local pointer-join — the acceptance set) comes in
//! under `min` (default 2.0, a conservative CI floor well below the
//! measured speedups recorded in EXPERIMENTS.md).

use crate::table::Table;
use adm::{ColumnRel, Relation, Tuple, Value};
use std::time::Instant;

/// The sweep's table plus the gate input.
pub struct SweepSmoke {
    /// The rows/sec table (one row per operator × scale).
    pub table: Table,
    /// Raw-JSON extras for `BENCH_SWEEP.json` (per-operator speedups).
    pub extras: Vec<(String, String)>,
    /// Worst speedup over the gated operators (σ, π-dedup, join).
    pub min_gated_speedup: f64,
}

/// A flat relation shaped like the wrapped E-scale page lists: a link
/// column (every professor page URL is distinct), a text key with
/// realistic duplication, and a low-cardinality rank used by selections.
fn pages(n: usize, prefix: &str) -> Relation {
    const RANKS: [&str; 4] = ["Full", "Associate", "Assistant", "Emeritus"];
    Relation::from_rows(
        vec![
            format!("{prefix}.Url"),
            format!("{prefix}.K"),
            format!("{prefix}.Rank"),
        ],
        (0..n)
            .map(|i| {
                vec![
                    Value::link(format!("/{prefix}/{i}")),
                    Value::text(format!("k{}", i % (n / 20).max(1))),
                    Value::text(RANKS[i % RANKS.len()]),
                ]
            })
            .collect(),
    )
    .expect("sweep fixture")
}

/// A nested relation shaped like wrapped course lists: `fanout` inner
/// tuples per parent row.
fn nested(n: usize, fanout: usize) -> Relation {
    Relation::from_rows(
        vec!["P.Url".to_string(), "P.Courses".to_string()],
        (0..n)
            .map(|i| {
                vec![
                    Value::link(format!("/p/{i}")),
                    Value::List(
                        (0..fanout)
                            .map(|j| Tuple::new().with("CName", format!("c{i}-{j}")))
                            .collect(),
                    ),
                ]
            })
            .collect(),
    )
    .expect("sweep fixture")
}

/// Seconds per repetition of `f` (one untimed warm-up, then `reps` timed).
fn time_per_rep<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let t0 = Instant::now();
    for _ in 0..reps.max(1) {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / reps.max(1) as f64
}

fn fmt_rate(rows_per_sec: f64) -> String {
    format!("{:.0}", rows_per_sec)
}

/// Runs the sweep at the given scales (rows per input relation) with
/// `reps` timed repetitions per operator.
pub fn sweep_rows_per_sec(scales: &[usize], reps: usize) -> SweepSmoke {
    let mut t = Table::new(
        "SWEEP — local operators: row-at-a-time vs columnar, rows/sec",
        vec![
            "operator",
            "rows",
            "row rows/s",
            "columnar rows/s",
            "speedup",
        ],
    );
    let mut speedups: Vec<(String, f64, bool)> = Vec::new();
    for &n in scales {
        let rel = pages(n, "P");
        let col = ColumnRel::from_relation(&rel);
        let right = pages(n, "R");
        let right_col = ColumnRel::from_relation(&right);
        let nest = nested(n / 10 + 1, 10);
        let nest_col = ColumnRel::from_relation(&nest);
        let nest_rows = nest.len() * 10;
        let full = Value::text("Full");
        let inner = vec!["CName".to_string()];

        // (operator, processed input rows, gated?, row secs, columnar secs)
        let measurements: Vec<(&str, usize, bool, f64, f64)> = vec![
            (
                "σ rank=Full",
                n,
                true,
                time_per_rep(reps, || rel.select_eq("P.Rank", &full).unwrap().len()),
                time_per_rep(reps, || col.take(&col.select_eq_const(2, &full)).len()),
            ),
            (
                "π dedup key",
                n,
                true,
                time_per_rep(reps, || rel.project(&["P.K"]).unwrap().len()),
                time_per_rep(reps, || col.project_cols(&[1]).len()),
            ),
            (
                "⋈ pointer join",
                n,
                true,
                time_per_rep(reps, || rel.join(&right, &[("P.K", "R.K")]).unwrap().len()),
                time_per_rep(reps, || col.join_on(&right_col, &[(1, 1)]).len()),
            ),
            (
                "μ unnest",
                nest_rows,
                false,
                time_per_rep(reps, || nest.unnest("P.Courses", &inner).unwrap().len()),
                time_per_rep(reps, || nest_col.unnest("P.Courses", &inner).unwrap().len()),
            ),
        ];
        for (op, rows, gated, row_s, col_s) in measurements {
            let row_rate = rows as f64 / row_s.max(1e-12);
            let col_rate = rows as f64 / col_s.max(1e-12);
            let speedup = row_s / col_s.max(1e-12);
            t.row(vec![
                op.to_string(),
                rows.to_string(),
                fmt_rate(row_rate),
                fmt_rate(col_rate),
                format!("{speedup:.1}"),
            ]);
            speedups.push((format!("{op} @ {rows}"), speedup, gated));
        }
    }
    let min_gated_speedup = speedups
        .iter()
        .filter(|(_, _, gated)| *gated)
        .map(|&(_, s, _)| s)
        .fold(f64::INFINITY, f64::min);
    let per_op: Vec<String> = speedups
        .iter()
        .map(|(label, s, gated)| {
            format!(
                "{{\"op\": \"{}\", \"speedup\": {:.2}, \"gated\": {}}}",
                label.replace('"', ""),
                s,
                gated
            )
        })
        .collect();
    let extras = vec![
        ("speedups".to_string(), format!("[{}]", per_op.join(", "))),
        (
            "min_gated_speedup".to_string(),
            format!("{min_gated_speedup:.2}"),
        ),
    ];
    SweepSmoke {
        table: t,
        extras,
        min_gated_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_every_operator_and_a_finite_gate() {
        let s = sweep_rows_per_sec(&[400], 2);
        assert_eq!(s.table.rows.len(), 4);
        let ops: Vec<&str> = s.table.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(
            ops,
            ["σ rank=Full", "π dedup key", "⋈ pointer join", "μ unnest"]
        );
        assert!(s.min_gated_speedup.is_finite() && s.min_gated_speedup > 0.0);
        assert!(s.extras.iter().any(|(k, _)| k == "speedups"));
        assert!(s.extras.iter().any(|(k, _)| k == "min_gated_speedup"));
        // every rate cell is a plain number benchcmp can diff
        for row in &s.table.rows {
            for cell in &row[1..] {
                assert!(cell.parse::<f64>().is_ok(), "{cell}");
            }
        }
    }

    #[test]
    fn fixtures_round_trip_between_paths() {
        // The sweep times both paths on the same inputs; sanity-check the
        // outputs actually agree at a small scale (the full pin lives in
        // tests/columnar_props.rs).
        let rel = pages(64, "P");
        let col = ColumnRel::from_relation(&rel);
        let full = Value::text("Full");
        assert_eq!(
            rel.select_eq("P.Rank", &full).unwrap().sorted().to_table(),
            col.take(&col.select_eq_const(2, &full))
                .to_relation()
                .sorted()
                .to_table()
        );
        assert_eq!(
            rel.project(&["P.K"]).unwrap().sorted().to_table(),
            col.project_cols(&[1]).to_relation().sorted().to_table()
        );
        let right = pages(64, "R");
        let right_col = ColumnRel::from_relation(&right);
        assert_eq!(
            rel.join(&right, &[("P.K", "R.K")])
                .unwrap()
                .sorted()
                .to_table(),
            col.join_on(&right_col, &[(1, 1)])
                .to_relation()
                .sorted()
                .to_table()
        );
        let nest = nested(8, 3);
        let nest_col = ColumnRel::from_relation(&nest);
        let inner = vec!["CName".to_string()];
        assert_eq!(
            nest.unnest("P.Courses", &inner)
                .unwrap()
                .sorted()
                .to_table(),
            nest_col
                .unnest("P.Courses", &inner)
                .unwrap()
                .to_relation()
                .sorted()
                .to_table()
        );
    }
}
