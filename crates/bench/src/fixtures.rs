//! Shared plans and query workloads for the experiments.
//!
//! The paper's named plans (Figures 2–4) are built here explicitly with the
//! NALG builder so experiments can execute them regardless of what the
//! optimizer would pick.

use nalg::{NalgExpr, Pred};
use wvcore::ConjunctiveQuery;

/// Figure 2 — "Name and Description of all Courses held by members of the
/// Computer Science Department": the dept → professors → courses plan.
pub fn figure_2_plan() -> NalgExpr {
    NalgExpr::entry("DeptListPage")
        .unnest("DeptList")
        .select(Pred::eq("DName", "Computer Science"))
        .follow("ToDept", "DeptPage")
        .unnest("DeptPage.ProfList")
        .follow("DeptPage.ProfList.ToProf", "ProfPage")
        .unnest("ProfPage.CourseList")
        .follow("ProfPage.CourseList.ToCourse", "CoursePage")
        .project(vec!["CoursePage.CName", "CoursePage.Description"])
}

/// Figure 3 (1d) — Example 7.1, the pointer-join plan: push both
/// selections down, intersect the two `ToCourse` pointer sets, navigate
/// only the intersection.
pub fn example_71_plan_1d() -> NalgExpr {
    let prof_side = NalgExpr::entry("ProfListPage")
        .unnest("ProfList")
        .follow("ToProf", "ProfPage")
        .select(Pred::eq("ProfPage.Rank", "Full"))
        .unnest("ProfPage.CourseList");
    let session_side = NalgExpr::entry("SessionListPage")
        .unnest("SesList")
        .select(Pred::eq("SessionListPage.SesList.Session", "Fall"))
        .follow("ToSes", "SessionPage")
        .unnest("SessionPage.CourseList");
    session_side
        .join(
            prof_side,
            vec![(
                "SessionPage.CourseList.ToCourse",
                "ProfPage.CourseList.ToCourse",
            )],
        )
        .follow("SessionPage.CourseList.ToCourse", "CoursePage")
        .project(vec!["CoursePage.CName", "CoursePage.Description"])
}

/// Figure 3 (2d) — Example 7.1, the pointer-chase plan: navigate every
/// course taught by a full professor, then select the Fall ones.
pub fn example_71_plan_2d() -> NalgExpr {
    NalgExpr::entry("ProfListPage")
        .unnest("ProfList")
        .follow("ToProf", "ProfPage")
        .select(Pred::eq("ProfPage.Rank", "Full"))
        .unnest("ProfPage.CourseList")
        .follow("ProfPage.CourseList.ToCourse", "CoursePage")
        .select(Pred::eq("CoursePage.Session", "Fall"))
        .project(vec!["CoursePage.CName", "CoursePage.Description"])
}

/// Figure 4 (1) — Example 7.2, the pointer-join plan: download every
/// session and course page to collect instructor pointers of graduate
/// courses, intersect with the department's professor pointers, navigate.
pub fn example_72_plan_1(dept: &str) -> NalgExpr {
    NalgExpr::entry("SessionListPage")
        .unnest("SesList")
        .follow("ToSes", "SessionPage")
        .unnest("SessionPage.CourseList")
        .follow("SessionPage.CourseList.ToCourse", "CoursePage")
        .select(Pred::eq("CoursePage.Type", "Graduate"))
        .join(
            NalgExpr::entry("DeptListPage")
                .unnest("DeptList")
                .select(Pred::eq("DeptListPage.DeptList.DName", dept))
                .follow("ToDept", "DeptPage")
                .unnest("DeptPage.ProfList"),
            vec![("CoursePage.ToProf", "DeptPage.ProfList.ToProf")],
        )
        .follow("CoursePage.ToProf", "ProfPage")
        .project(vec!["ProfPage.PName", "ProfPage.Email"])
}

/// Figure 4 (2) — Example 7.2, the pointer-chase plan: enter through the
/// department page and follow links; only the department's professors and
/// their courses are downloaded.
pub fn example_72_plan_2(dept: &str) -> NalgExpr {
    NalgExpr::entry("DeptListPage")
        .unnest("DeptList")
        .select(Pred::eq("DeptListPage.DeptList.DName", dept))
        .follow("ToDept", "DeptPage")
        .unnest("DeptPage.ProfList")
        .follow("DeptPage.ProfList.ToProf", "ProfPage")
        .unnest("ProfPage.CourseList")
        .follow("ProfPage.CourseList.ToCourse", "CoursePage")
        .select(Pred::eq("CoursePage.Type", "Graduate"))
        .project(vec!["ProfPage.PName", "ProfPage.Email"])
}

/// The four intro strategies for "authors in each of the last three VLDB
/// editions" (Section 1), parameterized by the edition years.
pub fn intro_strategies(years: &[u32]) -> Vec<NalgExpr> {
    let edition_branches = |entry: NalgExpr| {
        let mut joined: Option<NalgExpr> = None;
        for (i, y) in years.iter().enumerate() {
            let branch = entry
                .clone()
                .select(Pred::eq("ConfName", "VLDB"))
                .follow_as("ToConf", "ConfPage", format!("Conf{i}"))
                .unnest(format!("Conf{i}.EditionList"))
                .select(Pred::eq(format!("Conf{i}.EditionList.Year"), y.to_string()))
                .follow_as(
                    format!("Conf{i}.EditionList.ToEdition"),
                    "EditionPage",
                    format!("Ed{i}"),
                )
                .unnest(format!("Ed{i}.PaperList"))
                .unnest(format!("Ed{i}.PaperList.Authors"))
                .project(vec![format!("Ed{i}.PaperList.Authors.AName")]);
            joined = Some(match joined {
                None => branch,
                Some(acc) => acc.join(
                    branch,
                    vec![(
                        format!("Ed{}.PaperList.Authors.AName", i - 1),
                        format!("Ed{i}.PaperList.Authors.AName"),
                    )],
                ),
            });
        }
        joined
            .expect("at least one year")
            .project(vec!["Ed0.PaperList.Authors.AName".to_string()])
    };
    // NB: entry aliases differ per strategy branch through follow_as, so
    // identical page-schemes never collide.
    let author_first = {
        let mut joined: Option<NalgExpr> = None;
        for (i, y) in years.iter().enumerate() {
            let branch = NalgExpr::entry_as("BibHomePage", format!("H{i}"))
                .follow_as(
                    format!("H{i}.ToAuthorList"),
                    "AuthorListPage",
                    format!("AL{i}"),
                )
                .unnest(format!("AL{i}.AuthorList"))
                .follow_as(
                    format!("AL{i}.AuthorList.ToAuthor"),
                    "AuthorPage",
                    format!("A{i}"),
                )
                .unnest(format!("A{i}.PubList"))
                .select(Pred::And(vec![
                    Pred::eq(format!("A{i}.PubList.ConfName"), "VLDB"),
                    Pred::eq(format!("A{i}.PubList.Year"), y.to_string()),
                ]))
                .project(vec![format!("A{i}.AName")]);
            joined = Some(match joined {
                None => branch,
                Some(acc) => acc.join(
                    branch,
                    vec![(format!("A{}.AName", i - 1), format!("A{i}.AName"))],
                ),
            });
        }
        joined
            .expect("at least one year")
            .project(vec!["A0.AName".to_string()])
    };
    vec![
        edition_branches(
            NalgExpr::entry("BibHomePage")
                .follow("ToConfList", "ConfListPage")
                .unnest("ConfList"),
        ),
        edition_branches(
            NalgExpr::entry("BibHomePage")
                .follow("ToDBConfList", "DBConfListPage")
                .unnest("ConfList"),
        ),
        edition_branches(NalgExpr::entry("BibHomePage").unnest("Featured")),
        author_first,
    ]
}

/// The university query workload (used by E4/E6).
pub fn university_workload() -> Vec<(&'static str, ConjunctiveQuery)> {
    vec![
        (
            "full professors",
            ConjunctiveQuery::new("full professors")
                .atom("Professor")
                .select((0, "Rank"), "Full")
                .project((0, "PName")),
        ),
        ("CS professors (email)", crate::query_cs_profs()),
        ("example 7.1", crate::query_71()),
        ("example 7.2", crate::query_72()),
        (
            "fall graduate courses",
            ConjunctiveQuery::new("fall graduate courses")
                .atom("Course")
                .select((0, "Session"), "Fall")
                .select((0, "Type"), "Graduate")
                .project((0, "CName"))
                .project((0, "Description")),
        ),
        (
            "who teaches what",
            ConjunctiveQuery::new("who teaches what")
                .atom("CourseInstructor")
                .project((0, "PName"))
                .project((0, "CName")),
        ),
        (
            "departments",
            ConjunctiveQuery::new("departments")
                .atom("Dept")
                .project((0, "DName"))
                .project((0, "Address")),
        ),
    ]
}

/// The bibliography query workload (used by E4).
pub fn bibliography_workload() -> Vec<(&'static str, ConjunctiveQuery)> {
    vec![
        (
            "editors of VLDB 1996",
            ConjunctiveQuery::new("editors of VLDB 1996")
                .atom("ConfEdition")
                .select((0, "ConfName"), "VLDB")
                .select((0, "Year"), "1996")
                .project((0, "Editors")),
        ),
        (
            "all conferences",
            ConjunctiveQuery::new("all conferences")
                .atom("Conference")
                .project((0, "ConfName")),
        ),
        (
            "SIGMOD 1997 papers",
            ConjunctiveQuery::new("SIGMOD 1997 papers")
                .atom("Paper")
                .select((0, "ConfName"), "SIGMOD")
                .select((0, "Year"), "1997")
                .project((0, "Title")),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::sitegen::university::university_scheme;

    #[test]
    fn paper_plans_are_computable_and_valid() {
        let ws = university_scheme();
        for plan in [
            figure_2_plan(),
            example_71_plan_1d(),
            example_71_plan_2d(),
            example_72_plan_1("Computer Science"),
            example_72_plan_2("Computer Science"),
        ] {
            assert!(plan.is_computable());
            assert!(plan.output_columns(&ws).is_ok(), "{plan}");
        }
    }

    #[test]
    fn strategies_are_computable() {
        let ws = websim::sitegen::bibliography::bibliography_scheme();
        for s in intro_strategies(&[1997, 1996, 1995]) {
            assert!(s.is_computable());
            assert!(s.output_columns(&ws).is_ok(), "{s}");
        }
    }

    #[test]
    fn workloads_validate_against_catalogs() {
        let ucat = wvcore::views::university_catalog();
        for (_, q) in university_workload() {
            q.validate(&ucat).unwrap();
        }
        let bcat = wvcore::views::bibliography_catalog();
        for (_, q) in bibliography_workload() {
            q.validate(&bcat).unwrap();
        }
    }
}
