//! `harness trace <file.jsonl>` — render exported request traces.
//!
//! Reads the JSON-lines trace exports the observed X5 run writes
//! (`TRACE_X5.jsonl`, or a flight-recorder dump `FLIGHT_X5.jsonl`) and
//! answers the two questions an operator actually asks of a slow
//! request: **where did the time go** (the per-phase latency breakdown:
//! queue / plan / fetch / eval / view) and **what did it do** (the
//! causal critical path from the `serve.request` root down through the
//! heaviest operator chain, weighted by page downloads).
//!
//! The parser is hand-rolled for exactly the subset
//! [`obs::RequestTrace::to_json`] emits — like `benchcmp`, the harness
//! has no JSON dependency and does not need one. Lines that are not
//! request objects (flight-dump headers) are skipped, so both export
//! shapes feed the same command.

use crate::table::Table;

/// One parsed event of a request's causal stream.
#[derive(Debug, Clone)]
pub struct TraceNode {
    pub id: u64,
    pub parent: Option<u64>,
    pub kind: String,
    pub name: String,
    /// The `downloads` field when present (operator spans carry it).
    pub downloads: u64,
    /// The `rows_out` field when present.
    pub rows_out: Option<u64>,
}

/// One parsed request line of a trace export.
#[derive(Debug, Clone)]
pub struct TracedRequest {
    pub request_id: u64,
    pub query: String,
    pub latency_us: u64,
    pub shed: bool,
    /// `[queue, plan, fetch, eval, view]` in microseconds.
    pub phases: [u64; 5],
    pub events: Vec<TraceNode>,
}

/// Phase names, in `phases` order.
pub const PHASES: [&str; 5] = ["queue", "plan", "fetch", "eval", "view"];

fn find_key(line: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)?;
    let mut i = at + needle.len();
    let b = line.as_bytes();
    while matches!(b.get(i), Some(b' ')) {
        i += 1;
    }
    Some(i)
}

fn num_at(line: &str, i: usize) -> Option<u64> {
    let rest = &line[i..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    num_at(line, find_key(line, key)?)
}

fn field_bool(line: &str, key: &str) -> Option<bool> {
    let i = find_key(line, key)?;
    Some(line[i..].starts_with("true"))
}

/// Unescapes the JSON string starting at `i` (the opening quote).
fn str_at(line: &str, i: usize) -> Option<String> {
    let b = line.as_bytes();
    if b.get(i) != Some(&b'"') {
        return None;
    }
    let mut out = String::new();
    let mut chars = line[i + 1..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'r' => out.push('\r'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                e => out.push(e),
            },
            c => out.push(c),
        }
    }
    None
}

fn field_str(line: &str, key: &str) -> Option<String> {
    str_at(line, find_key(line, key)?)
}

/// Splits the top-level `{...}` objects of a JSON array body, tracking
/// string literals so braces inside names do not confuse the count.
fn split_objects(body: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let (mut depth, mut start, mut in_str, mut esc) = (0usize, 0usize, false, false);
    for (i, c) in body.char_indices() {
        if in_str {
            match c {
                _ if esc => esc = false,
                '\\' => esc = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if depth == 0 {
                    out.push(&body[start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// The `"events": [...]` array body of a request line (up to its
/// matching close bracket).
fn events_body(line: &str) -> Option<&str> {
    let i = find_key(line, "events")?;
    let b = line.as_bytes();
    if b.get(i) != Some(&b'[') {
        return None;
    }
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for (j, c) in line[i..].char_indices() {
        if in_str {
            match c {
                _ if esc => esc = false,
                '\\' => esc = true,
                '"' => in_str = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&line[i + 1..i + j]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses one request line; `None` when the line is not a request
/// object (flight-dump headers, blank lines).
pub fn parse_request(line: &str) -> Option<TracedRequest> {
    if line.contains("\"flight_dump\":") || !line.contains("\"events\":") {
        return None;
    }
    let request_id = field_u64(line, "request_id")?;
    let phases_at = find_key(line, "phases")?;
    let phase_obj = &line[phases_at..];
    let events = split_objects(events_body(line)?)
        .into_iter()
        .filter_map(|o| {
            Some(TraceNode {
                id: field_u64(o, "id")?,
                parent: field_u64(o, "parent"),
                kind: field_str(o, "kind")?,
                name: field_str(o, "name")?,
                downloads: field_u64(o, "downloads").unwrap_or(0),
                rows_out: field_u64(o, "rows_out"),
            })
        })
        .collect();
    Some(TracedRequest {
        request_id,
        query: field_str(line, "query")?,
        latency_us: field_u64(line, "latency_us")?,
        shed: field_bool(line, "shed").unwrap_or(false),
        phases: [
            field_u64(phase_obj, "queue_us").unwrap_or(0),
            field_u64(phase_obj, "plan_us").unwrap_or(0),
            field_u64(phase_obj, "fetch_us").unwrap_or(0),
            field_u64(phase_obj, "eval_us").unwrap_or(0),
            field_u64(phase_obj, "view_us").unwrap_or(0),
        ],
        events,
    })
}

/// Parses every request line of a JSONL export, skipping non-request
/// lines. Duplicate request ids (a flight dump snapshots overlapping
/// rings) keep the first occurrence.
pub fn parse_export(text: &str) -> Vec<TracedRequest> {
    let mut seen = std::collections::HashSet::new();
    text.lines()
        .filter_map(parse_request)
        .filter(|r| seen.insert(r.request_id))
        .collect()
}

/// The causal critical path of one request: from the root event down,
/// always descending into the child whose subtree downloaded the most
/// pages (ties and download-free subtrees fall back to subtree size).
pub fn critical_path(req: &TracedRequest) -> Vec<TraceNode> {
    let root = req
        .events
        .iter()
        .find(|e| e.name == "serve.request")
        .or_else(|| req.events.iter().find(|e| e.parent.is_none()));
    let Some(root) = root else {
        return Vec::new();
    };
    // subtree weight = (downloads, node count), computed bottom-up
    let mut weight: std::collections::HashMap<u64, (u64, u64)> = req
        .events
        .iter()
        .map(|e| (e.id, (e.downloads, 1)))
        .collect();
    // events are recorded post-order (children finish first), so one
    // forward pass would miss late parents; iterate to a fixed point
    // the simple way: fold children into parents repeatedly.
    let mut folded: Vec<(u64, u64)> = req
        .events
        .iter()
        .filter_map(|e| e.parent.map(|p| (e.id, p)))
        .collect();
    // Process leaves upward: repeatedly fold nodes whose subtree is
    // complete (no remaining child edges pointing at them).
    while !folded.is_empty() {
        let pending: std::collections::HashSet<u64> = folded.iter().map(|(_, p)| *p).collect();
        let (ready, rest): (Vec<_>, Vec<_>) =
            folded.into_iter().partition(|(c, _)| !pending.contains(c));
        if ready.is_empty() {
            break; // malformed (cycle); render what we have
        }
        for (c, p) in ready {
            let (d, n) = *weight.get(&c).unwrap_or(&(0, 1));
            let e = weight.entry(p).or_insert((0, 1));
            e.0 += d;
            e.1 += n;
        }
        folded = rest;
    }
    let mut path = vec![root.clone()];
    let mut cur = root.id;
    loop {
        let next = req
            .events
            .iter()
            .filter(|e| e.parent == Some(cur))
            .max_by_key(|e| *weight.get(&e.id).unwrap_or(&(0, 0)));
        match next {
            Some(e) => {
                path.push(e.clone());
                cur = e.id;
            }
            None => return path,
        }
    }
}

fn fmt_ms(us: u64) -> String {
    format!("{:.2}", us as f64 / 1e3)
}

/// Renders the report: the aggregate per-phase breakdown over every
/// request in the export, then the slowest request's phase row and its
/// critical path.
pub fn render(reqs: &[TracedRequest]) -> String {
    if reqs.is_empty() {
        return "no request traces in input\n".to_string();
    }
    let slowest = reqs.iter().max_by_key(|r| r.latency_us).expect("non-empty");
    let mut t = Table::new(
        "per-phase latency breakdown (ms)",
        vec!["scope", "queue", "plan", "fetch", "eval", "view", "total"],
    );
    let mut totals = [0u64; 5];
    for r in reqs {
        for (acc, v) in totals.iter_mut().zip(r.phases) {
            *acc += v;
        }
    }
    let row = |label: String, phases: &[u64; 5]| {
        let mut cells = vec![label];
        cells.extend(phases.iter().map(|&v| fmt_ms(v)));
        cells.push(fmt_ms(phases.iter().sum()));
        cells
    };
    t.row(row(format!("all ({} requests)", reqs.len()), &totals));
    let means: [u64; 5] = totals.map(|v| v / reqs.len() as u64);
    t.row(row("mean".to_string(), &means));
    t.row(row(
        format!("slowest (request {:#018x})", slowest.request_id),
        &slowest.phases,
    ));

    let mut out = format!("{t}\n");
    out.push_str(&format!(
        "critical path of the slowest request ({:#018x}, query \"{}\", {} ms{}):\n",
        slowest.request_id,
        slowest.query,
        fmt_ms(slowest.latency_us),
        if slowest.shed { ", SHED" } else { "" },
    ));
    let path = critical_path(slowest);
    if path.is_empty() {
        out.push_str("  (no causal events — was the export written with tracing on?)\n");
    }
    for (depth, node) in path.iter().enumerate() {
        let mut line = format!("  {}{} [{}]", "  ".repeat(depth), node.name, node.kind);
        if node.downloads > 0 {
            line.push_str(&format!(" downloads={}", node.downloads));
        }
        if let Some(rows) = node.rows_out {
            line.push_str(&format!(" rows_out={rows}"));
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// The `trace` subcommand: reads a JSONL export, prints the report.
pub fn run(args: &[String]) -> Result<String, String> {
    let [path] = args else {
        return Err("usage: harness trace <TRACE_X5.jsonl | FLIGHT_X5.jsonl>".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let reqs = parse_export(&text);
    if reqs.is_empty() {
        return Err(format!("{path}: no request traces found"));
    }
    Ok(render(&reqs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::{EventKind, PhaseBreakdown, RequestTrace, TraceSink};

    fn sample(latency_us: u64, rid: u64) -> String {
        let sink = TraceSink::with_seed(rid);
        let mut root = sink.begin(EventKind::Serve, "serve.request", None);
        root.set("query", "q \"x\"");
        let rootid = root.id();
        sink.event(
            EventKind::Serve,
            "serve.plan_cache",
            Some(rootid),
            vec![("hit".to_string(), 1u64.into())],
        );
        let mut heavy = sink.begin(EventKind::Operator, "follow ToDept", Some(rootid));
        heavy.set("downloads", 7u64);
        heavy.set("rows_out", 3u64);
        let mut light = sink.begin(EventKind::Operator, "project", Some(rootid));
        light.set("downloads", 1u64);
        sink.finish(light);
        sink.finish(heavy);
        sink.finish(root);
        RequestTrace {
            request_id: rid,
            query: "depts".to_string(),
            latency_us,
            shed: false,
            cached_plan: true,
            from_view: false,
            fell_back: false,
            phases: PhaseBreakdown {
                queue_us: 100,
                plan_us: 200,
                fetch_us: 3000,
                eval_us: 400,
                view_us: 0,
            },
            events: sink.events(),
            fetch_events: vec![],
        }
        .to_json()
    }

    #[test]
    fn parses_real_request_trace_json() {
        let text = format!("{}\n{}\n", sample(5000, 11), sample(9000, 22));
        let reqs = parse_export(&text);
        assert_eq!(reqs.len(), 2);
        let r = &reqs[1];
        assert_eq!((r.request_id, r.latency_us), (22, 9000));
        assert_eq!(r.phases, [100, 200, 3000, 400, 0]);
        assert!(r.events.iter().any(|e| e.name == "serve.request"));
        let heavy = r.events.iter().find(|e| e.name == "follow ToDept").unwrap();
        assert_eq!((heavy.downloads, heavy.rows_out), (7, Some(3)));
    }

    #[test]
    fn skips_flight_dump_headers_and_dedups() {
        let text = format!(
            "{{\"flight_dump\": 0, \"trigger\": \"shed\", \"request_id\": 9, \"requests\": 1}}\n{}\n{}\n",
            sample(1000, 5),
            sample(1000, 5), // same request in an overlapping dump
        );
        assert_eq!(parse_export(&text).len(), 1);
    }

    #[test]
    fn critical_path_follows_the_download_heavy_chain() {
        let reqs = parse_export(&sample(2500, 3));
        let path = critical_path(&reqs[0]);
        let names: Vec<&str> = path.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["serve.request", "follow ToDept"]);
    }

    #[test]
    fn render_names_the_slowest_request_and_its_phases() {
        let text = format!("{}\n{}\n", sample(5000, 11), sample(9000, 22));
        let out = render(&parse_export(&text));
        assert!(
            out.contains("critical path of the slowest request"),
            "{out}"
        );
        assert!(out.contains(&format!("{:#018x}", 22u64)), "{out}");
        assert!(out.contains("follow ToDept"), "{out}");
        assert!(out.contains("per-phase latency breakdown"), "{out}");
        // slowest row shows 3.00 ms of fetch
        assert!(out.contains("3.00"), "{out}");
    }

    #[test]
    fn run_rejects_bad_usage_and_empty_files() {
        assert!(run(&[]).is_err());
        let dir = std::env::temp_dir().join("wv_tracecmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("empty.jsonl");
        std::fs::write(&p, "not json\n").unwrap();
        let err = run(&[p.to_str().unwrap().to_string()]).unwrap_err();
        assert!(err.contains("no request traces"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
