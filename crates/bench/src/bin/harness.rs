//! The experiment harness: regenerates every quantitative claim and figure
//! of the paper.
//!
//! ```sh
//! cargo run --release -p bench --bin harness            # all experiments, quick scales
//! cargo run --release -p bench --bin harness -- full    # includes the 16,000-author sweep
//! cargo run --release -p bench --bin harness -- e3      # a single experiment
//! ```

use bench::table::Table;
use bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "full");
    let markdown = args.iter().any(|a| a == "--markdown" || a == "md");
    let passthrough = |a: &String| a == "full" || a == "--markdown" || a == "md";
    let want = |id: &str| {
        args.iter().filter(|a| !passthrough(a)).count() == 0
            || args.iter().any(|a| a.eq_ignore_ascii_case(id))
    };
    let show = |t: Table| {
        if markdown {
            println!("{}", t.render_markdown());
        } else {
            println!("{t}");
        }
    };

    println!("Efficient Queries over Web Views — experiment harness");
    println!("(paper: Mecca, Mendelzon, Merialdo, EDBT 1998)\n");

    if want("f1") {
        println!("{}", f1_schemes());
    }
    if want("e1") {
        let scales: &[usize] = if full {
            &[100, 400, 1600, 16000]
        } else {
            &[100, 400, 1600]
        };
        show(e1_intro_strategies(scales));
    }
    if want("e2") {
        show(e2_pointer_join(&[20, 50, 100, 200]));
    }
    if want("e3") {
        show(e3_pointer_chase(&[1, 2, 3, 4, 6]));
    }
    if want("e4") {
        show(e4_cost_model());
    }
    if want("e5") {
        show(e5_materialized_views(&[0, 1, 5, 10, 25, 50]));
        show(e5_structural());
    }
    if want("e6") {
        show(e6_optimizer_wins());
    }
    if want("e7") {
        println!("{}", e7_figures());
    }
    if want("e8") {
        show(e8_ablation());
    }
    if want("x1") {
        show(x1_latency_hiding(2, &[1, 2, 4, 8, 16]));
    }
    if args.iter().any(|a| a.eq_ignore_ascii_case("dot")) {
        println!("{}", dot_figures());
    }
}
