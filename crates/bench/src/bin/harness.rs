//! The experiment harness: regenerates every quantitative claim and figure
//! of the paper.
//!
//! ```sh
//! cargo run --release -p bench --bin harness            # all experiments, quick scales
//! cargo run --release -p bench --bin harness -- full    # includes the 16,000-author sweep
//! cargo run --release -p bench --bin harness -- e3      # a single experiment
//! cargo run --release -p bench --bin harness -- e3 --json  # + BENCH_E3.json
//! cargo run --release -p bench --bin harness -- --explain-analyze
//! cargo run --release -p bench --bin harness -- --explain-analyze --check 4.0
//! cargo run --release -p bench --bin harness -- sweep --json --sweep-check 2.0
//! cargo run --release -p bench --bin harness -- x5 --json --serve-check
//! cargo run --release -p bench --bin harness -- x5 --json --obs-check
//! cargo run --release -p bench --bin harness -- x6 --json --dataflow-check
//! cargo run --release -p bench --bin harness -- x8 --json --deadline-check
//! cargo run --release -p bench --bin harness -- benchcmp old.json new.json
//! cargo run --release -p bench --bin harness -- trace TRACE_X5.jsonl
//! ```
//!
//! With `--json`, every table experiment also writes a machine-readable
//! `BENCH_<ID>.json` (see [`bench::json`]) into the current directory;
//! X2/X3 embed their cache/resilience counters, and `--explain-analyze`
//! embeds the full per-query EXPLAIN ANALYZE join plus trace.
//! `--explain-analyze --check <tol>` exits non-zero when the worst
//! per-operator predicted/observed page ratio exceeds `<tol>` — the CI
//! drift gate. `--serve-check` runs X5 at smoke scale and exits non-zero
//! unless the plan cache hit and every served answer matched the
//! sequential-uncached oracle. `--dataflow-check` runs X6 at smoke scale
//! and exits non-zero unless the delta path fetched strictly fewer pages
//! than full refresh at equal answers, with the byte budget held and
//! upqueries backfilling exactly. `--obs-check` runs X5 at smoke scale
//! under latency-only chaos with a 500µs SLO, and exits non-zero unless
//! the run stayed divergence-free AND produced at least one schema-valid
//! flight-recorder dump. With `--json`, X5 also writes the observed
//! run's causal exports as `TRACE_X5.jsonl` / `FLIGHT_X5.jsonl`.
//! `--deadline-check` runs X8 at smoke scale under heavy-tailed chaos
//! and exits non-zero unless every complete answer matched the oracle,
//! every brown-out was an honest exact partial, hedges fired, the
//! deadline+hedge p99.9 at least halved the baseline's, and relevance
//! cancellation pruned exactly the provably-dead URLs.
//! `benchcmp <a> <b>` diffs two `BENCH_<ID>.json` files cell by cell;
//! `trace <export.jsonl>` renders the per-phase latency breakdown and
//! the slowest request's causal critical path.

use bench::table::Table;
use bench::*;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("benchcmp") {
        match bench::benchcmp::run(&args[1..]) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("benchcmp: {e}");
                std::process::exit(2);
            }
        }
    }
    if args.first().map(String::as_str) == Some("trace") {
        match bench::tracecmd::run(&args[1..]) {
            Ok(report) => {
                print!("{report}");
                return;
            }
            Err(e) => {
                eprintln!("trace: {e}");
                std::process::exit(2);
            }
        }
    }
    let full = args.iter().any(|a| a == "full");
    let markdown = args.iter().any(|a| a == "--markdown" || a == "md");
    let json = args.iter().any(|a| a == "--json" || a == "json");
    let explain_analyze = args.iter().any(|a| a == "--explain-analyze" || a == "xa");
    let check: Option<f64> = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let check_value: Vec<String> = check.map(|t| t.to_string()).into_iter().collect();
    let drift_check = args.iter().any(|a| a == "--drift-check");
    // `--sweep-check [min]`: gate the rows/sec sweep; optional numeric floor
    // (default 2.0, a conservative CI floor — see EXPERIMENTS.md for the
    // measured speedups).
    let sweep_check_at = args.iter().position(|a| a == "--sweep-check");
    // The raw numeric argument (when present) must pass through the
    // experiment-id filter untouched.
    let sweep_check_value: Vec<String> = sweep_check_at
        .and_then(|i| args.get(i + 1))
        .filter(|v| v.parse::<f64>().is_ok())
        .cloned()
        .into_iter()
        .collect();
    let sweep_check: Option<f64> = sweep_check_at.map(|_| {
        sweep_check_value
            .first()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2.0)
    });
    let serve_check = args.iter().any(|a| a == "--serve-check");
    let dataflow_check = args.iter().any(|a| a == "--dataflow-check");
    let obs_check = args.iter().any(|a| a == "--obs-check");
    let deadline_check = args.iter().any(|a| a == "--deadline-check");
    let passthrough = |a: &String| {
        a == "full"
            || a == "--markdown"
            || a == "md"
            || a == "--json"
            || a == "json"
            || a == "--explain-analyze"
            || a == "xa"
            || a == "--check"
            || a == "--drift-check"
            || a == "--serve-check"
            || a == "--dataflow-check"
            || a == "--obs-check"
            || a == "--deadline-check"
            || a == "--sweep-check"
            || check_value.contains(a)
            || sweep_check_value.contains(a)
    };
    let want = |id: &str| {
        (!explain_analyze && args.iter().filter(|a| !passthrough(a)).count() == 0)
            || args.iter().any(|a| a.eq_ignore_ascii_case(id))
    };
    // Runs one table experiment: prints the table and, with `--json`,
    // writes BENCH_<ID>.json carrying the same rows plus wall-clock and
    // any extra raw-JSON fields (cache/resilience counters, traces).
    let emit_extras = |id: &str,
                       params: Vec<(&str, String)>,
                       run: &dyn Fn() -> (Table, Vec<(String, String)>)| {
        let t0 = Instant::now();
        let (t, extras) = run();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if markdown {
            println!("{}", t.render_markdown());
        } else {
            println!("{t}");
        }
        if json {
            match bench::json::write_experiment_json_with_extras(
                std::path::Path::new("."),
                id,
                &params,
                wall_ms,
                &t,
                &extras,
            ) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("BENCH_{}.json: {e}", id.to_uppercase()),
            }
        }
    };
    let emit = |id: &str, params: Vec<(&str, String)>, run: &dyn Fn() -> Table| {
        emit_extras(id, params, &|| (run(), Vec::new()));
    };

    println!("Efficient Queries over Web Views — experiment harness");
    println!("(paper: Mecca, Mendelzon, Merialdo, EDBT 1998)\n");

    if want("f1") {
        println!("{}", f1_schemes());
    }
    if want("e1") {
        let scales: &[usize] = if full {
            &[100, 400, 1600, 16000]
        } else {
            &[100, 400, 1600]
        };
        emit("e1", vec![("authors", format!("{scales:?}"))], &|| {
            e1_intro_strategies(scales)
        });
    }
    if want("e2") {
        let courses = [20, 50, 100, 200];
        emit("e2", vec![("courses", format!("{courses:?}"))], &|| {
            e2_pointer_join(&courses)
        });
    }
    if want("e3") {
        let departments = [1, 2, 3, 4, 6];
        emit(
            "e3",
            vec![("departments", format!("{departments:?}"))],
            &|| e3_pointer_chase(&departments),
        );
    }
    if want("e4") {
        emit("e4", vec![], &e4_cost_model);
    }
    if want("e5") {
        let pcts = [0, 1, 5, 10, 25, 50];
        emit("e5", vec![("updated_pct", format!("{pcts:?}"))], &|| {
            e5_materialized_views(&pcts)
        });
        emit("e5b", vec![], &e5_structural);
    }
    if want("e6") {
        emit("e6", vec![], &e6_optimizer_wins);
    }
    if want("e7") {
        println!("{}", e7_figures());
    }
    if want("e8") {
        emit("e8", vec![], &e8_ablation);
    }
    if want("sweep") || sweep_check.is_some() {
        let scales: Vec<usize> = if full {
            vec![1000, 10000, 40000]
        } else {
            vec![1000, 10000]
        };
        let reps = if full { 50 } else { 10 };
        let t0 = Instant::now();
        let smoke = sweep_rows_per_sec(&scales, reps);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if markdown {
            println!("{}", smoke.table.render_markdown());
        } else {
            println!("{}", smoke.table);
        }
        if json {
            match bench::json::write_experiment_json_with_extras(
                std::path::Path::new("."),
                "sweep",
                &[
                    ("scales", format!("{scales:?}")),
                    ("reps", reps.to_string()),
                ],
                wall_ms,
                &smoke.table,
                &smoke.extras,
            ) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("BENCH_SWEEP.json: {e}"),
            }
        }
        if let Some(min) = sweep_check {
            if smoke.min_gated_speedup < min {
                eprintln!(
                    "sweep check FAILED: worst gated columnar speedup {:.2}x < floor {min}x — the chunk-at-a-time kernels regressed",
                    smoke.min_gated_speedup
                );
                std::process::exit(1);
            }
            eprintln!(
                "sweep check ok: every gated operator (σ, π, join) at least {:.2}x over the row path (floor {min}x)",
                smoke.min_gated_speedup
            );
        }
    }
    if want("x1") {
        let (latency_ms, workers) = (2u64, [1usize, 2, 4, 8, 16]);
        emit(
            "x1",
            vec![
                ("latency_ms", latency_ms.to_string()),
                ("workers", format!("{workers:?}")),
            ],
            &|| x1_latency_hiding(latency_ms, &workers),
        );
    }
    if want("x2") {
        emit_extras("x2", vec![], &x2_shared_cache_detailed);
    }
    if want("x3") {
        let rates = [0u8, 20, 40, 60];
        emit_extras(
            "x3",
            vec![("transient_rate_pct", format!("{rates:?}"))],
            &|| x3_chaos_detailed(&rates),
        );
    }
    if want("x4") || drift_check {
        let drift_seed = 3u64;
        let t0 = Instant::now();
        let smoke = x4_drift(drift_seed);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if markdown {
            println!("{}", smoke.accuracy.render_markdown());
            println!("{}", smoke.pages.render_markdown());
        } else {
            println!("{}", smoke.accuracy);
            println!("{}", smoke.pages);
        }
        if json {
            match bench::json::write_experiment_json_with_extras(
                std::path::Path::new("."),
                "x4",
                &[("drift_seed", drift_seed.to_string())],
                wall_ms,
                &smoke.accuracy,
                &smoke.extras,
            ) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("BENCH_X4.json: {e}"),
            }
        }
        if drift_check {
            if !smoke.quarantine_fired {
                eprintln!("drift check FAILED: no constraint was quarantined");
                std::process::exit(1);
            }
            if !smoke.fallbacks_match_naive {
                eprintln!(
                    "drift check FAILED: a fallback diverged from the default-navigation answer"
                );
                std::process::exit(1);
            }
            eprintln!("drift check ok: quarantine fired and every fallback matched the default navigation");
        }
    }
    if want("x5") || serve_check || obs_check {
        let cfg = if obs_check && !full {
            // Observability smoke: smoke scale plus latency-only chaos
            // and an unmeetable SLO, so the run is guaranteed to breach
            // its objective and take at least one flight dump.
            bench::ServeLoadConfig {
                requests: 48,
                workers: 4,
                latency: std::time::Duration::from_millis(1),
                open_loop_interval: std::time::Duration::from_millis(2),
                slo: std::time::Duration::from_micros(500),
                chaos_slow_rate: 0.3,
                chaos_slow_delay: std::time::Duration::from_millis(10),
                ..bench::ServeLoadConfig::default()
            }
        } else if serve_check && !full {
            // CI smoke scale: small stream, short simulated latency.
            bench::ServeLoadConfig {
                requests: 48,
                workers: 4,
                latency: std::time::Duration::from_millis(1),
                open_loop_interval: std::time::Duration::from_millis(2),
                ..bench::ServeLoadConfig::default()
            }
        } else {
            bench::ServeLoadConfig::default()
        };
        let t0 = Instant::now();
        let smoke = x5_serving(&cfg);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if markdown {
            println!("{}", smoke.table.render_markdown());
        } else {
            println!("{}", smoke.table);
        }
        if json {
            match bench::json::write_experiment_json_with_extras(
                std::path::Path::new("."),
                "x5",
                &[
                    ("seed", cfg.seed.to_string()),
                    ("requests", cfg.requests.to_string()),
                    ("workers", cfg.workers.to_string()),
                    ("zipf_s", cfg.zipf_s.to_string()),
                    ("latency_ms", cfg.latency.as_millis().to_string()),
                ],
                wall_ms,
                &smoke.table,
                &smoke.extras,
            ) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("BENCH_X5.json: {e}"),
            }
            // The observed run's causal exports ride along as JSONL:
            // one request per line (TRACE), plus every flight dump
            // (FLIGHT) when something triggered.
            match std::fs::write("TRACE_X5.jsonl", &smoke.trace_jsonl) {
                Ok(()) => eprintln!("wrote TRACE_X5.jsonl"),
                Err(e) => eprintln!("TRACE_X5.jsonl: {e}"),
            }
            if !smoke.flight_jsonl.is_empty() {
                match std::fs::write("FLIGHT_X5.jsonl", &smoke.flight_jsonl) {
                    Ok(()) => eprintln!("wrote FLIGHT_X5.jsonl"),
                    Err(e) => eprintln!("FLIGHT_X5.jsonl: {e}"),
                }
            }
        }
        if obs_check {
            if smoke.rows_diverged > 0 {
                eprintln!(
                    "obs check FAILED: {} served answer(s) diverged under chaos — tracing or faults changed bytes",
                    smoke.rows_diverged
                );
                std::process::exit(1);
            }
            if smoke.flight_dumps == 0 || smoke.flight_jsonl.is_empty() {
                eprintln!("obs check FAILED: no flight-recorder dump was taken");
                std::process::exit(1);
            }
            let dumped = bench::tracecmd::parse_export(&smoke.flight_jsonl);
            if dumped.is_empty() {
                eprintln!(
                    "obs check FAILED: flight dump did not schema-validate as request traces"
                );
                std::process::exit(1);
            }
            println!("{}", bench::tracecmd::render(&dumped));
            eprintln!(
                "obs check ok: zero divergence under chaos, {} flight dump(s), {} traced request(s) schema-validated, slo_burning={}",
                smoke.flight_dumps,
                dumped.len(),
                smoke.slo_burning
            );
        }
        if serve_check {
            if smoke.hit_rate <= 0.0 {
                eprintln!("serve check FAILED: plan-cache hit rate is zero");
                std::process::exit(1);
            }
            if smoke.rows_diverged > 0 {
                eprintln!(
                    "serve check FAILED: {} served answer(s) diverged from the sequential-uncached oracle",
                    smoke.rows_diverged
                );
                std::process::exit(1);
            }
            eprintln!(
                "serve check ok: plan-cache hit rate {:.0}%, zero divergence, {:.1}% GETs saved by coalescing",
                smoke.hit_rate * 100.0,
                smoke.gets_saved_pct
            );
        }
    }
    if want("x6") || dataflow_check {
        let cfg = if dataflow_check && !full {
            // CI smoke scale: a small site, fewer rounds, tight budget.
            bench::DataflowConfig {
                rounds: 3,
                departments: 3,
                professors: 6,
                courses: 8,
                budget: 2048,
                ..bench::DataflowConfig::default()
            }
        } else {
            bench::DataflowConfig::default()
        };
        let t0 = Instant::now();
        let smoke = x6_dataflow(&cfg);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if markdown {
            println!("{}", smoke.table.render_markdown());
        } else {
            println!("{}", smoke.table);
        }
        if json {
            match bench::json::write_experiment_json_with_extras(
                std::path::Path::new("."),
                "x6",
                &[
                    ("site_seed", cfg.site_seed.to_string()),
                    ("plan_seed", cfg.plan_seed.to_string()),
                    ("rounds", cfg.rounds.to_string()),
                    ("budget_bytes", cfg.budget.to_string()),
                    (
                        "scale",
                        format!("{}d/{}p/{}c", cfg.departments, cfg.professors, cfg.courses),
                    ),
                ],
                wall_ms,
                &smoke.table,
                &smoke.extras,
            ) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("BENCH_X6.json: {e}"),
            }
        }
        if dataflow_check {
            if smoke.delta_accesses >= smoke.refresh_accesses {
                eprintln!(
                    "dataflow check FAILED: delta fetched {} pages, full refresh {} — no win",
                    smoke.delta_accesses, smoke.refresh_accesses
                );
                std::process::exit(1);
            }
            if !smoke.answers_match {
                eprintln!("dataflow check FAILED: a maintained view diverged from live evaluation");
                std::process::exit(1);
            }
            if !smoke.store_equivalent {
                eprintln!("dataflow check FAILED: the delta store diverged from full refresh");
                std::process::exit(1);
            }
            if !smoke.budget_held {
                eprintln!("dataflow check FAILED: the budgeted store exceeded its byte budget");
                std::process::exit(1);
            }
            if !smoke.backfill_identical || smoke.upqueries == 0 {
                eprintln!("dataflow check FAILED: upqueries did not restore evicted pages exactly");
                std::process::exit(1);
            }
            eprintln!(
                "dataflow check ok: delta {} vs refresh {} page fetches ({}% saved), answers and store equivalent, budget held through {} upqueries",
                smoke.delta_accesses,
                smoke.refresh_accesses,
                100 * (smoke.refresh_accesses - smoke.delta_accesses) / smoke.refresh_accesses.max(1),
                smoke.upqueries
            );
        }
    }
    if want("x8") || deadline_check {
        let cfg = if deadline_check && !full {
            // CI smoke scale: fewer requests, the full chaos profile.
            bench::DeadlineLoadConfig {
                requests: 48,
                workers: 4,
                ..bench::DeadlineLoadConfig::default()
            }
        } else {
            bench::DeadlineLoadConfig::default()
        };
        let t0 = Instant::now();
        let smoke = x8_deadline(&cfg);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if markdown {
            println!("{}", smoke.table.render_markdown());
        } else {
            println!("{}", smoke.table);
        }
        if json {
            match bench::json::write_experiment_json_with_extras(
                std::path::Path::new("."),
                "x8",
                &[
                    ("seed", cfg.seed.to_string()),
                    ("requests", cfg.requests.to_string()),
                    ("workers", cfg.workers.to_string()),
                    ("fetch_workers", cfg.fetch_workers.to_string()),
                    ("budget_ms", cfg.budget.as_millis().to_string()),
                    ("tail_ms", cfg.tail.as_millis().to_string()),
                    ("tail_rate", cfg.tail_rate.to_string()),
                ],
                wall_ms,
                &smoke.table,
                &smoke.extras,
            ) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("BENCH_X8.json: {e}"),
            }
        }
        if deadline_check {
            if smoke.rows_diverged > 0 {
                eprintln!(
                    "deadline check FAILED: {} complete answer(s) diverged from the oracle — deadline/hedging changed bytes",
                    smoke.rows_diverged
                );
                std::process::exit(1);
            }
            if smoke.bad_brownouts > 0 {
                eprintln!(
                    "deadline check FAILED: {} brown-out(s) were not honest partials (deadline flag, exact unreachable set, rows ⊆ oracle)",
                    smoke.bad_brownouts
                );
                std::process::exit(1);
            }
            if smoke.brown_outs == 0 {
                eprintln!(
                    "deadline check FAILED: the deadline arm never browned out — the chaos did not bite"
                );
                std::process::exit(1);
            }
            if smoke.hedges == 0 {
                eprintln!("deadline check FAILED: no hedge was ever launched");
                std::process::exit(1);
            }
            if smoke.p999_guarded_ms * 2.0 > smoke.p999_baseline_ms {
                eprintln!(
                    "deadline check FAILED: deadline+hedge p99.9 {:.1}ms is not >=2x under baseline {:.1}ms",
                    smoke.p999_guarded_ms, smoke.p999_baseline_ms
                );
                std::process::exit(1);
            }
            if !smoke.relevance_rows_match
                || smoke.relevance_cancelled != 2
                || smoke.relevance_pruned_accesses >= smoke.relevance_plain_accesses
            {
                eprintln!(
                    "deadline check FAILED: relevance micro-check broke (rows_match={}, cancelled={}, accesses {} vs {})",
                    smoke.relevance_rows_match,
                    smoke.relevance_cancelled,
                    smoke.relevance_pruned_accesses,
                    smoke.relevance_plain_accesses
                );
                std::process::exit(1);
            }
            eprintln!(
                "deadline check ok: p99.9 {:.1}ms -> {:.1}ms ({:.1}x), {} brown-out(s) all honest, {} hedge(s) ({} won), relevance pruned {} -> {} accesses",
                smoke.p999_baseline_ms,
                smoke.p999_guarded_ms,
                smoke.p999_baseline_ms / smoke.p999_guarded_ms.max(1e-9),
                smoke.brown_outs,
                smoke.hedges,
                smoke.hedge_wins,
                smoke.relevance_plain_accesses,
                smoke.relevance_pruned_accesses
            );
        }
    }
    if explain_analyze || want("xa") {
        let t0 = Instant::now();
        let smoke = xa_explain_analyze();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        for (label, render) in &smoke.renders {
            println!("EXPLAIN ANALYZE: {label}");
            println!("{render}");
        }
        if markdown {
            println!("{}", smoke.table.render_markdown());
        } else {
            println!("{}", smoke.table);
        }
        if json {
            match bench::json::write_experiment_json_with_extras(
                std::path::Path::new("."),
                "xa",
                &[],
                wall_ms,
                &smoke.table,
                &smoke.extras,
            ) {
                Ok(p) => eprintln!("wrote {}", p.display()),
                Err(e) => eprintln!("BENCH_XA.json: {e}"),
            }
        }
        if let Some(tolerance) = check {
            if smoke.worst_ratio > tolerance {
                eprintln!(
                    "explain-analyze drift check FAILED: worst per-operator page ratio {:.3} > tolerance {tolerance}",
                    smoke.worst_ratio
                );
                std::process::exit(1);
            }
            eprintln!(
                "explain-analyze drift check ok: worst per-operator page ratio {:.3} <= {tolerance}",
                smoke.worst_ratio
            );
        }
    }
    if args.iter().any(|a| a.eq_ignore_ascii_case("dot")) {
        println!("{}", dot_figures());
    }
}
