//! X6 (extension) — incremental view maintenance vs. full refresh.
//!
//! The paper's E5 already shows when a *stored* view beats re-navigation;
//! X6 measures how cheaply the store can be kept fresh. Three twin sites
//! are generated from one seed and mutated by one seeded [`MutationPlan`]
//! — so all three serve byte-identical content every round — and three
//! maintenance strategies race over them:
//!
//! * **delta** — [`dataflow::IncrementalView`]: drain the change feed,
//!   fetch only changed pages, propagate ± deltas through the operator
//!   tree (unbudgeted);
//! * **full refresh** — [`matview::maintain::full_refresh`]: re-crawl the
//!   site from its entry points every round (the E5 baseline);
//! * **budgeted delta** — the same delta path under a byte budget, where
//!   evicted pages come back through targeted upqueries.
//!
//! Every table cell is a deterministic counter (no wall-clock): the same
//! seeds produce the same table on every machine, which is what lets CI
//! `benchcmp` a fresh run against the committed baseline. The
//! `--dataflow-check` gate asserts the delta path fetched **strictly**
//! fewer pages than full refresh while producing the same store
//! (modulo `access_date`) and the same answers as live evaluation, and
//! that the budgeted twin never exceeded its budget while backfilling
//! evicted pages byte-identically.

use crate::table::Table;
use adm::{Relation, Tuple, Value};
use dataflow::IncrementalView;
use matview::maintain::full_refresh;
use matview::MatStore;
use nalg::{Evaluator, NalgExpr};
use websim::sitegen::{University, UniversityConfig};
use websim::{MutationPlan, MutationRule};
use wvcore::LiveSource;

/// Knobs of the X6 run. `Default` is the full benchmark scale; CI's
/// `dataflow-smoke` runs a reduced copy (see the harness).
#[derive(Debug, Clone)]
pub struct DataflowConfig {
    /// Seed of the three twin sites.
    pub site_seed: u64,
    /// Seed of the mutation plan applied identically to every twin.
    pub plan_seed: u64,
    /// Mutation/maintenance rounds.
    pub rounds: u64,
    /// Byte budget of the budgeted twin's partial store.
    pub budget: usize,
    /// Site scale.
    pub departments: usize,
    /// Site scale.
    pub professors: usize,
    /// Site scale.
    pub courses: usize,
}

impl Default for DataflowConfig {
    fn default() -> Self {
        DataflowConfig {
            site_seed: 17,
            plan_seed: 0xD17A,
            rounds: 4,
            budget: 4096,
            departments: 4,
            professors: 10,
            courses: 16,
        }
    }
}

/// Output of the X6 run (see [`x6_dataflow`]).
pub struct DataflowSmoke {
    /// One row per round plus a Σ totals row.
    pub table: Table,
    /// Raw-JSON extras for `BENCH_X6.json`: fetch totals, budget
    /// counters, view counters.
    pub extras: Vec<(String, String)>,
    /// Total delta-path page accesses (GET + HEAD) across all rounds.
    pub delta_accesses: u64,
    /// Total full-refresh page accesses (GET + HEAD) across all rounds.
    pub refresh_accesses: u64,
    /// Every maintained view matched live evaluation every round.
    pub answers_match: bool,
    /// The delta store matched the full-refresh store (modulo
    /// `access_date`) every round.
    pub store_equivalent: bool,
    /// The budgeted twin never exceeded its byte budget.
    pub budget_held: bool,
    /// Every evicted page read back byte-identical to the server.
    pub backfill_identical: bool,
    /// Upqueries issued by the budgeted twin (gate: must be positive).
    pub upqueries: u64,
}

fn views() -> Vec<(&'static str, NalgExpr)> {
    vec![
        (
            "depts",
            NalgExpr::entry("DeptListPage")
                .unnest("DeptList")
                .follow("ToDept", "DeptPage")
                .project(vec!["DeptPage.DName", "DeptPage.Address"]),
        ),
        (
            "profs",
            NalgExpr::entry("DeptListPage")
                .unnest("DeptList")
                .follow("ToDept", "DeptPage")
                .unnest("ProfList")
                .follow("ToProf", "ProfPage")
                .project(vec!["ProfPage.PName", "ProfPage.Rank", "DeptPage.DName"]),
        ),
        (
            "courses",
            NalgExpr::entry("ProfListPage")
                .unnest("ProfList")
                .follow("ToProf", "ProfPage")
                .unnest("CourseList")
                .follow("ToCourse", "CoursePage")
                .project(vec!["CoursePage.CName", "CoursePage.Description"]),
        ),
    ]
}

fn sorted(rel: &Relation) -> Vec<Vec<Value>> {
    let mut rows = rel.rows().to_vec();
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let o = x.total_cmp(y);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

/// Everything except `access_date`, which legitimately differs between
/// maintenance paths (each stamps its fetches at its own clock).
fn fingerprint(store: &MatStore) -> Vec<(String, String, Tuple, bool)> {
    store
        .pages_sorted()
        .into_iter()
        .map(|(u, p)| {
            (
                u.as_str().to_string(),
                p.scheme.clone(),
                p.tuple.clone(),
                p.stale,
            )
        })
        .collect()
}

/// X6 — see the module docs. Returns the per-round table plus the gate
/// verdicts `--dataflow-check` asserts.
pub fn x6_dataflow(cfg: &DataflowConfig) -> DataflowSmoke {
    let mk = || {
        University::generate(UniversityConfig {
            departments: cfg.departments,
            professors: cfg.professors,
            courses: cfg.courses,
            seed: cfg.site_seed,
            ..UniversityConfig::default()
        })
        .expect("site")
    };
    // Three identical twins: one per maintenance strategy, so each
    // strategy's GET/HEAD counters are isolated.
    let mut ud = mk(); // delta
    let mut ur = mk(); // full refresh
    let mut ub = mk(); // budgeted delta
    let ws = ud.site.scheme.clone();

    let mut iv = IncrementalView::new(&ws);
    iv.materialize(&ud.site.server).expect("materialize");
    iv.set_cursor(ud.site.change_cursor());
    for (key, expr) in &views() {
        iv.register(*key, *key, expr, &ud.site.server)
            .expect("register");
    }

    let mut mat = MatStore::new();
    mat.materialize(&ws, &ur.site.server).expect("materialize");

    let mut bv = IncrementalView::new(&ws).with_byte_budget(cfg.budget);
    bv.materialize(&ub.site.server).expect("materialize");
    bv.set_cursor(ub.site.change_cursor());

    let plan = MutationPlan::new(cfg.plan_seed)
        .with_rule(MutationRule::edit_attr("DeptPage", "Address", 0.5))
        .with_rule(MutationRule::edit_attr("ProfPage", "Rank", 0.4))
        .with_rule(MutationRule::delete("CoursePage", 0.2))
        .with_rule(MutationRule::drop_links(
            "DeptListPage",
            &["DeptList", "ToDept"],
            0.15,
        ));

    let mut t = Table::new(
        "X6 — incremental maintenance: delta propagation vs full refresh",
        vec![
            "round",
            "changes",
            "Δ fetches",
            "refresh fetches",
            "rows +",
            "rows −",
            "answers",
            "store",
        ],
    );

    let mut delta_accesses = 0u64;
    let mut refresh_accesses = 0u64;
    let mut changes_total = 0u64;
    let (mut rows_added, mut rows_removed) = (0u64, 0u64);
    let mut answers_match = true;
    let mut store_equivalent = true;
    let mut budget_held = bv.store().stats().resident_bytes <= cfg.budget as u64;

    for round in 0..cfg.rounds {
        // One seeded plan, three identical sites → identical mutations.
        let m = plan.apply_round(&mut ud.site, round).expect("mutate");
        let mr = plan.apply_round(&mut ur.site, round).expect("mutate");
        let mb = plan.apply_round(&mut ub.site, round).expect("mutate");
        assert_eq!(
            (m.total(), m.total()),
            (mr.total(), mb.total()),
            "twins diverged"
        );

        ud.site.server.reset_stats();
        let rep = iv.sync(&ud.site).expect("delta sync");
        let ds = ud.site.server.stats();
        let d_round = ds.gets + ds.heads;

        ur.site.server.reset_stats();
        full_refresh(&mut mat, &ws, &ur.site.server).expect("full refresh");
        let rs = ur.site.server.stats();
        let r_round = rs.gets + rs.heads;

        bv.sync(&ub.site).expect("budgeted sync");
        budget_held &= bv.store().stats().resident_bytes <= cfg.budget as u64;

        let round_store_ok = fingerprint(iv.store().mat()) == fingerprint(&mat);
        store_equivalent &= round_store_ok;

        let src = LiveSource::new(&ws, &ud.site.server);
        let live = Evaluator::new(&ws, &src);
        let mut round_answers_ok = true;
        for (key, expr) in &views() {
            let want = sorted(&live.eval(expr).expect("live eval").relation);
            let got = iv.answer(key).map(|r| r.rows().to_vec());
            round_answers_ok &= got.as_deref() == Some(&want[..]);
        }
        answers_match &= round_answers_ok;

        delta_accesses += d_round;
        refresh_accesses += r_round;
        changes_total += rep.changes_seen;
        rows_added += rep.rows_added;
        rows_removed += rep.rows_removed;
        t.row(vec![
            round.to_string(),
            rep.changes_seen.to_string(),
            d_round.to_string(),
            r_round.to_string(),
            rep.rows_added.to_string(),
            rep.rows_removed.to_string(),
            if round_answers_ok { "=" } else { "DIVERGED" }.to_string(),
            if round_store_ok { "=" } else { "DIVERGED" }.to_string(),
        ]);
    }
    t.row(vec![
        "Σ".to_string(),
        changes_total.to_string(),
        delta_accesses.to_string(),
        refresh_accesses.to_string(),
        rows_added.to_string(),
        rows_removed.to_string(),
        if answers_match { "=" } else { "DIVERGED" }.to_string(),
        if store_equivalent { "=" } else { "DIVERGED" }.to_string(),
    ]);

    // Backfill: after all rounds, read every live page through the
    // budgeted store — evicted ones must upquery back byte-identical,
    // with the budget held throughout.
    let mut backfill_identical = true;
    for scheme in [
        "DeptListPage",
        "DeptPage",
        "ProfListPage",
        "ProfPage",
        "CoursePage",
    ] {
        for (url, truth) in ub.site.instance(scheme) {
            match bv.store_mut().read(&ws, &ub.site.server, &url) {
                Ok(Some((tuple, s))) => {
                    backfill_identical &= tuple == truth && s == scheme;
                }
                _ => backfill_identical = false,
            }
            budget_held &= bv.store().stats().resident_bytes <= cfg.budget as u64;
        }
    }
    let bs = bv.store().stats();

    let saved_pct = if refresh_accesses > 0 {
        100.0 * (refresh_accesses.saturating_sub(delta_accesses)) as f64 / refresh_accesses as f64
    } else {
        0.0
    };
    let extras = vec![
        (
            "fetches".to_string(),
            format!(
                "{{\"delta\": {delta_accesses}, \"full_refresh\": {refresh_accesses}, \"saved_pct\": {saved_pct:.1}}}"
            ),
        ),
        (
            "budget".to_string(),
            format!(
                "{{\"budget_bytes\": {}, \"resident_bytes\": {}, \"skeleton_pages\": {}, \"upqueries\": {}, \"held\": {}, \"backfill_identical\": {}}}",
                cfg.budget, bs.resident_bytes, bs.skeleton_pages, bs.upqueries,
                budget_held, backfill_identical
            ),
        ),
        (
            "equivalence".to_string(),
            format!(
                "{{\"answers_match\": {answers_match}, \"store_equivalent\": {store_equivalent}}}"
            ),
        ),
    ];
    DataflowSmoke {
        table: t,
        extras,
        delta_accesses,
        refresh_accesses,
        answers_match,
        store_equivalent,
        budget_held,
        backfill_identical,
        upqueries: bs.upqueries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x6_delta_dominates_refresh_with_equal_answers() {
        let cfg = DataflowConfig {
            rounds: 3,
            departments: 3,
            professors: 6,
            courses: 8,
            budget: 2048,
            ..DataflowConfig::default()
        };
        let smoke = x6_dataflow(&cfg);
        assert_eq!(smoke.table.rows.len(), 4, "3 rounds + Σ");
        assert!(
            smoke.delta_accesses < smoke.refresh_accesses,
            "delta ({}) must strictly beat refresh ({})",
            smoke.delta_accesses,
            smoke.refresh_accesses
        );
        assert!(smoke.answers_match, "views must match live evaluation");
        assert!(smoke.store_equivalent, "store must match full refresh");
        assert!(smoke.budget_held, "byte budget is an invariant");
        assert!(
            smoke.backfill_identical,
            "upqueries must restore pages exactly"
        );
        assert!(smoke.upqueries > 0, "a 2 KiB budget must upquery");
    }

    #[test]
    fn x6_is_deterministic_across_runs() {
        let cfg = DataflowConfig {
            rounds: 2,
            departments: 2,
            professors: 4,
            courses: 6,
            ..DataflowConfig::default()
        };
        let a = x6_dataflow(&cfg);
        let b = x6_dataflow(&cfg);
        assert_eq!(a.table.rows, b.table.rows, "X6 cells must be seed-pure");
        assert_eq!(a.extras, b.extras);
    }
}
