//! Experiment harness: one function per experiment of `EXPERIMENTS.md`.
//!
//! The paper's evaluation is analytical (worked examples with closed-form
//! page-access costs); every quantitative claim and every figure is
//! regenerated here:
//!
//! | id | paper source | function |
//! |----|--------------|----------|
//! | E1 | §1 intro — four navigation strategies | [`e1_intro_strategies`] |
//! | E2 | Example 7.1 / Figure 3 — pointer join | [`e2_pointer_join`] |
//! | E3 | Example 7.2 / Figure 4 — pointer chase | [`e3_pointer_chase`] |
//! | E4 | §6.2 — cost-model validation | [`e4_cost_model`] |
//! | E5 | §8 — materialized-view maintenance | [`e5_materialized_views`] |
//! | E6 | §6.3 — optimizer wins over naive plans | [`e6_optimizer_wins`] |
//! | E7 | Figures 2–4 — query plans | [`e7_figures`] |
//! | E8 | §6–7 — rule ablations | [`e8_ablation`] |
//! | F1 | Figure 1 — the web schemes + constraint checks | [`f1_schemes`] |

pub mod benchcmp;
pub mod dataflow_x6;
pub mod deadline_x8;
pub mod fixtures;
pub mod json;
pub mod serving;
pub mod sweep;
pub mod table;
pub mod tracecmd;

pub use dataflow_x6::{x6_dataflow, DataflowConfig, DataflowSmoke};
pub use deadline_x8::{x8_deadline, DeadlineLoadConfig, DeadlineSmoke};
pub use serving::{x5_serving, ServeLoadConfig, ServeSmoke};
pub use sweep::{sweep_rows_per_sec, SweepSmoke};

use fixtures::*;
use nalg::Evaluator;
use table::Table;
use websim::sitegen::{BibConfig, Bibliography, University, UniversityConfig};
use wvcore::{ConjunctiveQuery, LiveSource, Optimizer, QuerySession, RuleMask, SiteStatistics};

/// E1 — the introduction's four strategies for "authors who had papers in
/// the last three VLDB conferences", swept over the author population.
pub fn e1_intro_strategies(author_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "E1 — §1: four navigation strategies, page accesses (cost model) / downloads / KB",
        vec![
            "authors",
            "S1 conf-list",
            "S2 db-list",
            "S3 featured",
            "S4 author-first",
        ],
    );
    for &authors in author_counts {
        let bib = Bibliography::generate(BibConfig {
            authors,
            papers_per_edition: 20,
            ..BibConfig::default()
        })
        .expect("bib generation");
        let source = LiveSource::for_site(&bib.site);
        let years = bib.last_three_years();
        let mut cells = vec![authors.to_string()];
        for plan in intro_strategies(&years) {
            bib.site.server.reset_stats();
            let report = Evaluator::new(&bib.site.scheme, &source)
                .eval(&plan)
                .expect("strategy evaluates");
            let bytes = bib.site.server.stats().bytes;
            cells.push(format!(
                "{} / {} / {:.0}",
                report.cost_model_accesses(),
                report.page_accesses,
                bytes as f64 / 1024.0
            ));
        }
        t.row(cells);
    }
    t
}

/// E2 — Example 7.1: pointer join vs pointer chase, swept over the number
/// of courses. Reports estimated and measured page accesses of the paper's
/// two plans and the optimizer's choice.
pub fn e2_pointer_join(course_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "E2 — Example 7.1: est/meas pages — paper plan (1d) pointer-join vs (2d) pointer-chase",
        vec![
            "courses",
            "plan 1d (join)",
            "plan 2d (chase)",
            "optimizer best",
            "winner",
        ],
    );
    for &courses in course_counts {
        let u = University::generate(UniversityConfig {
            courses,
            ..UniversityConfig::default()
        })
        .expect("site");
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = wvcore::views::university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);

        let join_plan = example_71_plan_1d();
        let chase_plan = example_71_plan_2d();
        let join_est = wvcore::cost::estimate(&join_plan, &u.site.scheme, &stats)
            .expect("estimate")
            .cost
            .pages;
        let chase_est = wvcore::cost::estimate(&chase_plan, &u.site.scheme, &stats)
            .expect("estimate")
            .cost
            .pages;
        let join_meas = session
            .execute(&join_plan)
            .expect("run")
            .cost_model_accesses();
        let chase_meas = session
            .execute(&chase_plan)
            .expect("run")
            .cost_model_accesses();
        let best = session.explain(&query_71()).expect("optimize");
        let best_est = best.best().estimate.cost.pages;
        let best_meas = session
            .execute(&best.best().expr)
            .expect("run")
            .cost_model_accesses();
        t.row(vec![
            courses.to_string(),
            format!("{join_est:.1} / {join_meas}"),
            format!("{chase_est:.1} / {chase_meas}"),
            format!("{best_est:.1} / {best_meas}"),
            if join_meas <= chase_meas {
                "join"
            } else {
                "chase"
            }
            .to_string(),
        ]);
    }
    t
}

/// E3 — Example 7.2: pointer chase vs pointer join, swept over the number
/// of departments (the chase's selectivity lever). At the paper's
/// parameters (3 departments) the chase wins ≈25 vs >50; with a single
/// department the crossover flips.
pub fn e3_pointer_chase(department_counts: &[usize]) -> Table {
    let mut t = Table::new(
        "E3 — Example 7.2: est/meas pages — paper plan (1) pointer-join vs (2) pointer-chase",
        vec![
            "departments",
            "plan 1 (join)",
            "plan 2 (chase)",
            "optimizer best",
            "winner",
        ],
    );
    for &departments in department_counts {
        let u = University::generate(UniversityConfig {
            departments,
            ..UniversityConfig::default()
        })
        .expect("site");
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = wvcore::views::university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let dept_name = "Computer Science";

        let join_plan = example_72_plan_1(dept_name);
        let chase_plan = example_72_plan_2(dept_name);
        let join_est = wvcore::cost::estimate(&join_plan, &u.site.scheme, &stats)
            .expect("estimate")
            .cost
            .pages;
        let chase_est = wvcore::cost::estimate(&chase_plan, &u.site.scheme, &stats)
            .expect("estimate")
            .cost
            .pages;
        let join_meas = session
            .execute(&join_plan)
            .expect("run")
            .cost_model_accesses();
        let chase_meas = session
            .execute(&chase_plan)
            .expect("run")
            .cost_model_accesses();
        let best = session.explain(&query_72()).expect("optimize");
        let best_est = best.best().estimate.cost.pages;
        let best_meas = session
            .execute(&best.best().expr)
            .expect("run")
            .cost_model_accesses();
        t.row(vec![
            departments.to_string(),
            format!("{join_est:.1} / {join_meas}"),
            format!("{chase_est:.1} / {chase_meas}"),
            format!("{best_est:.1} / {best_meas}"),
            if join_meas <= chase_meas {
                "join"
            } else {
                "chase"
            }
            .to_string(),
        ]);
    }
    t
}

/// E4 — cost-model validation: estimated vs measured page accesses over
/// the whole query workload on both sites.
pub fn e4_cost_model() -> Table {
    let mut t = Table::new(
        "E4 — §6.2: cost-model validation (estimated vs measured page accesses)",
        vec!["query", "estimated", "measured", "ratio"],
    );
    let u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    for (name, q) in university_workload() {
        let outcome = session.run(&q).expect("query runs");
        let est = outcome.estimated_pages();
        let meas = outcome.measured_pages() as f64;
        t.row(vec![
            name.to_string(),
            format!("{est:.1}"),
            format!("{meas:.0}"),
            format!("{:.2}", est / meas.max(1.0)),
        ]);
    }
    let bib = Bibliography::generate(BibConfig::default()).expect("site");
    let bstats = SiteStatistics::from_site(&bib.site);
    let bcat = wvcore::views::bibliography_catalog();
    let bsource = LiveSource::for_site(&bib.site);
    let bsession = QuerySession::new(&bib.site.scheme, &bcat, &bstats, &bsource);
    for (name, q) in bibliography_workload() {
        let outcome = bsession.run(&q).expect("query runs");
        let est = outcome.estimated_pages();
        let meas = outcome.measured_pages() as f64;
        t.row(vec![
            name.to_string(),
            format!("{est:.1}"),
            format!("{meas:.0}"),
            format!("{:.2}", est / meas.max(1.0)),
        ]);
    }
    t
}

/// E5 — materialized views: per-query maintenance traffic as a function of
/// the fraction of course pages updated between queries, compared with the
/// virtual-view cost and a full eager refresh.
pub fn e5_materialized_views(update_pcts: &[u32]) -> Table {
    use matview::{MatSession, MatStore};
    use rand::SeedableRng;
    let mut t = Table::new(
        "E5 — §8: per-query maintenance cost vs site update rate (query: graduate courses)",
        vec![
            "updated %",
            "light conns",
            "downloads",
            "virtual-view pages",
            "eager refresh pages",
        ],
    );
    for &pct in update_pcts {
        let mut u = University::generate(UniversityConfig::default()).expect("site");
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = wvcore::views::university_catalog();
        let mut store = MatStore::new();
        store
            .materialize(&u.site.scheme, &u.site.server)
            .expect("materialize");
        // the site manager edits a fraction of the course pages
        let mut rng = rand::rngs::StdRng::seed_from_u64(pct as u64 + 1);
        websim::mutation::perturb_text_attr(
            &mut u.site,
            "CoursePage",
            "Description",
            pct as f64 / 100.0,
            1,
            &mut rng,
        )
        .expect("perturb");
        u.site.server.reset_stats();

        let q = ConjunctiveQuery::new("grad courses")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"))
            .project((0, "Description"));
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &q).expect("matview query");

        // baselines
        let source = LiveSource::for_site(&u.site);
        let vsession = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let virt = vsession.run(&q).expect("virtual query");
        let eager = u.site.total_pages();

        t.row(vec![
            pct.to_string(),
            out.counters.light_connections.to_string(),
            out.counters.downloads.to_string(),
            virt.measured_pages().to_string(),
            eager.to_string(),
        ]);
    }
    t
}

/// E5b — materialized views under *structural* updates: one mutation of
/// each kind, then the same query; downloads stay proportional to the
/// pages the mutation actually touched.
pub fn e5_structural() -> Table {
    use matview::{MatSession, MatStore};
    let mut t = Table::new(
        "E5b — §8: maintenance traffic per structural mutation          (query: graduate courses)",
        vec![
            "mutation",
            "light conns",
            "downloads",
            "broken links",
            "rows",
        ],
    );
    let mut u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let mut store = MatStore::new();
    store
        .materialize(&u.site.scheme, &u.site.server)
        .expect("materialize");
    let q = ConjunctiveQuery::new("grad courses")
        .atom("Course")
        .select((0, "Type"), "Graduate")
        .project((0, "CName"));
    type Mutation = Box<dyn FnOnce(&mut University)>;
    let mutations: Vec<(&str, Mutation)> = vec![
        ("none (baseline)", Box::new(|_| {})),
        (
            "edit 1 course description",
            Box::new(|u| u.update_course_description(1, "edited").unwrap()),
        ),
        (
            "add 1 graduate course",
            Box::new(|u| {
                u.add_course(0, "Fall", "Graduate").unwrap();
            }),
        ),
        ("remove 1 course", Box::new(|u| u.remove_course(2).unwrap())),
        (
            "hire 1 professor",
            Box::new(|u| {
                u.add_professor(0, "Assistant").unwrap();
            }),
        ),
    ];
    for (name, mutate) in mutations {
        mutate(&mut u);
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        let out = session.run(&mut store, &q).expect("matview query");
        t.row(vec![
            name.to_string(),
            out.counters.light_connections.to_string(),
            out.counters.downloads.to_string(),
            out.broken_links.to_string(),
            out.relation.len().to_string(),
        ]);
    }
    t
}

/// E6 — optimizer effectiveness: the chosen plan vs the naive plan
/// (no rewriting beyond rule 1) for every workload query.
pub fn e6_optimizer_wins() -> Table {
    let mut t = Table::new(
        "E6 — §6.3: optimized vs naive plans (measured page accesses)",
        vec!["query", "naive", "optimized", "speedup"],
    );
    let u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let source = LiveSource::for_site(&u.site);
    for (name, q) in university_workload() {
        let naive_session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .with_mask(RuleMask::none());
        let naive = naive_session.run(&q).expect("naive").measured_pages();
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let opt = session.run(&q).expect("optimized").measured_pages();
        t.row(vec![
            name.to_string(),
            naive.to_string(),
            opt.to_string(),
            format!("{:.1}×", naive as f64 / opt.max(1) as f64),
        ]);
    }
    t
}

/// E7 — the paper's plan figures, regenerated from our expressions.
pub fn e7_figures() -> String {
    let mut out = String::new();
    out.push_str("── Figure 2: plan for \"Name and Description of all Courses held by members\n");
    out.push_str("   of the Computer Science Department\" (Section 4) ──\n\n");
    out.push_str(&nalg::display::tree(&figure_2_plan()));
    out.push_str("\n── Figure 3: the two plans of Example 7.1 ──\n\n(1d) pointer join:\n");
    out.push_str(&nalg::display::tree(&example_71_plan_1d()));
    out.push_str("\n(2d) pointer chase:\n");
    out.push_str(&nalg::display::tree(&example_71_plan_2d()));
    out.push_str("\n── Figure 4: the two plans of Example 7.2 ──\n\n(1) pointer join:\n");
    out.push_str(&nalg::display::tree(&example_72_plan_1("Computer Science")));
    out.push_str("\n(2) pointer chase:\n");
    out.push_str(&nalg::display::tree(&example_72_plan_2("Computer Science")));
    out
}

/// E8 — rule ablation: estimated pages of the best plan per rule mask, for
/// the two paper queries.
pub fn e8_ablation() -> Table {
    let mut t = Table::new(
        "E8 — rule ablation (estimated pages of best plan)",
        vec!["mask", "example 7.1", "example 7.2", "CS professors"],
    );
    let u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let queries = [query_71(), query_72(), query_cs_profs()];
    let masks: Vec<(&str, RuleMask)> = vec![
        ("full Algorithm 1", RuleMask::all()),
        ("no rule 9 (chase)", RuleMask::all().without_pointer_chase()),
        ("no rule 8 (join)", RuleMask::all().without_pointer_join()),
        (
            "no rules 8+9",
            RuleMask::all()
                .without_pointer_join()
                .without_pointer_chase(),
        ),
        (
            "no rule 6 (σ push)",
            RuleMask::all().without_selection_pushing(),
        ),
        ("no rules 3/5/7 (prune)", RuleMask::all().without_pruning()),
        ("nothing (rule 1 only)", RuleMask::none()),
    ];
    for (name, mask) in masks {
        let mut cells = vec![name.to_string()];
        for q in &queries {
            let opt = Optimizer::new(&u.site.scheme, &catalog, &stats).with_mask(mask);
            match opt.optimize(q) {
                Ok(e) => cells.push(format!("{:.1}", e.best().estimate.cost.pages)),
                Err(_) => cells.push("—".to_string()),
            }
        }
        t.row(cells);
    }
    t
}

/// F1 — the web schemes (Figure 1 analogue) plus instance-level
/// verification of every declared constraint.
pub fn f1_schemes() -> String {
    let mut out = String::new();
    let u = University::generate(UniversityConfig::default()).expect("site");
    out.push_str("── Figure 1: the university web scheme ──\n\n");
    out.push_str(&u.site.scheme.describe());
    let violations = u.site.verify_constraints();
    out.push_str(&format!(
        "\nconstraint verification on the generated instance ({} pages): {} violation(s)\n",
        u.site.total_pages(),
        violations.len()
    ));
    let bib = Bibliography::generate(BibConfig::default()).expect("site");
    out.push_str("\n── the bibliography web scheme (Trier-repository analogue) ──\n\n");
    out.push_str(&bib.site.scheme.describe());
    let violations = bib.site.verify_constraints();
    out.push_str(&format!(
        "\nconstraint verification on the generated instance ({} pages): {} violation(s)\n",
        bib.site.total_pages(),
        violations.len()
    ));
    out
}

/// X1 (extension) — latency hiding with concurrent fetching: the paper's
/// cost model counts pages; a real engine also overlaps network latency.
/// Full course navigation (54 pages) against a server with simulated
/// per-request latency, at increasing connection counts.
pub fn x1_latency_hiding(latency_ms: u64, workers: &[usize]) -> Table {
    let mut t = Table::new(
        format!("X1 — latency hiding: full course navigation, {latency_ms} ms/request simulated"),
        vec![
            "connections",
            "wall-clock ms",
            "speedup",
            "page accesses",
            "result",
        ],
    );
    let u = University::generate(UniversityConfig::default()).expect("site");
    let source = LiveSource::for_site(&u.site);
    let plan = nalg::NalgExpr::entry("SessionListPage")
        .unnest("SesList")
        .follow("ToSes", "SessionPage")
        .unnest("SessionPage.CourseList")
        .follow("SessionPage.CourseList.ToCourse", "CoursePage")
        .project(vec!["CoursePage.CName", "CoursePage.Type"]);
    u.site
        .server
        .set_latency(std::time::Duration::from_millis(latency_ms));
    let mut baseline: Option<(f64, adm::Relation, u64)> = None;
    for &w in workers {
        let evaluator = if w <= 1 {
            Evaluator::new(&u.site.scheme, &source)
        } else {
            Evaluator::new(&u.site.scheme, &source).with_concurrent_fetch(w)
        };
        let t0 = std::time::Instant::now();
        let report = evaluator.eval(&plan).expect("plan evaluates");
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        let (base_ms, base_rel, base_accesses) = baseline
            .get_or_insert_with(|| (elapsed, report.relation.sorted(), report.page_accesses));
        let identical =
            report.relation.sorted() == *base_rel && report.page_accesses == *base_accesses;
        t.row(vec![
            w.to_string(),
            format!("{elapsed:.0}"),
            format!("{:.1}×", *base_ms / elapsed.max(1e-9)),
            report.page_accesses.to_string(),
            if identical { "identical" } else { "DIVERGED" }.to_string(),
        ]);
    }
    u.site.server.set_latency(std::time::Duration::ZERO);
    t
}

/// X2 (extension) — cross-query shared page cache: the E4 university
/// workload, twice, through one session holding a [`nalg::SharedPageCache`].
/// The first pass pays the cold downloads (minus intra-workload sharing);
/// the second pass answers every query from the shared cache — near-zero
/// server GETs — while the cost-model accounting stays byte-for-byte the
/// same (the paper's numbers are cache-blind).
pub fn x2_shared_cache() -> Table {
    x2_shared_cache_detailed().0
}

/// [`x2_shared_cache`] plus raw-JSON extras for `BENCH_X2.json`: the
/// shared cache's own counters (hits, misses, insertions, evictions,
/// invalidations) after both passes — the numbers the table's
/// cost-model column deliberately ignores.
pub fn x2_shared_cache_detailed() -> (Table, Vec<(String, String)>) {
    let mut t = Table::new(
        "X2 — shared page cache: E4 university workload, two passes through one cache",
        vec![
            "pass",
            "server GETs",
            "downloads",
            "shared-cache hits",
            "cost-model pages",
        ],
    );
    let u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let source = LiveSource::for_site(&u.site);
    let cache = nalg::SharedPageCache::default();
    let session =
        QuerySession::new(&u.site.scheme, &catalog, &stats, &source).with_shared_cache(&cache);
    for pass in 1..=2u32 {
        u.site.server.reset_stats();
        let (mut downloads, mut hits, mut model) = (0u64, 0u64, 0u64);
        for (_, q) in university_workload() {
            let outcome = session.run(&q).expect("query runs");
            downloads += outcome.report.page_accesses;
            hits += outcome.report.shared_cache_hits;
            model += outcome.measured_pages();
        }
        t.row(vec![
            pass.to_string(),
            u.site.server.stats().gets.to_string(),
            downloads.to_string(),
            hits.to_string(),
            model.to_string(),
        ]);
    }
    let c = cache.stats();
    let extras = vec![(
        "cache".to_string(),
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"insertions\": {}, \"evictions\": {}, \"invalidations\": {}, \"entries\": {}, \"bytes\": {}}}",
            c.hits, c.misses, c.insertions, c.evictions, c.invalidations, c.entries, c.bytes
        ),
    )];
    (t, extras)
}

/// X3 (extension) — chaos resilience: the X1 course navigation against a
/// server injecting transient faults at increasing per-attempt rates,
/// evaluated through a retrying [`resilience::ResilientSource`]. The
/// paper's accounting (`page accesses`, result rows, server GETs) must be
/// byte-identical at every transient rate — retries live in counters of
/// their own, never added to page accesses. A final row rots a quarter of
/// the course pages permanently and answers in
/// [`nalg::DegradationMode::Partial`], reporting the unreachable set.
pub fn x3_chaos(rates_pct: &[u8]) -> Table {
    x3_chaos_detailed(rates_pct).0
}

/// [`x3_chaos`] plus raw-JSON extras for `BENCH_X3.json`: the summed
/// [`resilience::ResilienceSnapshot`] across every fault plan — the full
/// resilience side-channel (give-ups, budget exhaustion, backoff time)
/// that the table only samples.
pub fn x3_chaos_detailed(rates_pct: &[u8]) -> (Table, Vec<(String, String)>) {
    let (t, total) = x3_chaos_inner(rates_pct);
    let extras = vec![(
        "resilience".to_string(),
        format!(
            "{{\"retries\": {}, \"giveups\": {}, \"breaker_trips\": {}, \"breaker_rejections\": {}, \"budget_exhausted\": {}, \"backoff_us\": {}, \"slow_responses\": {}}}",
            total.retries,
            total.giveups,
            total.breaker_trips,
            total.breaker_rejections,
            total.budget_exhausted,
            total.backoff_us,
            total.slow_responses
        ),
    )];
    (t, extras)
}

fn x3_chaos_inner(rates_pct: &[u8]) -> (Table, resilience::ResilienceSnapshot) {
    use resilience::{ResilientSource, RetryPolicy};
    let mut t = Table::new(
        "X3 — chaos resilience: course navigation under injected faults, retries counted separately",
        vec![
            "fault plan",
            "page accesses",
            "rows",
            "server GETs",
            "injected faults",
            "retries",
            "breaker trips",
            "unreachable",
        ],
    );
    let u = University::generate(UniversityConfig::default()).expect("site");
    let source = LiveSource::for_site(&u.site);
    let plan = nalg::NalgExpr::entry("SessionListPage")
        .unnest("SesList")
        .follow("ToSes", "SessionPage")
        .unnest("SessionPage.CourseList")
        .follow("SessionPage.CourseList.ToCourse", "CoursePage")
        .project(vec!["CoursePage.CName", "CoursePage.Type"]);
    let mut total = resilience::ResilienceSnapshot::default();
    let mut run = |label: String, fault_plan: websim::FaultPlan| {
        u.site.server.set_fault_plan(fault_plan);
        u.site.server.reset_stats();
        let resilient = ResilientSource::new(&source, RetryPolicy::new(4));
        let report = Evaluator::new(&u.site.scheme, &resilient)
            .with_degradation(nalg::DegradationMode::Partial)
            .eval(&plan)
            .expect("plan evaluates");
        let stats = u.site.server.stats();
        let faults = stats.faults.unavailable
            + stats.faults.timeout
            + stats.faults.link_rot
            + stats.faults.slow
            + stats.faults.truncated;
        let res = resilient.stats();
        total.retries += res.retries;
        total.giveups += res.giveups;
        total.breaker_trips += res.breaker_trips;
        total.breaker_rejections += res.breaker_rejections;
        total.budget_exhausted += res.budget_exhausted;
        total.backoff_us += res.backoff_us;
        total.slow_responses += res.slow_responses;
        t.row(vec![
            label,
            report.page_accesses.to_string(),
            report.relation.len().to_string(),
            stats.gets.to_string(),
            faults.to_string(),
            res.retries.to_string(),
            res.breaker_trips.to_string(),
            report.unreachable.len().to_string(),
        ]);
    };
    for &rate in rates_pct {
        let r = f64::from(rate) / 100.0;
        run(
            format!("transient {rate}%"),
            websim::FaultPlan::new(0xC4A05 + u64::from(rate))
                .with_rule(websim::FaultRule::unavailable(r).with_max_per_url(Some(2)))
                .with_rule(websim::FaultRule::timeouts(r).with_max_per_url(Some(1))),
        );
    }
    run(
        "link rot 25% (partial)".to_string(),
        websim::FaultPlan::new(0xC4A05)
            .with_rule(websim::FaultRule::link_rot(0.25).for_scheme("CoursePage")),
    );
    u.site.server.clear_fault_plan();
    (t, total)
}

/// Output of the EXPLAIN ANALYZE smoke run (see [`xa_explain_analyze`]).
pub struct ExplainSmoke {
    /// One summary row per workload query.
    pub table: Table,
    /// `(query label, rendered per-operator table)` for stdout.
    pub renders: Vec<(String, String)>,
    /// Raw-JSON extras for `BENCH_XA.json`: per-query analysis + trace.
    pub extras: Vec<(String, String)>,
    /// The worst per-operator predicted/observed page-access ratio across
    /// the whole workload — the number the CI smoke gate bounds.
    pub worst_ratio: f64,
}

/// XA (extension) — EXPLAIN ANALYZE smoke: the fixed-seed university
/// workload through [`QuerySession::run_analyzed`]. For every query the
/// optimizer's per-operator estimates are joined onto the executed
/// operator spans; the summary table reports predicted vs. observed
/// cost-model pages and the worst per-operator ratio. Because sites,
/// statistics, and traces are all seeded, the numbers are deterministic
/// — CI pins a tolerance on [`ExplainSmoke::worst_ratio`] and fails when
/// the cost model and the evaluator drift apart.
pub fn xa_explain_analyze() -> ExplainSmoke {
    let u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
    let mut t = Table::new(
        "XA — EXPLAIN ANALYZE: predicted vs observed cost-model pages (fixed seed)",
        vec![
            "query",
            "predicted pages",
            "observed pages",
            "downloads",
            "worst op ratio",
        ],
    );
    let mut renders = Vec::new();
    let mut explains = String::from("[");
    let mut worst = 1.0f64;
    for (i, (label, q)) in university_workload().into_iter().enumerate() {
        let a = session.run_analyzed(&q).expect("query runs");
        let ratio = a.analysis.worst_pages_ratio();
        worst = worst.max(ratio);
        t.row(vec![
            label.to_string(),
            format!("{:.1}", a.analysis.predicted_pages),
            a.analysis.observed_pages.to_string(),
            a.outcome.downloads().to_string(),
            format!("{ratio:.2}"),
        ]);
        if i > 0 {
            explains.push(',');
        }
        let jsonl = a.trace.export_jsonl();
        let trace = jsonl.lines().collect::<Vec<_>>().join(",");
        explains.push_str(&format!(
            "{{\"query\": \"{label}\", \"analysis\": {}, \"trace\": [{trace}]}}",
            a.analysis.to_json(),
        ));
        renders.push((label.to_string(), a.analysis.render()));
    }
    explains.push(']');
    ExplainSmoke {
        table: t,
        renders,
        extras: vec![("explains".to_string(), explains)],
        worst_ratio: worst,
    }
}

/// Output of the X4 constraint-drift experiment (see [`x4_drift`]).
pub struct DriftSmoke {
    /// X4a — accuracy vs audit rate, fresh health registry per cell.
    pub accuracy: Table,
    /// X4b — pages vs fallback: full audit, one shared health registry,
    /// two passes (the second shows quarantine paying off).
    pub pages: Table,
    /// Raw-JSON extras for `BENCH_X4.json`: drift counters, the final
    /// [`resilience::ConstraintHealthSnapshot`], quarantined keys, and the
    /// X4b table.
    pub extras: Vec<(String, String)>,
    /// True when at least one constraint was quarantined — the CI smoke
    /// gate asserts this.
    pub quarantine_fired: bool,
    /// True when every query that fell back produced exactly the
    /// default-navigation plan's answer — the CI smoke gate asserts this.
    pub fallbacks_match_naive: bool,
}

/// X4 (extension) — constraint-drift defense: the optimizer's rewrites are
/// licensed by constraints a drifted site silently breaks. A university
/// site drifts under fixed-seed [`websim::DriftPlan`] rules (every
/// `DeptPage.DName` perturbed, 35% of `CoursePage.CName` perturbed, 10% of
/// session course links dropped) while the optimizer keeps its pristine
/// statistics and scheme. X4a sweeps the audit rate and reports detection
/// (checks, violations, fallback) and accuracy against the
/// default-navigation ground truth; X4b runs three queries twice through
/// one [`resilience::ConstraintHealth`] at full audit — pass 1 pays the
/// suspect-plus-fallback double execution, pass 2 shows the quarantine
/// already steering the optimizer to constraint-free plans.
pub fn x4_drift(drift_seed: u64) -> DriftSmoke {
    use resilience::ConstraintHealth;
    use websim::{DriftPlan, DriftRule};
    const AUDIT_SEED: u64 = 0xA0D17;
    // Statistics (and the scheme's constraints) come from the pristine
    // site — the optimizer's knowledge predates the drift.
    let mut u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let drift = DriftPlan::new(drift_seed)
        .with_rule(DriftRule::perturb_attr("DeptPage", "DName", 1.0))
        .with_rule(DriftRule::perturb_attr("CoursePage", "CName", 0.35))
        .with_rule(DriftRule::drop_links(
            "SessionPage",
            &["CourseList", "ToCourse"],
            0.1,
        ))
        .apply(&mut u.site)
        .expect("drift applies");
    let source = LiveSource::for_site(&u.site);

    let queries: Vec<(&str, ConjunctiveQuery)> = vec![
        (
            "cs-dept",
            ConjunctiveQuery::new("cs-dept")
                .atom("Dept")
                .select((0, "DName"), "Computer Science")
                .project((0, "Address")),
        ),
        ("example 7.1", query_71()),
        ("CS professors", query_cs_profs()),
    ];
    // Ground truth per query: the default navigation (rule mask off)
    // assumes no constraints, so it is correct on the drifted site by
    // definition of the view.
    let naives: Vec<wvcore::QueryOutcome> = queries
        .iter()
        .map(|(_, q)| {
            QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
                .with_mask(RuleMask::none())
                .run(q)
                .expect("naive run")
        })
        .collect();
    let audit_numbers = |out: &wvcore::QueryOutcome| -> (u64, u64) {
        let audit = match &out.fallback {
            Some(f) => f.suspect_report.audit.as_ref(),
            None => out.report.audit.as_ref(),
        };
        audit.map_or((0, 0), |a| (a.checks(), a.violation_count()))
    };

    // X4a — accuracy vs audit rate.
    let mut accuracy = Table::new(
        "X4a — drift defense: accuracy vs audit rate (drifted site, fresh registry per cell)",
        vec![
            "query",
            "audit rate",
            "checks",
            "violations",
            "fell back",
            "rows",
            "correct",
            "downloads",
        ],
    );
    for ((label, q), naive) in queries.iter().zip(&naives) {
        let truth = naive.report.relation.sorted();
        for rate in [0.0, 0.25, 0.5, 1.0] {
            let health = ConstraintHealth::new();
            let out = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
                .with_audit(rate, AUDIT_SEED)
                .with_constraint_health(&health)
                .run(q)
                .expect("audited run");
            let (checks, violations) = audit_numbers(&out);
            let correct = out.report.relation.sorted() == truth;
            accuracy.row(vec![
                label.to_string(),
                format!("{rate:.2}"),
                checks.to_string(),
                violations.to_string(),
                if out.fell_back() { "yes" } else { "no" }.to_string(),
                out.report.relation.len().to_string(),
                if correct { "yes" } else { "no" }.to_string(),
                out.total_downloads().to_string(),
            ]);
        }
    }

    // X4b — pages vs fallback through one shared registry, two passes.
    let mut pages = Table::new(
        "X4b — drift defense: pages vs fallback (full audit, one shared registry, two passes)",
        vec![
            "pass",
            "query",
            "fell back",
            "quarantined now",
            "downloads",
            "naive pages",
            "rows",
            "== naive",
        ],
    );
    let health = ConstraintHealth::new();
    let mut fallbacks_match_naive = true;
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
        .with_audit(1.0, AUDIT_SEED)
        .with_constraint_health(&health);
    for pass in 1..=2u32 {
        for ((label, q), naive) in queries.iter().zip(&naives) {
            let out = session.run(q).expect("audited run");
            let matches = out.report.relation.sorted() == naive.report.relation.sorted();
            if out.fell_back() {
                fallbacks_match_naive &= matches;
            }
            pages.row(vec![
                pass.to_string(),
                label.to_string(),
                if out.fell_back() { "yes" } else { "no" }.to_string(),
                health.quarantined().len().to_string(),
                out.total_downloads().to_string(),
                naive.measured_pages().to_string(),
                out.report.relation.len().to_string(),
                if matches { "yes" } else { "no" }.to_string(),
            ]);
        }
    }

    let snap = health.snapshot();
    let quarantined = health.quarantined();
    let keys: Vec<String> = quarantined.iter().map(|k| format!("\"{k}\"")).collect();
    let extras = vec![
        (
            "drift".to_string(),
            format!(
                "{{\"seed\": {drift_seed}, \"perturbed_pages\": {}, \"dropped_links\": {}}}",
                drift.perturbed_pages, drift.dropped_links
            ),
        ),
        (
            "health".to_string(),
            format!(
                "{{\"checks\": {}, \"violations\": {}, \"quarantines\": {}, \"readmissions\": {}, \"fallbacks\": {}, \"quarantined_now\": {}, \"quarantined\": [{}]}}",
                snap.checks,
                snap.violations,
                snap.quarantines,
                snap.readmissions,
                snap.fallbacks,
                snap.quarantined_now,
                keys.join(", ")
            ),
        ),
        ("pages_vs_fallback".to_string(), json::table_json(&pages)),
    ];
    DriftSmoke {
        accuracy,
        pages,
        extras,
        quarantine_fired: snap.quarantines > 0,
        fallbacks_match_naive,
    }
}

/// Graphviz sources for Figure 1 (both schemes) and the Figure 3/4 plans
/// (`harness dot`; pipe into `dot -Tsvg`).
pub fn dot_figures() -> String {
    let mut out = String::new();
    out.push_str("// ── university scheme (Figure 1) ──\n");
    out.push_str(&adm::dot::scheme_to_dot(
        &websim::sitegen::university::university_scheme(),
    ));
    out.push_str("\n// ── bibliography scheme ──\n");
    out.push_str(&adm::dot::scheme_to_dot(
        &websim::sitegen::bibliography::bibliography_scheme(),
    ));
    out.push_str("\n// ── Example 7.2 plan (2), pointer chase ──\n");
    out.push_str(&nalg::display::dot(&example_72_plan_2("Computer Science")));
    out
}

/// The paper's Example 7.1 query.
pub fn query_71() -> ConjunctiveQuery {
    ConjunctiveQuery::new("example 7.1")
        .atom("Professor")
        .atom("CourseInstructor")
        .atom("Course")
        .join((0, "PName"), (1, "PName"))
        .join((1, "CName"), (2, "CName"))
        .select((0, "Rank"), "Full")
        .select((2, "Session"), "Fall")
        .project((2, "CName"))
        .project((2, "Description"))
}

/// The paper's Example 7.2 query.
pub fn query_72() -> ConjunctiveQuery {
    ConjunctiveQuery::new("example 7.2")
        .atom("Course")
        .atom("CourseInstructor")
        .atom("Professor")
        .atom("ProfDept")
        .join((0, "CName"), (1, "CName"))
        .join((1, "PName"), (2, "PName"))
        .join((2, "PName"), (3, "PName"))
        .select((3, "DName"), "Computer Science")
        .select((0, "Type"), "Graduate")
        .project((2, "PName"))
        .project((2, "Email"))
}

/// "Name and e-mail of professors in the CS department" (Section 4's
/// motivating query, via ProfDept).
pub fn query_cs_profs() -> ConjunctiveQuery {
    ConjunctiveQuery::new("CS professors")
        .atom("Professor")
        .atom("ProfDept")
        .join((0, "PName"), (1, "PName"))
        .select((1, "DName"), "Computer Science")
        .project((0, "PName"))
        .project((0, "Email"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_join_wins_example_71() {
        let t = e2_pointer_join(&[50]);
        let row = &t.rows[0];
        assert_eq!(row[4], "join");
    }

    #[test]
    fn e3_chase_wins_at_paper_parameters() {
        let t = e3_pointer_chase(&[3]);
        let row = &t.rows[0];
        assert_eq!(row[4], "chase");
    }

    #[test]
    fn e3_crossover_with_one_department() {
        let t = e3_pointer_chase(&[1, 3]);
        // with a single department the chase loses its selectivity edge
        assert_eq!(t.rows[0][4], "join");
        assert_eq!(t.rows[1][4], "chase");
    }

    #[test]
    fn e1_author_first_is_orders_of_magnitude_worse() {
        let t = e1_intro_strategies(&[200]);
        let row = &t.rows[0];
        let s3: u64 = row[3].split('/').next().unwrap().trim().parse().unwrap();
        let s4: u64 = row[4].split('/').next().unwrap().trim().parse().unwrap();
        assert!(s4 > 20 * s3, "S3 {s3} vs S4 {s4}");
    }

    #[test]
    fn x1_page_accesses_invariant_across_workers() {
        let t = x1_latency_hiding(0, &[1, 4]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(
            t.rows[0][3], t.rows[1][3],
            "concurrency must not change counts"
        );
        assert!(t.rows.iter().all(|r| r[4] == "identical"));
    }

    #[test]
    fn x3_transient_chaos_keeps_paper_accounting_identical() {
        let t = x3_chaos(&[0, 30, 60]);
        assert_eq!(t.rows.len(), 4, "three transient rows + the rot row");
        // zero-fault row: nothing injected, nothing retried
        assert_eq!(t.rows[0][4], "0");
        assert_eq!(t.rows[0][5], "0");
        for i in 0..3 {
            // page accesses, result rows, and server GETs are identical at
            // every transient rate — the chaos shows up only in the fault
            // and retry columns
            assert_eq!(t.rows[i][1], t.rows[0][1], "page accesses, row {i}");
            assert_eq!(t.rows[i][2], t.rows[0][2], "result rows, row {i}");
            assert_eq!(t.rows[i][3], t.rows[0][3], "server GETs, row {i}");
            assert_eq!(t.rows[i][7], "0", "no transient fault loses a page");
            // every injected transient fault is exactly one retry
            assert_eq!(t.rows[i][4], t.rows[i][5], "faults == retries, row {i}");
        }
        assert_ne!(t.rows[2][4], "0", "the 60% plan actually fired");
    }

    #[test]
    fn x3_link_rot_reports_the_unreachable_remainder() {
        let t = x3_chaos(&[0]);
        let baseline_rows: u64 = t.rows[0][2].parse().unwrap();
        let rot = &t.rows[1];
        let rows: u64 = rot[2].parse().unwrap();
        let unreachable: u64 = rot[7].parse().unwrap();
        assert!(unreachable > 0, "a quarter of the courses rot");
        assert_eq!(rows + unreachable, baseline_rows, "subset + missing set");
        assert_eq!(rot[5], "0", "permanent absences are never retried");
    }

    #[test]
    fn x2_second_pass_is_all_cache_hits() {
        let t = x2_shared_cache();
        assert_eq!(t.rows.len(), 2);
        // pass 2: zero server GETs, zero downloads, cache serves everything
        assert_eq!(t.rows[1][1], "0", "warm pass must not GET");
        assert_eq!(t.rows[1][2], "0", "warm pass must not download");
        assert_ne!(t.rows[1][3], "0", "warm pass is served by the cache");
        // the paper's accounting is cache-blind: identical both passes
        assert_eq!(t.rows[0][4], t.rows[1][4]);
    }

    #[test]
    fn e5_structural_downloads_track_mutations() {
        let t = e5_structural();
        let downloads: Vec<u64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert_eq!(downloads[0], 0, "baseline");
        assert_eq!(downloads[1], 1, "description edit");
        assert_eq!(downloads[2], 2, "add course: session page + new page");
        assert_eq!(downloads[3], 1, "remove course: session page");
        assert_eq!(downloads[4], 0, "professor churn invisible to course query");
    }

    #[test]
    fn x4_quarantine_fires_and_fallback_matches_naive() {
        let smoke = x4_drift(3);
        assert!(smoke.quarantine_fired, "drift must trigger quarantine");
        assert!(
            smoke.fallbacks_match_naive,
            "every fallback answers exactly like the default navigation"
        );
        // cs-dept rows: without auditing the pushed selection trusts the
        // stale anchor and answers wrongly; at full audit the violation is
        // caught and the fallback corrects it.
        let cs: Vec<_> = smoke
            .accuracy
            .rows
            .iter()
            .filter(|r| r[0] == "cs-dept")
            .collect();
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[0][1], "0.00");
        assert_eq!(cs[0][6], "no", "unaudited run is wrong on a drifted site");
        let full = cs.last().unwrap();
        assert_eq!(full[1], "1.00");
        assert_eq!(full[4], "yes", "full audit falls back");
        assert_eq!(full[6], "yes", "fallback restores accuracy");
        // X4b pass 2: the quarantine steers the optimizer to constraint-free
        // plans, so nothing is left to audit-fail on the repeat pass.
        let pass2_cs = smoke
            .pages
            .rows
            .iter()
            .find(|r| r[0] == "2" && r[1] == "cs-dept")
            .expect("pass-2 row");
        assert_eq!(pass2_cs[2], "no", "no fallback needed after quarantine");
        assert_eq!(pass2_cs[7], "yes", "and the answer is the naive one");
        assert!(smoke
            .extras
            .iter()
            .any(|(k, v)| k == "health" && v.contains("\"quarantines\"")));
    }

    #[test]
    fn x4_audit_on_pristine_site_changes_nothing() {
        // The zero-drift pin: full-rate auditing on an undrifted site never
        // falls back and leaves results and page accounting byte-identical.
        let u = University::generate(UniversityConfig::default()).expect("site");
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = wvcore::views::university_catalog();
        let source = LiveSource::for_site(&u.site);
        let health = resilience::ConstraintHealth::new();
        let audited = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .with_audit(1.0, 0xA0D17)
            .with_constraint_health(&health);
        let plain = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        for (label, q) in university_workload() {
            let a = audited.run(&q).expect("audited");
            let p = plain.run(&q).expect("plain");
            assert!(!a.fell_back(), "{label}");
            assert_eq!(a.report.relation, p.report.relation, "{label}");
            assert_eq!(a.report.page_accesses, p.report.page_accesses, "{label}");
            assert_eq!(a.measured_pages(), p.measured_pages(), "{label}");
        }
        assert!(health.snapshot().is_quiet());
    }

    #[test]
    fn e7_figures_render() {
        let f = e7_figures();
        assert!(f.contains("Figure 2"));
        assert!(f.contains("pointer chase"));
        assert!(f.contains("DeptListPage"));
    }

    #[test]
    fn f1_verifies_constraints() {
        let f = f1_schemes();
        assert!(f.contains("0 violation(s)"));
        assert!(!f.contains(" 1 violation(s)"));
    }
}
