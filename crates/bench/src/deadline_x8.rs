//! X8 (extension) — tail latency under deadlines, hedging, and
//! relevance-driven cancellation.
//!
//! The paper's cost model 𝒞 prices a query in page accesses; a serving
//! stack is judged in milliseconds at the tail. X8 injects a heavy-tailed
//! per-GET latency profile ([`websim::LatencyProfile`]) into the E4
//! university site and drives one Zipf schedule through four server
//! configurations that differ only in their robustness levers:
//!
//! * **baseline** — no deadline, no hedging: every tail GET is waited
//!   out, so request latency inherits the per-GET tail multiplied by the
//!   pages a session touches;
//! * **deadline** — [`serve::QueryServer::with_deadline_budget`]: past
//!   the budget the request browns out into an exact partial answer
//!   (rows so far + the not-yet-fetched URL set), never blocking the SLO;
//! * **hedge** — [`resilience::HedgePolicy`]: a laggard GET is raced by
//!   one backup request; the winner's bytes are used, the loser is
//!   cancelled, and neither twin is ever double-charged to
//!   `page_accesses`;
//! * **deadline + hedge** — both; hedges recover most tails *within*
//!   the budget, the deadline caps whatever still escapes.
//!
//! Every non-browned answer must match the sequential no-chaos oracle
//! byte-for-byte — rows *and* per-session `page_accesses` — proving the
//! levers are invisible to the paper's numbers. Every browned-out answer
//! must be an honest partial: `deadline_exceeded` set, a non-empty
//! exact unreachable set, and only rows the oracle also has.
//!
//! A relevance micro-check rides along (same scheme as the nalg unit
//! tests): σ[Items.Name='b'] over a 3-item list must cancel exactly
//! `/i/a` and `/i/c`, halving downloads at identical rows — the third
//! lever, measured in saved pages rather than milliseconds.

use crate::serving::zipf_schedule;
use crate::table::Table;
use adm::{Field, PageScheme, Tuple, Url, Value, WebScheme};
use obs::FixedHistogram;
use resilience::HedgePolicy;
use serve::QueryServer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use websim::sitegen::{University, UniversityConfig};
use websim::LatencyProfile;
use wvcore::{ConjunctiveQuery, LiveSource, QuerySession, SiteStatistics};

/// Knobs of the X8 tail-latency benchmark. `Default` is the full scale;
/// CI's `deadline-smoke` runs a reduced copy.
#[derive(Debug, Clone)]
pub struct DeadlineLoadConfig {
    /// Seed of the Zipf schedule and the latency profile.
    pub seed: u64,
    /// Total requests per arm.
    pub requests: usize,
    /// Serving threads; also the admission capacity.
    pub workers: usize,
    /// Pooled-fetch workers per session (deadline preemption and
    /// hedging both live in the pooled drain).
    pub fetch_workers: usize,
    /// Zipf skew exponent `s`.
    pub zipf_s: f64,
    /// Per-GET latency floor (every request pays it).
    pub floor: Duration,
    /// Tail delay added to a slow GET.
    pub tail: Duration,
    /// Probability a GET draws the tail.
    pub tail_rate: f64,
    /// Per-request deadline budget of the deadline arms.
    pub budget: Duration,
}

impl Default for DeadlineLoadConfig {
    fn default() -> Self {
        DeadlineLoadConfig {
            seed: 0xD34D,
            requests: 120,
            workers: 8,
            fetch_workers: 4,
            zipf_s: 1.1,
            floor: Duration::from_micros(200),
            tail: Duration::from_millis(25),
            tail_rate: 0.06,
            budget: Duration::from_millis(5),
        }
    }
}

/// Output of the X8 run (see [`x8_deadline`]).
pub struct DeadlineSmoke {
    /// One row per arm.
    pub table: Table,
    /// Raw-JSON extras for `BENCH_X8.json`.
    pub extras: Vec<(String, String)>,
    /// Complete (non-browned) answers that diverged from the oracle —
    /// the gate asserts zero: the levers must be paper-blind wherever
    /// no deadline fired.
    pub rows_diverged: u64,
    /// Browned-out answers that were *not* honest partials (missing
    /// `deadline_exceeded`, empty unreachable set, or rows outside the
    /// oracle) — the gate asserts zero.
    pub bad_brownouts: u64,
    /// p99.9 latency of the baseline arm, ms.
    pub p999_baseline_ms: f64,
    /// p99.9 latency of the deadline+hedge arm, ms.
    pub p999_guarded_ms: f64,
    /// Brown-outs of the deadline-only arm — the gate wants ≥ 1 (the
    /// chaos must actually bite for the comparison to mean anything).
    pub brown_outs: u64,
    /// Hedge GETs launched across both hedged arms.
    pub hedges: u64,
    /// Hedges whose backup beat the primary.
    pub hedge_wins: u64,
    /// Relevance micro-check: accesses without the monitor.
    pub relevance_plain_accesses: u64,
    /// Relevance micro-check: accesses with cancellation.
    pub relevance_pruned_accesses: u64,
    /// Relevance micro-check: URLs cancelled (must be exactly 2).
    pub relevance_cancelled: u64,
    /// Relevance micro-check: rows identical with and without pruning.
    pub relevance_rows_match: bool,
}

type Oracle = (adm::Relation, u64);

struct ArmOut {
    hist: FixedHistogram,
    wall_ms: f64,
    complete: u64,
    brown_outs: u64,
    diverged: u64,
    bad_brownouts: u64,
}

impl ArmOut {
    fn p999_ms(&self) -> f64 {
        self.hist.value_at_quantile(0.999) as f64 / 1e3
    }

    fn row(&self, label: &str, requests: usize, hedges: u64) -> Vec<String> {
        let pct_ms = |q: f64| self.hist.value_at_quantile(q) as f64 / 1e3;
        vec![
            label.to_string(),
            requests.to_string(),
            format!("{:.0}", self.wall_ms),
            format!("{:.1}", pct_ms(0.50)),
            format!("{:.1}", pct_ms(0.99)),
            format!("{:.1}", pct_ms(0.999)),
            self.complete.to_string(),
            self.brown_outs.to_string(),
            hedges.to_string(),
            (self.diverged + self.bad_brownouts).to_string(),
        ]
    }
}

/// Classifies one served answer. Complete answers must reproduce the
/// oracle exactly; browned-out answers must be honest partials — the
/// deadline flag set, the unfetched frontier reported, and no row the
/// full answer does not have. A browned request with no outcome at all
/// (shed pre-admission or pre-plan with the budget already gone) is a
/// legal empty partial.
fn classify(out: &serve::ServeOutcome, oracle: &Oracle, arm: &ArmStats) {
    if out.brown_out {
        arm.brown_outs.fetch_add(1, Ordering::Relaxed);
        let honest = match &out.outcome {
            None => true,
            Some(o) => {
                o.report.deadline_exceeded
                    && !o.report.unreachable.is_empty()
                    && o.report
                        .relation
                        .rows()
                        .iter()
                        .all(|r| oracle.0.rows().contains(r))
            }
        };
        if !honest {
            arm.bad_brownouts.fetch_add(1, Ordering::Relaxed);
        }
    } else {
        let ok = out.outcome.as_ref().is_some_and(|o| {
            o.report.relation.sorted() == oracle.0 && o.report.page_accesses == oracle.1
        });
        if ok {
            arm.complete.fetch_add(1, Ordering::Relaxed);
        } else {
            arm.diverged.fetch_add(1, Ordering::Relaxed);
        }
    }
}

struct ArmStats {
    complete: AtomicU64,
    brown_outs: AtomicU64,
    diverged: AtomicU64,
    bad_brownouts: AtomicU64,
}

/// Drives one closed-loop schedule through a server with `workers`
/// threads (the X5 closed loop, minus the open-loop variant — queueing
/// is not what X8 measures).
fn drive_arm<S: nalg::PageSource + Sync>(
    server: &QueryServer<'_, S>,
    queries: &[(&'static str, ConjunctiveQuery)],
    schedule: &[usize],
    oracle: &[Oracle],
    workers: usize,
) -> ArmOut {
    let next = AtomicUsize::new(0);
    let stats = ArmStats {
        complete: AtomicU64::new(0),
        brown_outs: AtomicU64::new(0),
        diverged: AtomicU64::new(0),
        bad_brownouts: AtomicU64::new(0),
    };
    let hist = FixedHistogram::new();
    let debug = std::env::var_os("X8_DEBUG").is_some();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (next, stats) = (&next, &stats);
            let hist = hist.clone();
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= schedule.len() {
                    break;
                }
                if debug {
                    eprintln!("x8-debug: worker {w} start req {i} q={}", schedule[i]);
                }
                let t0 = Instant::now();
                let out = server.serve(&queries[schedule[i]].1).expect("serve");
                hist.observe(t0.elapsed().as_micros() as u64);
                classify(&out, &oracle[schedule[i]], stats);
                if debug {
                    eprintln!("x8-debug: worker {w} done  req {i}");
                }
            });
        }
    });
    ArmOut {
        hist,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        complete: stats.complete.load(Ordering::Relaxed),
        brown_outs: stats.brown_outs.load(Ordering::Relaxed),
        diverged: stats.diverged.load(Ordering::Relaxed),
        bad_brownouts: stats.bad_brownouts.load(Ordering::Relaxed),
    }
}

/// Result of the relevance micro-check (see [`relevance_micro`]).
pub struct RelevanceMicro {
    /// Page accesses without the monitor (entry + every item).
    pub plain_accesses: u64,
    /// Page accesses with cancellation (entry + the one relevant item).
    pub pruned_accesses: u64,
    /// URLs the monitor cancelled, sorted.
    pub cancelled: Vec<String>,
    /// Rows identical with and without pruning.
    pub rows_match: bool,
}

/// In-memory page source of the relevance micro-check.
struct MapSource {
    pages: HashMap<Url, Tuple>,
}

impl nalg::PageSource for MapSource {
    fn fetch(&self, url: &Url, _scheme: &str) -> Result<Tuple, nalg::SourceError> {
        self.pages
            .get(url)
            .cloned()
            .ok_or_else(|| nalg::SourceError::NotFound(url.clone()))
    }
}

/// The relevance lever in isolation, at micro scale: a 3-item list page
/// where σ[Items.Name='b'] leaves two Follow targets provably unable to
/// contribute — the monitor must cancel exactly those two, halving
/// downloads at identical rows and an untouched cost model.
pub fn relevance_micro() -> RelevanceMicro {
    let list = PageScheme::new(
        "ListPage",
        vec![Field::list(
            "Items",
            vec![Field::text("Name"), Field::link("ToItem", "ItemPage")],
        )],
    )
    .expect("list scheme");
    let item = PageScheme::new("ItemPage", vec![Field::text("Name"), Field::text("Kind")])
        .expect("item scheme");
    let ws = WebScheme::builder()
        .scheme(list)
        .scheme(item)
        .entry_point("ListPage", "/list.html")
        .build()
        .expect("web scheme");
    let mut pages = HashMap::new();
    pages.insert(
        Url::new("/list.html"),
        Tuple::new().with_list(
            "Items",
            vec![
                Tuple::new()
                    .with("Name", "a")
                    .with("ToItem", Value::link("/i/a")),
                Tuple::new()
                    .with("Name", "b")
                    .with("ToItem", Value::link("/i/b")),
                Tuple::new()
                    .with("Name", "c")
                    .with("ToItem", Value::link("/i/c")),
            ],
        ),
    );
    for (n, k) in [("a", "x"), ("b", "y"), ("c", "x")] {
        pages.insert(
            Url::new(format!("/i/{n}")),
            Tuple::new().with("Name", n).with("Kind", k),
        );
    }
    let src = MapSource { pages };
    let e = nalg::NalgExpr::entry("ListPage")
        .unnest("Items")
        .follow("ToItem", "ItemPage")
        .select(nalg::Pred::eq("Items.Name", "b"));
    let plain = nalg::Evaluator::new(&ws, &src).eval(&e).expect("plain");
    let pruned = nalg::Evaluator::new(&ws, &src)
        .with_relevance_cancel()
        .eval(&e)
        .expect("pruned");
    RelevanceMicro {
        plain_accesses: plain.page_accesses,
        pruned_accesses: pruned.page_accesses,
        cancelled: pruned.cancelled.iter().map(|u| u.to_string()).collect(),
        rows_match: pruned.relation.sorted() == plain.relation.sorted(),
    }
}

/// X8 — see the module docs. One fixed-seed site under a heavy-tailed
/// latency profile, four closed-loop arms over one Zipf schedule:
/// baseline, deadline, hedge, deadline+hedge. The oracle runs before
/// the profile is installed, so it prices the paper's rows and page
/// accesses, not the chaos.
pub fn x8_deadline(cfg: &DeadlineLoadConfig) -> DeadlineSmoke {
    let u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let queries = crate::fixtures::university_workload();
    let schedule = zipf_schedule(cfg.seed, queries.len(), cfg.requests, cfg.zipf_s);
    let live = LiveSource::for_site(&u.site);

    // The oracle: each distinct query once, sequentially, before any
    // latency is injected — rows and page accesses every complete
    // served answer must reproduce, and the row superset every honest
    // brown-out must stay inside.
    let oracle: Vec<Oracle> = queries
        .iter()
        .map(|(_, q)| {
            let out = QuerySession::new(&u.site.scheme, &catalog, &stats, &live)
                .run(q)
                .expect("oracle run");
            (out.report.relation.sorted(), out.report.page_accesses)
        })
        .collect();

    let profile = LatencyProfile {
        floor_us: cfg.floor.as_micros() as u64,
        tail_us: cfg.tail.as_micros() as u64,
        tail_rate: cfg.tail_rate,
        seed: cfg.seed,
    };
    let budget_us = cfg.budget.as_micros() as u64;
    // Hedge at half the budget: late enough that pool-queue wait rarely
    // masquerades as a tail, early enough that a hedged GET (one floor
    // round-trip) still lands inside the budget — a recovered tail
    // completes instead of browning out.
    let hedge_delay_us = (budget_us / 2).max(1);
    u.site.server.set_latency_profile(profile);

    let mut t = Table::new(
        "X8 — tail latency: deadline budget, hedged GETs (heavy-tailed chaos)",
        vec![
            "config",
            "requests",
            "wall ms",
            "p50 ms",
            "p99 ms",
            "p99.9 ms",
            "complete",
            "brown-outs",
            "hedges",
            "bad answers",
        ],
    );

    // Serves each distinct query once, unmeasured, so the arm's plan
    // cache is warm before timing starts. Rule 1–9 enumeration is pure
    // CPU — a deadline cannot sever it and hedging cannot hide it — so
    // an unwarmed first hit would put one planning spike in every
    // arm's tail and the p99.9 columns would compare the optimizer,
    // not the fetch-path levers X8 isolates.
    let debug = std::env::var_os("X8_DEBUG").is_some();
    let stage = |s: &str| {
        if debug {
            eprintln!("x8-debug: stage {s}");
        }
    };
    let warm = |server: &QueryServer<'_, LiveSource>| {
        for (i, (_, q)) in queries.iter().enumerate() {
            if debug {
                eprintln!("x8-debug: warm query {i}");
            }
            let _ = server.serve(q).expect("warmup serve");
        }
    };

    stage("baseline arm");
    // 1 — baseline: tails are waited out in full.
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &live)
        .with_admission_capacity(cfg.workers)
        .with_concurrent_fetch(cfg.fetch_workers);
    warm(&server);
    u.site.server.reset_stats();
    stage("drive baseline");
    let baseline = drive_arm(&server, &queries, &schedule, &oracle, cfg.workers);
    let baseline_gets = u.site.server.stats().gets;
    t.row(baseline.row("baseline", cfg.requests, 0));

    stage("deadline arm");
    // 2 — deadline only: requests brown out at the budget.
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &live)
        .with_admission_capacity(cfg.workers)
        .with_concurrent_fetch(cfg.fetch_workers)
        .with_deadline_budget(budget_us);
    warm(&server);
    u.site.server.reset_stats();
    stage("drive deadline");
    let deadline = drive_arm(&server, &queries, &schedule, &oracle, cfg.workers);
    let deadline_gets = u.site.server.stats().gets;
    t.row(deadline.row("deadline", cfg.requests, 0));

    stage("hedge arm");
    // 3 — hedge only: tails are raced, nothing browns out.
    let hedge_policy = HedgePolicy::new(hedge_delay_us).with_jitter_seed(cfg.seed);
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &live)
        .with_admission_capacity(cfg.workers)
        .with_concurrent_fetch(cfg.fetch_workers)
        .with_hedging(hedge_policy.config());
    warm(&server);
    u.site.server.reset_stats();
    let hedge_warm = hedge_policy.snapshot();
    stage("drive hedge");
    let hedged = drive_arm(&server, &queries, &schedule, &oracle, cfg.workers);
    let hedged_gets = u.site.server.stats().gets;
    let hedge_snap = hedge_policy.snapshot().since(&hedge_warm);
    t.row(hedged.row("hedge", cfg.requests, hedge_snap.hedges));

    stage("guarded arm");
    // 4 — deadline + hedge: hedges recover tails inside the budget,
    // the deadline caps the stragglers.
    let guarded_policy = HedgePolicy::new(hedge_delay_us).with_jitter_seed(cfg.seed ^ 1);
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &live)
        .with_admission_capacity(cfg.workers)
        .with_concurrent_fetch(cfg.fetch_workers)
        .with_deadline_budget(budget_us)
        .with_hedging(guarded_policy.config());
    warm(&server);
    u.site.server.reset_stats();
    let guarded_warm = guarded_policy.snapshot();
    stage("drive guarded");
    let guarded = drive_arm(&server, &queries, &schedule, &oracle, cfg.workers);
    let guarded_gets = u.site.server.stats().gets;
    let guarded_snap = guarded_policy.snapshot().since(&guarded_warm);
    t.row(guarded.row("deadline + hedge", cfg.requests, guarded_snap.hedges));

    u.site.server.clear_latency_profile();

    stage("relevance micro");
    let rel = relevance_micro();
    let extras = vec![
        (
            "latency_profile".to_string(),
            format!(
                "{{\"floor_us\": {}, \"tail_us\": {}, \"tail_rate\": {}, \"seed\": {}}}",
                profile.floor_us, profile.tail_us, profile.tail_rate, profile.seed
            ),
        ),
        (
            "deadline".to_string(),
            format!(
                "{{\"budget_us\": {budget_us}, \"brown_outs\": {}, \"guarded_brown_outs\": {}, \"p999_baseline_ms\": {:.2}, \"p999_deadline_ms\": {:.2}, \"p999_hedge_ms\": {:.2}, \"p999_guarded_ms\": {:.2}}}",
                deadline.brown_outs,
                guarded.brown_outs,
                baseline.p999_ms(),
                deadline.p999_ms(),
                hedged.p999_ms(),
                guarded.p999_ms(),
            ),
        ),
        (
            "hedging".to_string(),
            format!(
                "{{\"delay_us\": {hedge_delay_us}, \"hedges\": {}, \"wins\": {}, \"cancelled\": {}, \"guarded_hedges\": {}, \"guarded_wins\": {}}}",
                hedge_snap.hedges,
                hedge_snap.hedge_wins,
                hedge_snap.hedge_cancelled,
                guarded_snap.hedges,
                guarded_snap.hedge_wins,
            ),
        ),
        (
            "gets".to_string(),
            format!(
                "{{\"baseline\": {baseline_gets}, \"deadline\": {deadline_gets}, \"hedge\": {hedged_gets}, \"guarded\": {guarded_gets}}}"
            ),
        ),
        (
            "relevance".to_string(),
            format!(
                "{{\"plain_accesses\": {}, \"pruned_accesses\": {}, \"cancelled\": [{}], \"rows_match\": {}}}",
                rel.plain_accesses,
                rel.pruned_accesses,
                rel.cancelled
                    .iter()
                    .map(|u| format!("\"{u}\""))
                    .collect::<Vec<_>>()
                    .join(", "),
                rel.rows_match,
            ),
        ),
    ];

    DeadlineSmoke {
        table: t,
        extras,
        rows_diverged: baseline.diverged + deadline.diverged + hedged.diverged + guarded.diverged,
        bad_brownouts: baseline.bad_brownouts
            + deadline.bad_brownouts
            + hedged.bad_brownouts
            + guarded.bad_brownouts,
        p999_baseline_ms: baseline.p999_ms(),
        p999_guarded_ms: guarded.p999_ms(),
        brown_outs: deadline.brown_outs,
        hedges: hedge_snap.hedges + guarded_snap.hedges,
        hedge_wins: hedge_snap.hedge_wins + guarded_snap.hedge_wins,
        relevance_plain_accesses: rel.plain_accesses,
        relevance_pruned_accesses: rel.pruned_accesses,
        relevance_cancelled: rel.cancelled.len() as u64,
        relevance_rows_match: rel.rows_match,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relevance_micro_prunes_exactly_the_dead_urls() {
        let rel = relevance_micro();
        assert_eq!(rel.plain_accesses, 4, "entry + 3 items");
        assert_eq!(rel.pruned_accesses, 2, "entry + /i/b only");
        assert_eq!(rel.cancelled, vec!["/i/a", "/i/c"]);
        assert!(rel.rows_match);
    }

    #[test]
    fn x8_small_load_brownouts_are_honest_and_hedges_fire() {
        let cfg = DeadlineLoadConfig {
            requests: 32,
            workers: 4,
            fetch_workers: 4,
            tail: Duration::from_millis(15),
            budget: Duration::from_millis(4),
            ..DeadlineLoadConfig::default()
        };
        let smoke = x8_deadline(&cfg);
        assert_eq!(smoke.table.rows.len(), 4);
        assert_eq!(smoke.rows_diverged, 0, "complete answers must be exact");
        assert_eq!(smoke.bad_brownouts, 0, "partials must be honest");
        assert!(
            smoke.brown_outs >= 1,
            "15ms tails at a 4ms budget must brown out: {}",
            smoke.brown_outs
        );
        assert!(smoke.hedges >= 1, "6% tails over ~32 requests must hedge");
        let keys: Vec<&str> = smoke.extras.iter().map(|(k, _)| k.as_str()).collect();
        for k in [
            "latency_profile",
            "deadline",
            "hedging",
            "gets",
            "relevance",
        ] {
            assert!(keys.contains(&k), "missing extra {k}");
        }
    }

    #[test]
    fn x8_without_chaos_never_browns_out() {
        let cfg = DeadlineLoadConfig {
            requests: 16,
            workers: 4,
            fetch_workers: 2,
            tail_rate: 0.0,
            tail: Duration::ZERO,
            budget: Duration::from_secs(5),
            ..DeadlineLoadConfig::default()
        };
        let smoke = x8_deadline(&cfg);
        assert_eq!(smoke.rows_diverged, 0);
        assert_eq!(smoke.bad_brownouts, 0);
        assert_eq!(smoke.brown_outs, 0, "no chaos, huge budget: no brown-outs");
    }
}
