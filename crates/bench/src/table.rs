//! A minimal padded-text table for experiment output.

use std::fmt;

/// A titled table with a header and string rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<impl Into<String>>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header arity).
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders as padded text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = format!("{}\n", self.title);
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "─".repeat(*w))
                .collect::<Vec<_>>()
                .join("──"),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = format!("**{}**\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded() {
        let mut t = Table::new("demo", vec!["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into()]); // short row padded
        let s = t.render();
        assert!(s.starts_with("demo\n"));
        assert!(s.contains("a    long-header"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("demo", vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render_markdown();
        assert!(s.contains("| a | b |"));
        assert!(s.contains("| 1 | 2 |"));
    }
}
