//! X5 (extension) — the serving-layer load benchmark.
//!
//! The paper costs one query in isolation; a server fields many concurrent
//! sessions whose popularity is heavily skewed. X5 drives a seeded
//! Zipf-distributed request stream over the E4 university workload through
//! [`serve::QueryServer`] and isolates the two serving-layer levers:
//!
//! * **plan cache** — repeated queries skip rule 1–9 enumeration (the hit
//!   rate is the table's second-to-last column);
//! * **single-flight coalescing** — concurrent sessions chasing the same
//!   hot URL share one server GET ([`nalg::CoalescingSource`]); the GET
//!   delta between the coalesce-off and coalesce-on rows is pure
//!   coalescing, because the plan cache never touches GET counts.
//!
//! Three load shapes run over one identical schedule: a sequential
//! uncached baseline (also the row/page-access oracle), a closed loop
//! (each of W workers fires its next request the moment the previous
//! answer lands), and an open loop (arrivals pinned to a fixed schedule
//! regardless of completions, so latency includes queueing). Every served
//! answer is checked against the oracle — the `diverged` column must stay
//! zero: coalescing and plan caching are invisible to the paper's rows
//! *and* to each session's `page_accesses`.

use crate::fixtures::university_workload;
use crate::table::Table;
use obs::{FixedHistogram, FlightRecorder, LatencyObjective, PhaseBreakdown, SloTracker};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::QueryServer;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use websim::sitegen::{University, UniversityConfig};
use wvcore::{ConjunctiveQuery, LiveSource, QuerySession, SiteStatistics};

/// Knobs of the X5 load generator. `Default` is the full benchmark scale;
/// CI's `serve-smoke` runs a reduced copy.
#[derive(Debug, Clone)]
pub struct ServeLoadConfig {
    /// Seed of the Zipf schedule (and nothing else — sites are fixed).
    pub seed: u64,
    /// Total requests per load shape.
    pub requests: usize,
    /// Serving threads; also the admission capacity (nothing is shed).
    pub workers: usize,
    /// Zipf skew exponent `s` (weight of rank `r` is `1/r^s`).
    pub zipf_s: f64,
    /// Simulated server latency per GET — the overlap that coalescing
    /// and latency hiding exploit.
    pub latency: Duration,
    /// Open-loop inter-arrival gap.
    pub open_loop_interval: Duration,
    /// Per-request latency objective for the observed (open-loop) run:
    /// a request over this threshold breaches the SLO and fires the
    /// flight recorder. CI's `obs-smoke` shrinks it to force breaches.
    pub slo: Duration,
    /// Latency-only chaos on the observed run: with probability
    /// `chaos_slow_rate` a GET is delayed by `chaos_slow_delay`
    /// ([`websim::FaultRule::slow`], seeded by `seed`). Slowdowns never
    /// change bytes, so the divergence gate still holds — this is how
    /// `--obs-check` guarantees an SLO breach and a flight dump.
    pub chaos_slow_rate: f64,
    /// Injected delay per slowed GET (see `chaos_slow_rate`).
    pub chaos_slow_delay: Duration,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            seed: 0x5E41E,
            requests: 120,
            workers: 8,
            zipf_s: 1.1,
            latency: Duration::from_millis(2),
            open_loop_interval: Duration::from_millis(5),
            slo: Duration::from_millis(250),
            chaos_slow_rate: 0.0,
            chaos_slow_delay: Duration::from_millis(20),
        }
    }
}

/// Output of the X5 run (see [`x5_serving`]).
pub struct ServeSmoke {
    /// One row per load shape.
    pub table: Table,
    /// Raw-JSON extras for `BENCH_X5.json`: GET counts per shape,
    /// plan-cache counters, coalescing counters, per-phase latency
    /// totals, the SLO snapshot, and flight-recorder trigger counts.
    pub extras: Vec<(String, String)>,
    /// Plan-cache hit rate of the closed-loop coalesce-on run — the CI
    /// smoke gate asserts it is positive.
    pub hit_rate: f64,
    /// Served answers that diverged from the sequential-uncached oracle
    /// (rows or per-session `page_accesses`) — the gate asserts zero.
    pub rows_diverged: u64,
    /// Server GETs saved by coalescing: `(off - on) / off`, in percent,
    /// at identical schedule and worker count.
    pub gets_saved_pct: f64,
    /// Full request traces of the observed open-loop run, one JSON line
    /// per request sorted by request id (`TRACE_X5.jsonl`).
    pub trace_jsonl: String,
    /// Every flight-recorder dump taken during the observed run, as
    /// concatenated JSON-lines exports (`FLIGHT_X5.jsonl`); empty when
    /// nothing triggered.
    pub flight_jsonl: String,
    /// Flight dumps taken during the observed run.
    pub flight_dumps: usize,
    /// True when any SLO burn window ended the run over budget.
    pub slo_burning: bool,
    /// Summed per-phase latency of the observed run's requests.
    pub phase_totals: PhaseBreakdown,
}

/// A seeded Zipf schedule: `count` indices into `0..n`, rank `r`
/// weighted `1/(r+1)^s`. Hand-rolled inverse-CDF sampling — the offline
/// `rand` shim has no distribution zoo.
pub(crate) fn zipf_schedule(seed: u64, n: usize, count: usize, s: f64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 1..=n {
        total += 1.0 / (rank as f64).powf(s);
        cdf.push(total);
    }
    (0..count)
        .map(|_| {
            let x = rng.gen_range(0.0..total);
            cdf.iter().position(|&c| x < c).unwrap_or(n - 1)
        })
        .collect()
}

struct LoadOut {
    /// Fixed-precision latency histogram (µs): the p50/p99/p99.9 columns
    /// read it, so their quantization error is bounded at ~3.1% instead
    /// of the coarse sorted-index estimate older runs reported.
    hist: FixedHistogram,
    diverged: u64,
    wall_ms: f64,
    /// Summed per-phase latency across requests that reported phases
    /// (only the observed run does; zero elsewhere).
    phases: PhaseBreakdown,
}

impl LoadOut {
    fn row(&self, label: &str, requests: usize, gets: u64, hit_rate: Option<f64>) -> Vec<String> {
        let pct_ms = |q: f64| self.hist.value_at_quantile(q) as f64 / 1e3;
        vec![
            label.to_string(),
            requests.to_string(),
            format!("{:.0}", self.wall_ms),
            format!("{:.0}", requests as f64 / (self.wall_ms / 1e3).max(1e-9)),
            format!("{:.1}", pct_ms(0.50)),
            format!("{:.1}", pct_ms(0.99)),
            format!("{:.1}", pct_ms(0.999)),
            gets.to_string(),
            hit_rate.map_or("—".to_string(), |r| format!("{:.0}%", r * 100.0)),
            self.diverged.to_string(),
        ]
    }
}

fn add_phases(acc: &mut PhaseBreakdown, p: &PhaseBreakdown) {
    acc.queue_us += p.queue_us;
    acc.plan_us += p.plan_us;
    acc.fetch_us += p.fetch_us;
    acc.eval_us += p.eval_us;
    acc.view_us += p.view_us;
}

type Oracle = (adm::Relation, u64);

fn check(outcome: Option<&wvcore::QueryOutcome>, oracle: &Oracle, diverged: &AtomicU64) {
    let ok = outcome.is_some_and(|o| {
        o.report.relation.sorted() == oracle.0 && o.report.page_accesses == oracle.1
    });
    if !ok {
        diverged.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drives one schedule through a server with `workers` threads. Closed
/// loop (`open_loop_interval: None`): a shared queue, each worker fires
/// its next request on completion. Open loop: request `i` is due at
/// `start + i·interval` whatever the server's progress, and its latency
/// is measured from that due time (queueing included).
fn drive<S: nalg::PageSource + Sync>(
    server: &QueryServer<'_, S>,
    queries: &[(&'static str, ConjunctiveQuery)],
    schedule: &[usize],
    oracle: &[Oracle],
    workers: usize,
    open_loop_interval: Option<Duration>,
) -> LoadOut {
    let next = AtomicUsize::new(0);
    let diverged = AtomicU64::new(0);
    let hist = FixedHistogram::new();
    let phases = Mutex::new(PhaseBreakdown::default());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (next, diverged, phases) = (&next, &diverged, &phases);
            let hist = hist.clone();
            scope.spawn(move || {
                let mut local = PhaseBreakdown::default();
                if let Some(interval) = open_loop_interval {
                    let mut i = w;
                    while i < schedule.len() {
                        let due = start + interval * (i as u32);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        // Scheduling delay behind slower requests: how
                        // late this request started past its due time.
                        let queue_us =
                            Instant::now().saturating_duration_since(due).as_micros() as u64;
                        let out = server.serve(&queries[schedule[i]].1).expect("serve");
                        hist.observe(
                            Instant::now().saturating_duration_since(due).as_micros() as u64
                        );
                        if let Some(mut p) = out.phases {
                            p.queue_us = queue_us;
                            add_phases(&mut local, &p);
                        }
                        check(out.outcome.as_ref(), &oracle[schedule[i]], diverged);
                        i += workers;
                    }
                } else {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= schedule.len() {
                            break;
                        }
                        let t0 = Instant::now();
                        let out = server.serve(&queries[schedule[i]].1).expect("serve");
                        hist.observe(t0.elapsed().as_micros() as u64);
                        if let Some(p) = out.phases {
                            add_phases(&mut local, &p);
                        }
                        check(out.outcome.as_ref(), &oracle[schedule[i]], diverged);
                    }
                }
                add_phases(&mut phases.lock().unwrap(), &local);
            });
        }
    });
    LoadOut {
        hist,
        diverged: diverged.load(Ordering::Relaxed),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        phases: phases.into_inner().unwrap(),
    }
}

/// X5 — see the module docs. One fixed-seed site, one Zipf schedule,
/// four runs over it: sequential uncached (the oracle and timing
/// baseline), closed loop without and with coalescing, open loop with
/// coalescing. The plan cache is on for every served run.
pub fn x5_serving(cfg: &ServeLoadConfig) -> ServeSmoke {
    let u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let queries = university_workload();
    let schedule = zipf_schedule(cfg.seed, queries.len(), cfg.requests, cfg.zipf_s);
    let live = LiveSource::for_site(&u.site);

    // The oracle: each distinct query once, sequentially, no caches, no
    // latency — the rows and per-session page accesses every served
    // answer must reproduce byte-for-byte.
    let oracle: Vec<Oracle> = queries
        .iter()
        .map(|(_, q)| {
            let out = QuerySession::new(&u.site.scheme, &catalog, &stats, &live)
                .run(q)
                .expect("oracle run");
            (out.report.relation.sorted(), out.report.page_accesses)
        })
        .collect();

    let mut t = Table::new(
        "X5 — serving layer: Zipf load, plan cache + single-flight coalescing",
        vec![
            "config",
            "requests",
            "wall ms",
            "req/s",
            "p50 ms",
            "p99 ms",
            "p99.9 ms",
            "server GETs",
            "plan hit rate",
            "diverged",
        ],
    );
    u.site.server.set_latency(cfg.latency);

    // 1 — sequential uncached: one plain session per request, in
    // schedule order, re-optimizing every time.
    u.site.server.reset_stats();
    let seq = {
        let diverged = AtomicU64::new(0);
        let hist = FixedHistogram::new();
        let start = Instant::now();
        for &qi in &schedule {
            let t0 = Instant::now();
            let out = QuerySession::new(&u.site.scheme, &catalog, &stats, &live)
                .run(&queries[qi].1)
                .expect("sequential run");
            hist.observe(t0.elapsed().as_micros() as u64);
            check(Some(&out), &oracle[qi], &diverged);
        }
        LoadOut {
            hist,
            diverged: diverged.load(Ordering::Relaxed),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
            phases: PhaseBreakdown::default(),
        }
    };
    let seq_gets = u.site.server.stats().gets;
    t.row(seq.row("sequential uncached", cfg.requests, seq_gets, None));

    // 2 — closed loop, coalescing OFF (plan cache on).
    u.site.server.reset_stats();
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &live)
        .with_admission_capacity(cfg.workers);
    let off = drive(&server, &queries, &schedule, &oracle, cfg.workers, None);
    let off_hit_rate = server.stats().plan_cache.hit_rate();
    let off_gets = u.site.server.stats().gets;
    t.row(off.row(
        "closed loop, coalesce off",
        cfg.requests,
        off_gets,
        Some(off_hit_rate),
    ));

    // 3 — closed loop, coalescing ON: the GET delta vs row 2 is pure
    // single-flight sharing (identical schedule and workers).
    u.site.server.reset_stats();
    let coalesced = nalg::CoalescingSource::new(&live);
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &coalesced)
        .with_admission_capacity(cfg.workers);
    let on = drive(&server, &queries, &schedule, &oracle, cfg.workers, None);
    let on_stats = server.stats();
    let on_gets = u.site.server.stats().gets;
    let coalesce = coalesced.stats();
    t.row(on.row(
        "closed loop, coalesce on",
        cfg.requests,
        on_gets,
        Some(on_stats.plan_cache.hit_rate()),
    ));

    // 4 — open loop, coalescing ON: fixed arrivals, latency includes
    // queueing behind slower requests. This run is fully observed:
    // request-scoped tracing, the latency SLO, and the flight recorder
    // ride along (the oracle check still pins rows and accesses, so the
    // run itself proves tracing is paper-blind under load).
    u.site.server.reset_stats();
    if cfg.chaos_slow_rate > 0.0 {
        u.site
            .server
            .set_fault_plan(
                websim::FaultPlan::new(cfg.seed).with_rule(websim::FaultRule::slow(
                    cfg.chaos_slow_rate,
                    cfg.chaos_slow_delay.as_micros() as u64,
                )),
            );
    }
    let coalesced_open = nalg::CoalescingSource::new(&live);
    let slo = SloTracker::new(LatencyObjective::new(
        "serve",
        cfg.slo.as_micros() as u64,
        0.99,
    ));
    let recorder = FlightRecorder::with_capacity(cfg.requests.max(16), 8);
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &coalesced_open)
        .with_admission_capacity(cfg.workers)
        .with_trace(cfg.seed)
        .with_slo(&slo)
        .with_flight_recorder(&recorder);
    let open = drive(
        &server,
        &queries,
        &schedule,
        &oracle,
        cfg.workers,
        Some(cfg.open_loop_interval),
    );
    let open_gets = u.site.server.stats().gets;
    t.row(open.row(
        "open loop, coalesce on",
        cfg.requests,
        open_gets,
        Some(server.stats().plan_cache.hit_rate()),
    ));
    u.site.server.clear_fault_plan();
    u.site.server.set_latency(Duration::ZERO);

    let gets_saved_pct = if off_gets > 0 {
        100.0 * (off_gets.saturating_sub(on_gets)) as f64 / off_gets as f64
    } else {
        0.0
    };
    let pc = on_stats.plan_cache;
    let slo_snapshot = slo.snapshot();
    let dumps = recorder.dumps();
    let flight_jsonl: String = dumps.iter().map(|d| d.export_jsonl()).collect();
    let triggers: String = recorder
        .fired()
        .iter()
        .map(|(k, n)| format!("\"{}\": {n}", k.as_str()))
        .collect::<Vec<_>>()
        .join(", ");
    let p = &open.phases;
    let n = cfg.requests.max(1) as u64;
    let extras = vec![
        (
            "histogram".to_string(),
            format!("\"{}\"", obs::hist::RESOLUTION),
        ),
        (
            "phases".to_string(),
            format!(
                "{{\"requests\": {}, \"totals\": {}, \"mean_us\": {{\"queue\": {}, \"plan\": {}, \"fetch\": {}, \"eval\": {}, \"view\": {}}}}}",
                cfg.requests,
                p.to_json(),
                p.queue_us / n,
                p.plan_us / n,
                p.fetch_us / n,
                p.eval_us / n,
                p.view_us / n,
            ),
        ),
        ("slo".to_string(), slo_snapshot.to_json()),
        (
            "trace".to_string(),
            format!(
                "{{\"requests_traced\": {}, \"flight_dumps\": {}, \"triggers\": {{{triggers}}}}}",
                recorder.recent().len(),
                dumps.len(),
            ),
        ),
        (
            "gets".to_string(),
            format!(
                "{{\"sequential\": {seq_gets}, \"coalesce_off\": {off_gets}, \"coalesce_on\": {on_gets}, \"open_loop\": {open_gets}, \"saved_pct\": {gets_saved_pct:.1}}}"
            ),
        ),
        (
            "plan_cache".to_string(),
            format!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"invalidations\": {}, \"quarantine_rejections\": {}, \"hit_rate\": {:.3}}}",
                pc.hits, pc.misses, pc.evictions, pc.invalidations, pc.quarantine_rejections,
                pc.hit_rate()
            ),
        ),
        (
            "coalescing".to_string(),
            format!(
                "{{\"leaders\": {}, \"followers\": {}, \"saved_gets\": {}}}",
                coalesce.leaders,
                coalesce.followers,
                coalesce.saved_gets()
            ),
        ),
    ];
    ServeSmoke {
        table: t,
        extras,
        hit_rate: pc.hit_rate(),
        rows_diverged: seq.diverged + off.diverged + on.diverged + open.diverged,
        gets_saved_pct,
        trace_jsonl: recorder.export_recent_jsonl(),
        flight_jsonl,
        flight_dumps: dumps.len(),
        slo_burning: slo_snapshot.burning(),
        phase_totals: open.phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_schedule_is_seeded_and_skewed() {
        let a = zipf_schedule(7, 7, 200, 1.1);
        assert_eq!(a, zipf_schedule(7, 7, 200, 1.1));
        assert_ne!(a, zipf_schedule(8, 7, 200, 1.1));
        let head = a.iter().filter(|&&q| q == 0).count();
        let tail = a.iter().filter(|&&q| q == 6).count();
        assert!(head > tail, "rank 1 ({head}) must beat rank 7 ({tail})");
        assert!(a.iter().all(|&q| q < 7));
    }

    #[test]
    fn percentile_columns_read_the_fixed_histogram() {
        let h = FixedHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v * 100); // 0.1ms .. 100ms
        }
        let out = LoadOut {
            hist: h,
            diverged: 0,
            wall_ms: 10.0,
            phases: PhaseBreakdown::default(),
        };
        let row = out.row("x", 1000, 0, None);
        let p50: f64 = row[4].parse().unwrap();
        let p99: f64 = row[5].parse().unwrap();
        // Within the histogram's 3.1% resolution of the true 50ms/99ms.
        assert!((p50 - 50.0).abs() <= 50.0 / 30.0, "p50 {p50}");
        assert!((p99 - 99.0).abs() <= 99.0 / 30.0, "p99 {p99}");
    }

    #[test]
    fn x5_small_load_is_divergence_free_and_cache_effective() {
        let cfg = ServeLoadConfig {
            requests: 42,
            workers: 4,
            latency: Duration::from_millis(1),
            open_loop_interval: Duration::from_millis(2),
            ..ServeLoadConfig::default()
        };
        let smoke = x5_serving(&cfg);
        assert_eq!(smoke.table.rows.len(), 4);
        assert_eq!(smoke.rows_diverged, 0, "serving must be paper-blind");
        assert!(
            smoke.hit_rate > 0.5,
            "42 Zipf requests over 7 plans: hit rate {} too low",
            smoke.hit_rate
        );
        assert!(smoke.gets_saved_pct >= 0.0);
        // every row answered: diverged column is "0" everywhere
        assert!(smoke.table.rows.iter().all(|r| r[9] == "0"));
        // The observed open-loop run traced every request…
        assert_eq!(smoke.trace_jsonl.lines().count(), 42);
        assert!(smoke.trace_jsonl.contains("serve.request"));
        // …with phases measured (42 plans were all run or cache-hit).
        assert!(smoke.phase_totals.plan_us > 0);
        assert!(smoke.phase_totals.fetch_us > 0, "2ms GETs must show up");
        // Extras carry the new observability fields.
        let keys: Vec<&str> = smoke.extras.iter().map(|(k, _)| k.as_str()).collect();
        for k in ["histogram", "phases", "slo", "trace", "gets", "plan_cache"] {
            assert!(keys.contains(&k), "missing extra {k}");
        }
        let slo = &smoke.extras.iter().find(|(k, _)| k == "slo").unwrap().1;
        assert!(slo.contains("\"p99_us\":"), "{slo}");
    }

    #[test]
    fn x5_same_seed_runs_export_byte_identical_causal_traces() {
        let cfg = ServeLoadConfig {
            requests: 12,
            workers: 3,
            latency: Duration::from_micros(200),
            open_loop_interval: Duration::from_micros(500),
            ..ServeLoadConfig::default()
        };
        let causal = |smoke: &ServeSmoke| {
            // Strip the wall-clock facets: keep only the request lines'
            // deterministic prefix order (request ids) — full causal
            // byte-identity is pinned at the workspace level.
            smoke
                .trace_jsonl
                .lines()
                .map(|l| {
                    let at = l.find("\"latency_us\"").unwrap();
                    l[..at].to_string()
                })
                .collect::<Vec<_>>()
        };
        let a = x5_serving(&cfg);
        let b = x5_serving(&cfg);
        assert_eq!(causal(&a), causal(&b), "same seed, same request ids");
    }
}
