//! X5 (extension) — the serving-layer load benchmark.
//!
//! The paper costs one query in isolation; a server fields many concurrent
//! sessions whose popularity is heavily skewed. X5 drives a seeded
//! Zipf-distributed request stream over the E4 university workload through
//! [`serve::QueryServer`] and isolates the two serving-layer levers:
//!
//! * **plan cache** — repeated queries skip rule 1–9 enumeration (the hit
//!   rate is the table's second-to-last column);
//! * **single-flight coalescing** — concurrent sessions chasing the same
//!   hot URL share one server GET ([`nalg::CoalescingSource`]); the GET
//!   delta between the coalesce-off and coalesce-on rows is pure
//!   coalescing, because the plan cache never touches GET counts.
//!
//! Three load shapes run over one identical schedule: a sequential
//! uncached baseline (also the row/page-access oracle), a closed loop
//! (each of W workers fires its next request the moment the previous
//! answer lands), and an open loop (arrivals pinned to a fixed schedule
//! regardless of completions, so latency includes queueing). Every served
//! answer is checked against the oracle — the `diverged` column must stay
//! zero: coalescing and plan caching are invisible to the paper's rows
//! *and* to each session's `page_accesses`.

use crate::fixtures::university_workload;
use crate::table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::QueryServer;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use websim::sitegen::{University, UniversityConfig};
use wvcore::{ConjunctiveQuery, LiveSource, QuerySession, SiteStatistics};

/// Knobs of the X5 load generator. `Default` is the full benchmark scale;
/// CI's `serve-smoke` runs a reduced copy.
#[derive(Debug, Clone)]
pub struct ServeLoadConfig {
    /// Seed of the Zipf schedule (and nothing else — sites are fixed).
    pub seed: u64,
    /// Total requests per load shape.
    pub requests: usize,
    /// Serving threads; also the admission capacity (nothing is shed).
    pub workers: usize,
    /// Zipf skew exponent `s` (weight of rank `r` is `1/r^s`).
    pub zipf_s: f64,
    /// Simulated server latency per GET — the overlap that coalescing
    /// and latency hiding exploit.
    pub latency: Duration,
    /// Open-loop inter-arrival gap.
    pub open_loop_interval: Duration,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            seed: 0x5E41E,
            requests: 120,
            workers: 8,
            zipf_s: 1.1,
            latency: Duration::from_millis(2),
            open_loop_interval: Duration::from_millis(5),
        }
    }
}

/// Output of the X5 run (see [`x5_serving`]).
pub struct ServeSmoke {
    /// One row per load shape.
    pub table: Table,
    /// Raw-JSON extras for `BENCH_X5.json`: GET counts per shape,
    /// plan-cache counters, coalescing counters.
    pub extras: Vec<(String, String)>,
    /// Plan-cache hit rate of the closed-loop coalesce-on run — the CI
    /// smoke gate asserts it is positive.
    pub hit_rate: f64,
    /// Served answers that diverged from the sequential-uncached oracle
    /// (rows or per-session `page_accesses`) — the gate asserts zero.
    pub rows_diverged: u64,
    /// Server GETs saved by coalescing: `(off - on) / off`, in percent,
    /// at identical schedule and worker count.
    pub gets_saved_pct: f64,
}

/// A seeded Zipf schedule: `count` indices into `0..n`, rank `r`
/// weighted `1/(r+1)^s`. Hand-rolled inverse-CDF sampling — the offline
/// `rand` shim has no distribution zoo.
fn zipf_schedule(seed: u64, n: usize, count: usize, s: f64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for rank in 1..=n {
        total += 1.0 / (rank as f64).powf(s);
        cdf.push(total);
    }
    (0..count)
        .map(|_| {
            let x = rng.gen_range(0.0..total);
            cdf.iter().position(|&c| x < c).unwrap_or(n - 1)
        })
        .collect()
}

/// Latency percentile (ms) over a sorted slice of microsecond samples.
fn pct_ms(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx] as f64 / 1e3
}

struct LoadOut {
    latencies_us: Vec<u64>,
    diverged: u64,
    wall_ms: f64,
}

impl LoadOut {
    fn row(&self, label: &str, requests: usize, gets: u64, hit_rate: Option<f64>) -> Vec<String> {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        vec![
            label.to_string(),
            requests.to_string(),
            format!("{:.0}", self.wall_ms),
            format!("{:.0}", requests as f64 / (self.wall_ms / 1e3).max(1e-9)),
            format!("{:.1}", pct_ms(&sorted, 0.50)),
            format!("{:.1}", pct_ms(&sorted, 0.99)),
            format!("{:.1}", pct_ms(&sorted, 0.999)),
            gets.to_string(),
            hit_rate.map_or("—".to_string(), |r| format!("{:.0}%", r * 100.0)),
            self.diverged.to_string(),
        ]
    }
}

type Oracle = (adm::Relation, u64);

fn check(outcome: Option<&wvcore::QueryOutcome>, oracle: &Oracle, diverged: &AtomicU64) {
    let ok = outcome.is_some_and(|o| {
        o.report.relation.sorted() == oracle.0 && o.report.page_accesses == oracle.1
    });
    if !ok {
        diverged.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drives one schedule through a server with `workers` threads. Closed
/// loop (`open_loop_interval: None`): a shared queue, each worker fires
/// its next request on completion. Open loop: request `i` is due at
/// `start + i·interval` whatever the server's progress, and its latency
/// is measured from that due time (queueing included).
fn drive<S: nalg::PageSource + Sync>(
    server: &QueryServer<'_, S>,
    queries: &[(&'static str, ConjunctiveQuery)],
    schedule: &[usize],
    oracle: &[Oracle],
    workers: usize,
    open_loop_interval: Option<Duration>,
) -> LoadOut {
    let next = AtomicUsize::new(0);
    let diverged = AtomicU64::new(0);
    let latencies = Mutex::new(Vec::with_capacity(schedule.len()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (next, diverged, latencies) = (&next, &diverged, &latencies);
            scope.spawn(move || {
                let mut local = Vec::new();
                if let Some(interval) = open_loop_interval {
                    let mut i = w;
                    while i < schedule.len() {
                        let due = start + interval * (i as u32);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let out = server.serve(&queries[schedule[i]].1).expect("serve");
                        local
                            .push(Instant::now().saturating_duration_since(due).as_micros() as u64);
                        check(out.outcome.as_ref(), &oracle[schedule[i]], diverged);
                        i += workers;
                    }
                } else {
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= schedule.len() {
                            break;
                        }
                        let t0 = Instant::now();
                        let out = server.serve(&queries[schedule[i]].1).expect("serve");
                        local.push(t0.elapsed().as_micros() as u64);
                        check(out.outcome.as_ref(), &oracle[schedule[i]], diverged);
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
    });
    LoadOut {
        latencies_us: latencies.into_inner().unwrap(),
        diverged: diverged.load(Ordering::Relaxed),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    }
}

/// X5 — see the module docs. One fixed-seed site, one Zipf schedule,
/// four runs over it: sequential uncached (the oracle and timing
/// baseline), closed loop without and with coalescing, open loop with
/// coalescing. The plan cache is on for every served run.
pub fn x5_serving(cfg: &ServeLoadConfig) -> ServeSmoke {
    let u = University::generate(UniversityConfig::default()).expect("site");
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let queries = university_workload();
    let schedule = zipf_schedule(cfg.seed, queries.len(), cfg.requests, cfg.zipf_s);
    let live = LiveSource::for_site(&u.site);

    // The oracle: each distinct query once, sequentially, no caches, no
    // latency — the rows and per-session page accesses every served
    // answer must reproduce byte-for-byte.
    let oracle: Vec<Oracle> = queries
        .iter()
        .map(|(_, q)| {
            let out = QuerySession::new(&u.site.scheme, &catalog, &stats, &live)
                .run(q)
                .expect("oracle run");
            (out.report.relation.sorted(), out.report.page_accesses)
        })
        .collect();

    let mut t = Table::new(
        "X5 — serving layer: Zipf load, plan cache + single-flight coalescing",
        vec![
            "config",
            "requests",
            "wall ms",
            "req/s",
            "p50 ms",
            "p99 ms",
            "p99.9 ms",
            "server GETs",
            "plan hit rate",
            "diverged",
        ],
    );
    u.site.server.set_latency(cfg.latency);

    // 1 — sequential uncached: one plain session per request, in
    // schedule order, re-optimizing every time.
    u.site.server.reset_stats();
    let seq = {
        let diverged = AtomicU64::new(0);
        let mut latencies = Vec::with_capacity(schedule.len());
        let start = Instant::now();
        for &qi in &schedule {
            let t0 = Instant::now();
            let out = QuerySession::new(&u.site.scheme, &catalog, &stats, &live)
                .run(&queries[qi].1)
                .expect("sequential run");
            latencies.push(t0.elapsed().as_micros() as u64);
            check(Some(&out), &oracle[qi], &diverged);
        }
        LoadOut {
            latencies_us: latencies,
            diverged: diverged.load(Ordering::Relaxed),
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        }
    };
    let seq_gets = u.site.server.stats().gets;
    t.row(seq.row("sequential uncached", cfg.requests, seq_gets, None));

    // 2 — closed loop, coalescing OFF (plan cache on).
    u.site.server.reset_stats();
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &live)
        .with_admission_capacity(cfg.workers);
    let off = drive(&server, &queries, &schedule, &oracle, cfg.workers, None);
    let off_hit_rate = server.stats().plan_cache.hit_rate();
    let off_gets = u.site.server.stats().gets;
    t.row(off.row(
        "closed loop, coalesce off",
        cfg.requests,
        off_gets,
        Some(off_hit_rate),
    ));

    // 3 — closed loop, coalescing ON: the GET delta vs row 2 is pure
    // single-flight sharing (identical schedule and workers).
    u.site.server.reset_stats();
    let coalesced = nalg::CoalescingSource::new(&live);
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &coalesced)
        .with_admission_capacity(cfg.workers);
    let on = drive(&server, &queries, &schedule, &oracle, cfg.workers, None);
    let on_stats = server.stats();
    let on_gets = u.site.server.stats().gets;
    let coalesce = coalesced.stats();
    t.row(on.row(
        "closed loop, coalesce on",
        cfg.requests,
        on_gets,
        Some(on_stats.plan_cache.hit_rate()),
    ));

    // 4 — open loop, coalescing ON: fixed arrivals, latency includes
    // queueing behind slower requests.
    u.site.server.reset_stats();
    let coalesced_open = nalg::CoalescingSource::new(&live);
    let server = QueryServer::new(&u.site.scheme, &catalog, &stats, &coalesced_open)
        .with_admission_capacity(cfg.workers);
    let open = drive(
        &server,
        &queries,
        &schedule,
        &oracle,
        cfg.workers,
        Some(cfg.open_loop_interval),
    );
    let open_gets = u.site.server.stats().gets;
    t.row(open.row(
        "open loop, coalesce on",
        cfg.requests,
        open_gets,
        Some(server.stats().plan_cache.hit_rate()),
    ));
    u.site.server.set_latency(Duration::ZERO);

    let gets_saved_pct = if off_gets > 0 {
        100.0 * (off_gets.saturating_sub(on_gets)) as f64 / off_gets as f64
    } else {
        0.0
    };
    let pc = on_stats.plan_cache;
    let extras = vec![
        (
            "gets".to_string(),
            format!(
                "{{\"sequential\": {seq_gets}, \"coalesce_off\": {off_gets}, \"coalesce_on\": {on_gets}, \"open_loop\": {open_gets}, \"saved_pct\": {gets_saved_pct:.1}}}"
            ),
        ),
        (
            "plan_cache".to_string(),
            format!(
                "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"invalidations\": {}, \"quarantine_rejections\": {}, \"hit_rate\": {:.3}}}",
                pc.hits, pc.misses, pc.evictions, pc.invalidations, pc.quarantine_rejections,
                pc.hit_rate()
            ),
        ),
        (
            "coalescing".to_string(),
            format!(
                "{{\"leaders\": {}, \"followers\": {}, \"saved_gets\": {}}}",
                coalesce.leaders,
                coalesce.followers,
                coalesce.saved_gets()
            ),
        ),
    ];
    ServeSmoke {
        table: t,
        extras,
        hit_rate: pc.hit_rate(),
        rows_diverged: seq.diverged + off.diverged + on.diverged + open.diverged,
        gets_saved_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_schedule_is_seeded_and_skewed() {
        let a = zipf_schedule(7, 7, 200, 1.1);
        assert_eq!(a, zipf_schedule(7, 7, 200, 1.1));
        assert_ne!(a, zipf_schedule(8, 7, 200, 1.1));
        let head = a.iter().filter(|&&q| q == 0).count();
        let tail = a.iter().filter(|&&q| q == 6).count();
        assert!(head > tail, "rank 1 ({head}) must beat rank 7 ({tail})");
        assert!(a.iter().all(|&q| q < 7));
    }

    #[test]
    fn percentiles_read_the_sorted_tail() {
        let us: Vec<u64> = (0..1000).collect();
        assert_eq!(pct_ms(&us, 0.50), 0.5);
        assert_eq!(pct_ms(&us, 0.99), 0.989);
        assert_eq!(pct_ms(&us, 0.999), 0.998);
        assert_eq!(pct_ms(&[], 0.5), 0.0);
    }

    #[test]
    fn x5_small_load_is_divergence_free_and_cache_effective() {
        let cfg = ServeLoadConfig {
            requests: 42,
            workers: 4,
            latency: Duration::from_millis(1),
            open_loop_interval: Duration::from_millis(2),
            ..ServeLoadConfig::default()
        };
        let smoke = x5_serving(&cfg);
        assert_eq!(smoke.table.rows.len(), 4);
        assert_eq!(smoke.rows_diverged, 0, "serving must be paper-blind");
        assert!(
            smoke.hit_rate > 0.5,
            "42 Zipf requests over 7 plans: hit rate {} too low",
            smoke.hit_rate
        );
        assert!(smoke.gets_saved_pct >= 0.0);
        // every row answered: diverged column is "0" everywhere
        assert!(smoke.table.rows.iter().all(|r| r[9] == "0"));
    }
}
