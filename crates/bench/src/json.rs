//! Machine-readable experiment output.
//!
//! Every harness experiment can be dumped as a `BENCH_<ID>.json` file next
//! to the stdout table, so regression tooling can diff page counts, bytes
//! and wall-clock across runs without scraping the padded text. The format
//! is deliberately flat:
//!
//! ```json
//! {
//!   "experiment": "e2",
//!   "title": "E2 — Example 7.1: ...",
//!   "parameters": { "courses": "[20, 50, 100, 200]" },
//!   "wall_clock_ms": 412.7,
//!   "headers": ["courses", "plan 1d (join)", ...],
//!   "rows": [["20", "25.0 / 25", ...], ...]
//! }
//! ```
//!
//! JSON is hand-rolled (strings, arrays, one object level) — the harness
//! has no serializer dependency and does not need one.

use crate::table::Table;
use std::path::{Path, PathBuf};

/// Version of the `BENCH_<ID>.json` layout. Bump it whenever a change
/// makes old and new files non-comparable (fields added/removed,
/// percentile backing changed); `benchcmp` refuses to diff across
/// versions. Files written before the field existed are version 1.
pub const SCHEMA_VERSION: u64 = 2;

/// Escapes a string for a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|c| format!("\"{}\"", escape(c))).collect();
    format!("[{}]", cells.join(", "))
}

/// Serializes one experiment run (id, free-form parameters, wall-clock,
/// and the result table) as a JSON object.
pub fn experiment_json(
    id: &str,
    params: &[(&str, String)],
    wall_clock_ms: f64,
    table: &Table,
) -> String {
    experiment_json_with_extras(id, params, wall_clock_ms, table, &[])
}

/// [`experiment_json`] with extra top-level fields. Each extra is a
/// `(key, value)` pair whose value is **already-serialized JSON**
/// (an object, array, or number) embedded verbatim — this is how
/// subsystem counters (cache, resilience) and EXPLAIN ANALYZE traces
/// ride along in `BENCH_<ID>.json` without the table format changing.
pub fn experiment_json_with_extras(
    id: &str,
    params: &[(&str, String)],
    wall_clock_ms: f64,
    table: &Table,
    extras: &[(String, String)],
) -> String {
    let params: Vec<String> = params
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", escape(k), escape(v)))
        .collect();
    let rows: Vec<String> = table
        .rows
        .iter()
        .map(|r| format!("    {}", string_array(r)))
        .collect();
    let extras: String = extras
        .iter()
        .map(|(k, raw)| format!(",\n  \"{}\": {}", escape(k), raw))
        .collect();
    format!(
        "{{\n  \"experiment\": \"{}\",\n  \"schema_version\": {},\n  \"title\": \"{}\",\n  \"parameters\": {{ {} }},\n  \"wall_clock_ms\": {:.1},\n  \"headers\": {},\n  \"rows\": [\n{}\n  ]{}\n}}\n",
        escape(id),
        SCHEMA_VERSION,
        escape(&table.title),
        params.join(", "),
        wall_clock_ms,
        string_array(&table.headers),
        rows.join(",\n"),
        extras,
    )
}

/// Serializes a table alone (title, headers, rows) as a JSON object —
/// used to embed a secondary table in another experiment's extras (X4
/// ships its pages-vs-fallback table this way).
pub fn table_json(t: &Table) -> String {
    let rows: Vec<String> = t.rows.iter().map(|r| string_array(r)).collect();
    format!(
        "{{\"title\": \"{}\", \"headers\": {}, \"rows\": [{}]}}",
        escape(&t.title),
        string_array(&t.headers),
        rows.join(", ")
    )
}

/// Writes `BENCH_<ID>.json` (id upper-cased) into `dir`; returns the path.
pub fn write_experiment_json(
    dir: &Path,
    id: &str,
    params: &[(&str, String)],
    wall_clock_ms: f64,
    table: &Table,
) -> std::io::Result<PathBuf> {
    write_experiment_json_with_extras(dir, id, params, wall_clock_ms, table, &[])
}

/// [`write_experiment_json`] with extra raw-JSON top-level fields (see
/// [`experiment_json_with_extras`]).
pub fn write_experiment_json_with_extras(
    dir: &Path,
    id: &str,
    params: &[(&str, String)],
    wall_clock_ms: f64,
    table: &Table,
    extras: &[(String, String)],
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{}.json", id.to_uppercase()));
    std::fs::write(
        &path,
        experiment_json_with_extras(id, params, wall_clock_ms, table, extras),
    )?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_and_escapes() {
        let mut t = Table::new("T \"quoted\"", vec!["a", "b"]);
        t.row(vec!["1".into(), "x\ny".into()]);
        let j = experiment_json("e9", &[("scale", "[1, 2]".into())], 12.34, &t);
        assert!(j.contains("\"experiment\": \"e9\""));
        assert!(j.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(j.contains("\"title\": \"T \\\"quoted\\\"\""));
        assert!(j.contains("\"scale\": \"[1, 2]\""));
        assert!(j.contains("\"wall_clock_ms\": 12.3"));
        assert!(j.contains("[\"1\", \"x\\ny\"]"));
    }

    #[test]
    fn extras_are_embedded_verbatim() {
        let t = Table::new("t", vec!["a"]);
        let j = experiment_json_with_extras(
            "x2",
            &[],
            1.0,
            &t,
            &[
                ("cache".to_string(), "{\"hits\": 4}".to_string()),
                ("trace".to_string(), "[]".to_string()),
            ],
        );
        assert!(j.contains("\"cache\": {\"hits\": 4}"));
        assert!(j.contains("\"trace\": []"));
        // still an object: extras come before the closing brace
        assert!(j.trim_end().ends_with('}'));
    }

    #[test]
    fn writes_file_with_uppercase_id() {
        let dir = std::env::temp_dir().join("wv_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let t = Table::new("t", vec!["a"]);
        let p = write_experiment_json(&dir, "x1", &[], 1.0, &t).unwrap();
        assert!(p.ends_with("BENCH_X1.json"));
        assert!(std::fs::read_to_string(&p).unwrap().contains("\"x1\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
