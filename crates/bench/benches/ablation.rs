//! Wall-clock benchmarks for E8: plan-enumeration cost of Algorithm 1
//! under different rule masks.

use bench::{query_71, query_72};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use websim::sitegen::{University, UniversityConfig};
use wvcore::{Optimizer, RuleMask, SiteStatistics};

fn bench_ablation(c: &mut Criterion) {
    let u = University::generate(UniversityConfig::default()).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let masks: Vec<(&str, RuleMask)> = vec![
        ("full", RuleMask::all()),
        (
            "no_join_rules",
            RuleMask::all()
                .without_pointer_join()
                .without_pointer_chase(),
        ),
        ("none", RuleMask::none()),
    ];
    let mut group = c.benchmark_group("optimizer_ablation");
    group.sample_size(10);
    for (name, mask) in masks {
        for (qname, q) in [("q71", query_71()), ("q72", query_72())] {
            group.bench_with_input(BenchmarkId::new(name, qname), &q, |b, q| {
                let opt = Optimizer::new(&u.site.scheme, &catalog, &stats).with_mask(mask);
                b.iter(|| opt.optimize(q).unwrap().candidates.len())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
