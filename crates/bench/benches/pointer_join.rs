//! Wall-clock benchmarks for E2 (Example 7.1): optimizing and executing
//! the pointer-join query at increasing site sizes.

use bench::fixtures::{example_71_plan_1d, example_71_plan_2d};
use bench::query_71;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use websim::sitegen::{University, UniversityConfig};
use wvcore::{LiveSource, Optimizer, QuerySession, SiteStatistics};

fn bench_example_71(c: &mut Criterion) {
    let mut group = c.benchmark_group("example_71");
    group.sample_size(10);
    for courses in [50usize, 200] {
        let u = University::generate(UniversityConfig {
            courses,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = wvcore::views::university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);

        group.bench_with_input(BenchmarkId::new("optimize", courses), &courses, |b, _| {
            let opt = Optimizer::new(&u.site.scheme, &catalog, &stats);
            b.iter(|| opt.optimize(&query_71()).unwrap().candidates.len())
        });
        group.bench_with_input(
            BenchmarkId::new("execute_pointer_join", courses),
            &courses,
            |b, _| {
                let plan = example_71_plan_1d();
                b.iter(|| session.execute(&plan).unwrap().relation.len())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("execute_pointer_chase", courses),
            &courses,
            |b, _| {
                let plan = example_71_plan_2d();
                b.iter(|| session.execute(&plan).unwrap().relation.len())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_example_71);
criterion_main!(benches);
