//! Wall-clock benchmarks for E3 (Example 7.2): the pointer-chase query,
//! end to end (optimize + evaluate) and per plan.

use bench::fixtures::{example_72_plan_1, example_72_plan_2};
use bench::query_72;
use criterion::{criterion_group, criterion_main, Criterion};
use websim::sitegen::{University, UniversityConfig};
use wvcore::{LiveSource, QuerySession, SiteStatistics};

fn bench_example_72(c: &mut Criterion) {
    let u = University::generate(UniversityConfig::default()).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();
    let source = LiveSource::for_site(&u.site);
    let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);

    let mut group = c.benchmark_group("example_72");
    group.sample_size(10);
    group.bench_function("optimize_and_run", |b| {
        b.iter(|| session.run(&query_72()).unwrap().report.relation.len())
    });
    group.bench_function("execute_pointer_chase", |b| {
        let plan = example_72_plan_2("Computer Science");
        b.iter(|| session.execute(&plan).unwrap().relation.len())
    });
    group.bench_function("execute_pointer_join", |b| {
        let plan = example_72_plan_1("Computer Science");
        b.iter(|| session.execute(&plan).unwrap().relation.len())
    });
    group.finish();
}

criterion_group!(benches, bench_example_72);
criterion_main!(benches);
