//! Allocation-count verification for the columnar refactor (ISSUE 9,
//! satellite 1): the row path clones `String`/`Url` per tuple, the
//! columnar path moves symbol ids — so the same logical operator should
//! allocate far less. A counting global allocator measures allocations
//! per operator on both paths and **fails the bench run** (exit 1) if the
//! columnar path ever allocates more than the row path it replaced, so
//! a clone creeping back into a kernel breaks `perf-smoke` rather than
//! silently eating the speedup.
//!
//! Wall-clock numbers for the same operators live in `harness sweep`;
//! this target is only about allocation counts, so it prints one line per
//! operator (`row N allocs -> columnar M allocs`) and skips criterion
//! timing entirely.

use adm::{ColumnRel, Relation, Tuple, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Allocations performed by one run of `f` (result kept live so its own
/// buffers count; frees do not).
fn allocs_in<R>(f: impl FnOnce() -> R) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = std::hint::black_box(f());
    let after = ALLOCS.load(Ordering::Relaxed);
    drop(out);
    after - before
}

fn flat(n: usize, prefix: &str) -> Relation {
    const RANKS: [&str; 4] = ["Full", "Associate", "Assistant", "Emeritus"];
    Relation::from_rows(
        vec![
            format!("{prefix}.Url"),
            format!("{prefix}.K"),
            format!("{prefix}.Rank"),
        ],
        (0..n)
            .map(|i| {
                vec![
                    Value::link(format!("/{prefix}/{i}")),
                    Value::text(format!("k{}", i % (n / 20).max(1))),
                    Value::text(RANKS[i % RANKS.len()]),
                ]
            })
            .collect(),
    )
    .unwrap()
}

fn nested(n: usize, fanout: usize) -> Relation {
    Relation::from_rows(
        vec!["P.Url".to_string(), "P.Courses".to_string()],
        (0..n)
            .map(|i| {
                vec![
                    Value::link(format!("/p/{i}")),
                    Value::List(
                        (0..fanout)
                            .map(|j| Tuple::new().with("CName", format!("c{i}-{j}")))
                            .collect(),
                    ),
                ]
            })
            .collect(),
    )
    .unwrap()
}

fn main() {
    let n = 4096usize;
    let rel = flat(n, "P");
    let right = flat(n, "R");
    let nest = nested(n / 10, 10);
    // Built outside the measured regions: interning and column packing are
    // one-time costs paid at wrap time, not per operator.
    let col = ColumnRel::from_relation(&rel);
    let right_col = ColumnRel::from_relation(&right);
    let nest_col = ColumnRel::from_relation(&nest);
    let full = Value::text("Full");
    let inner = vec!["CName".to_string()];

    println!("== allocation counts: row vs columnar operators ({n} rows) ==");
    let mut failed = false;
    let mut case = |op: &str, row: u64, columnar: u64| {
        let ratio = row as f64 / columnar.max(1) as f64;
        println!(
            "{op:<16} row {row:>8} allocs -> columnar {columnar:>8} allocs   ({ratio:.1}x fewer)"
        );
        if columnar > row {
            eprintln!("FAIL: {op}: columnar path allocates more than the row path");
            failed = true;
        }
    };

    case(
        "σ rank=Full",
        allocs_in(|| rel.select_eq("P.Rank", &full).unwrap()),
        allocs_in(|| col.take(&col.select_eq_const(2, &full))),
    );
    case(
        "π dedup key",
        allocs_in(|| rel.project(&["P.K"]).unwrap()),
        allocs_in(|| col.project_cols(&[1])),
    );
    case(
        "⋈ pointer join",
        allocs_in(|| rel.join(&right, &[("P.K", "R.K")]).unwrap()),
        allocs_in(|| col.join_on(&right_col, &[(1, 1)])),
    );
    case(
        "μ unnest",
        allocs_in(|| nest.unnest("P.Courses", &inner).unwrap()),
        allocs_in(|| nest_col.unnest("P.Courses", &inner).unwrap()),
    );

    if failed {
        std::process::exit(1);
    }
    println!("ok: the columnar path never allocates more than the row path");
}
