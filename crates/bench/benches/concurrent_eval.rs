//! Wall-clock benchmarks for the concurrent fetch subsystem (X1/X2): the
//! full course navigation on the university site, swept over worker count
//! and simulated per-request latency, cold and with a warm shared cache.
//!
//! With zero latency the sweep measures pool overhead (it should be small
//! and flat); with 2 ms per request it measures latency hiding (wall-clock
//! should fall roughly linearly until the distinct-link width of the plan
//! is exhausted). The warm-cache rows skip the network entirely.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nalg::{Evaluator, NalgExpr, SharedPageCache};
use std::time::Duration;
use websim::sitegen::{University, UniversityConfig};
use wvcore::LiveSource;

fn course_navigation() -> NalgExpr {
    NalgExpr::entry("SessionListPage")
        .unnest("SesList")
        .follow("ToSes", "SessionPage")
        .unnest("SessionPage.CourseList")
        .follow("SessionPage.CourseList.ToCourse", "CoursePage")
        .project(vec!["CoursePage.CName", "CoursePage.Type"])
}

fn bench_concurrent_eval(c: &mut Criterion) {
    let u = University::generate(UniversityConfig::default()).unwrap();
    let source = LiveSource::for_site(&u.site);
    let plan = course_navigation();

    for latency_ms in [0u64, 2] {
        let mut group = c.benchmark_group(format!("concurrent_eval/latency_{latency_ms}ms"));
        group.sample_size(10);
        u.site.server.set_latency(Duration::from_millis(latency_ms));
        for workers in [1usize, 2, 4, 8, 16] {
            group.bench_with_input(BenchmarkId::new("cold", workers), &workers, |b, &w| {
                b.iter(|| {
                    let ev = if w <= 1 {
                        Evaluator::new(&u.site.scheme, &source)
                    } else {
                        Evaluator::new(&u.site.scheme, &source).with_concurrent_fetch(w)
                    };
                    ev.eval(&plan).unwrap().relation.len()
                })
            });
            group.bench_with_input(
                BenchmarkId::new("warm_shared_cache", workers),
                &workers,
                |b, &w| {
                    let cache = SharedPageCache::default();
                    // warm it once; every timed iteration is then pure hits
                    Evaluator::new(&u.site.scheme, &source)
                        .with_shared_cache(&cache)
                        .eval(&plan)
                        .unwrap();
                    b.iter(|| {
                        let ev = if w <= 1 {
                            Evaluator::new(&u.site.scheme, &source)
                        } else {
                            Evaluator::new(&u.site.scheme, &source).with_concurrent_fetch(w)
                        };
                        ev.with_shared_cache(&cache)
                            .eval(&plan)
                            .unwrap()
                            .relation
                            .len()
                    })
                },
            );
        }
        u.site.server.set_latency(Duration::ZERO);
        group.finish();
    }
}

criterion_group!(benches, bench_concurrent_eval);
criterion_main!(benches);
