//! Wall-clock benchmarks for the local (free, in the paper's cost model)
//! relational operators: hash join, unnest, projection-dedup at size.

use adm::{Relation, Tuple, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn flat(n: usize, prefix: &str) -> Relation {
    Relation::from_rows(
        vec![format!("{prefix}.K"), format!("{prefix}.V")],
        (0..n)
            .map(|i| {
                vec![
                    Value::text(format!("k{}", i % (n / 2).max(1))),
                    Value::text(format!("v{i}")),
                ]
            })
            .collect(),
    )
    .unwrap()
}

fn nested(n: usize, fanout: usize) -> Relation {
    Relation::from_rows(
        vec!["P.URL".to_string(), "P.L".to_string()],
        (0..n)
            .map(|i| {
                vec![
                    Value::link(format!("/p/{i}")),
                    Value::List(
                        (0..fanout)
                            .map(|j| Tuple::new().with("A", format!("a{i}-{j}")))
                            .collect(),
                    ),
                ]
            })
            .collect(),
    )
    .unwrap()
}

fn bench_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("relation_ops");
    for n in [100usize, 1000, 10000] {
        let left = flat(n, "L");
        let right = flat(n, "R");
        group.bench_with_input(BenchmarkId::new("hash_join", n), &n, |b, _| {
            b.iter(|| left.join(&right, &[("L.K", "R.K")]).unwrap().len())
        });
        let nest_rel = nested(n / 10 + 1, 10);
        group.bench_with_input(BenchmarkId::new("unnest", n), &n, |b, _| {
            b.iter(|| nest_rel.unnest("P.L", &["A".to_string()]).unwrap().len())
        });
        group.bench_with_input(BenchmarkId::new("project_dedup", n), &n, |b, _| {
            b.iter(|| left.project(&["L.K"]).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
