//! Wall-clock benchmarks for E5: materialized-view query evaluation
//! (warm store) versus virtual-view evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use matview::{MatSession, MatStore};
use websim::sitegen::{University, UniversityConfig};
use wvcore::{ConjunctiveQuery, LiveSource, QuerySession, SiteStatistics};

fn query() -> ConjunctiveQuery {
    ConjunctiveQuery::new("grad")
        .atom("Course")
        .select((0, "Type"), "Graduate")
        .project((0, "CName"))
}

fn bench_matview(c: &mut Criterion) {
    let u = University::generate(UniversityConfig::default()).unwrap();
    let stats = SiteStatistics::from_site(&u.site);
    let catalog = wvcore::views::university_catalog();

    let mut group = c.benchmark_group("matview");
    group.sample_size(10);
    group.bench_function("materialize_site", |b| {
        b.iter(|| {
            let mut store = MatStore::new();
            store.materialize(&u.site.scheme, &u.site.server).unwrap()
        })
    });
    group.bench_function("query_warm_store", |b| {
        let mut store = MatStore::new();
        store.materialize(&u.site.scheme, &u.site.server).unwrap();
        let session = MatSession::new(&u.site.scheme, &catalog, &stats, &u.site.server);
        b.iter(|| session.run(&mut store, &query()).unwrap().relation.len())
    });
    group.bench_function("query_virtual_view", |b| {
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        b.iter(|| session.run(&query()).unwrap().report.relation.len())
    });
    group.finish();
}

criterion_group!(benches, bench_matview);
criterion_main!(benches);
