//! Wall-clock benchmarks for E1: evaluating the introduction's navigation
//! strategies (engine speed; the page-access counts are in the harness).

use bench::fixtures::intro_strategies;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nalg::Evaluator;
use websim::sitegen::{BibConfig, Bibliography};
use wvcore::LiveSource;

fn bench_strategies(c: &mut Criterion) {
    let bib = Bibliography::generate(BibConfig {
        authors: 300,
        papers_per_edition: 20,
        ..BibConfig::default()
    })
    .unwrap();
    let source = LiveSource::for_site(&bib.site);
    let years = bib.last_three_years();
    let strategies = intro_strategies(&years);
    let names = [
        "s1_conf_list",
        "s2_db_list",
        "s3_featured",
        "s4_author_first",
    ];
    let mut group = c.benchmark_group("intro_strategies");
    group.sample_size(10);
    for (name, plan) in names.iter().zip(&strategies) {
        group.bench_with_input(BenchmarkId::from_parameter(name), plan, |b, plan| {
            b.iter(|| {
                Evaluator::new(&bib.site.scheme, &source)
                    .eval(plan)
                    .unwrap()
                    .relation
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
