//! Wall-clock benchmarks for the substrates: HTML wrapping and full-site
//! statistics crawling.

use criterion::{criterion_group, criterion_main, Criterion};
use websim::sitegen::{University, UniversityConfig};
use wvcore::{LiveSource, SiteStatistics};

fn bench_wrapper(c: &mut Criterion) {
    let u = University::generate(UniversityConfig::default()).unwrap();
    let prof_url = University::prof_url(0);
    let resp = u.site.server.get(&prof_url).unwrap();
    let html = std::str::from_utf8(&resp.body).unwrap().to_string();
    let scheme = u.site.scheme.scheme("ProfPage").unwrap().clone();
    u.site.server.reset_stats();

    let mut group = c.benchmark_group("substrates");
    group.bench_function("wrap_prof_page", |b| {
        b.iter(|| wrapper::wrap_page(&scheme, &html).unwrap().len())
    });
    group.bench_function("tokenize_prof_page", |b| {
        b.iter(|| wrapper::lexer::tokenize(&html).unwrap().len())
    });
    group.sample_size(10);
    group.bench_function("crawl_statistics", |b| {
        let source = LiveSource::for_site(&u.site);
        b.iter(|| {
            SiteStatistics::crawl(&u.site.scheme, &source)
                .scheme_card
                .len()
        })
    });
    group.bench_function("generate_site", |b| {
        b.iter(|| {
            University::generate(UniversityConfig::default())
                .unwrap()
                .site
                .total_pages()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wrapper);
criterion_main!(benches);
