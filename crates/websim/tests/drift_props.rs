//! Property tests: site drift is a pure function of its seed.
//!
//! The constraint-auditing experiments lean on two promises made by
//! [`websim::mutation`]: the same seed produces a byte-identical drifted
//! site (so harness runs are reproducible), and an all-zero-rate plan is a
//! complete no-op (so "audit on, drift off" can be compared byte-for-byte
//! against a pristine run). These properties hold for *every* seed and
//! rate, which is what the proptests below pin down.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use websim::mutation::{perturb_text_attr, DriftPlan, DriftRule};
use websim::site::Site;
use websim::sitegen::{University, UniversityConfig};

fn uni() -> University {
    University::generate(UniversityConfig {
        departments: 2,
        professors: 5,
        courses: 8,
        seed: 11,
        ..UniversityConfig::default()
    })
    .unwrap()
}

/// Every page of the site, as (url, body, last-modified), in a canonical
/// order — two sites with equal snapshots serve byte-identical content.
fn snapshot(site: &Site) -> Vec<(String, String, u64)> {
    let mut names: Vec<String> = site.scheme.schemes().map(|s| s.name.clone()).collect();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let mut urls = site.server.urls_of_scheme(&name);
        urls.sort();
        for u in urls {
            let r = site.server.get(&u).unwrap();
            out.push((
                u.to_string(),
                String::from_utf8_lossy(&r.body).into_owned(),
                r.last_modified,
            ));
        }
    }
    out
}

fn plan(seed: u64, perturb_rate: f64, drop_rate: f64) -> DriftPlan {
    DriftPlan::new(seed)
        .with_rule(DriftRule::perturb_attr("DeptPage", "DName", perturb_rate))
        .with_rule(DriftRule::perturb_attr("CoursePage", "CName", perturb_rate))
        .with_rule(DriftRule::drop_links(
            "SessionPage",
            &["CourseList", "ToCourse"],
            drop_rate,
        ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Same seed, same rates ⇒ byte-identical drifted site and identical
    // drift report, independently of when or where the plan is applied.
    #[test]
    fn drift_is_seed_deterministic(
        seed in 0u64..=u64::MAX,
        perturb_pct in 0u32..=100,
        drop_pct in 0u32..=100,
    ) {
        let p = plan(seed, f64::from(perturb_pct) / 100.0, f64::from(drop_pct) / 100.0);
        let mut a = uni();
        let mut b = uni();
        let ra = p.apply(&mut a.site).unwrap();
        let rb = p.apply(&mut b.site).unwrap();
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(snapshot(&a.site), snapshot(&b.site));
    }

    // Zero rates ⇒ the drifted site is byte-identical to a pristine one,
    // whatever the seed: no republish, no clock movement, no drift count.
    #[test]
    fn zero_rate_drift_equals_pristine(seed in 0u64..=u64::MAX) {
        let pristine = uni();
        let mut drifted = uni();
        let report = plan(seed, 0.0, 0.0).apply(&mut drifted.site).unwrap();
        prop_assert_eq!(report.total(), 0);
        prop_assert_eq!(drifted.site.server.stats().drift.total(), 0);
        prop_assert_eq!(snapshot(&pristine.site), snapshot(&drifted.site));
    }

    // Drift is idempotent under re-application: markers replace rather
    // than stack, so applying the same plan twice is the same as once
    // (modulo the republish clock, which moves on the second pass).
    #[test]
    fn reapplied_drift_does_not_stack(seed in 0u64..=u64::MAX) {
        let p = plan(seed, 0.6, 0.0);
        let mut once = uni();
        let mut twice = uni();
        p.apply(&mut once.site).unwrap();
        p.apply(&mut twice.site).unwrap();
        p.apply(&mut twice.site).unwrap();
        let strip = |s: Vec<(String, String, u64)>| -> Vec<(String, String)> {
            s.into_iter().map(|(u, b, _)| (u, b)).collect()
        };
        prop_assert_eq!(strip(snapshot(&once.site)), strip(snapshot(&twice.site)));
    }

    // `perturb_text_attr` is deterministic in its RNG seed, and a zero
    // fraction is a no-op for every seed.
    #[test]
    fn perturb_text_attr_is_rng_deterministic(
        rng_seed in 0u64..=u64::MAX,
        fraction_pct in 0u32..=100,
    ) {
        let fraction = f64::from(fraction_pct) / 100.0;
        let mut a = uni();
        let mut b = uni();
        let ta = perturb_text_attr(
            &mut a.site, "CoursePage", "Description", fraction, 1,
            &mut StdRng::seed_from_u64(rng_seed),
        ).unwrap();
        let tb = perturb_text_attr(
            &mut b.site, "CoursePage", "Description", fraction, 1,
            &mut StdRng::seed_from_u64(rng_seed),
        ).unwrap();
        prop_assert_eq!(ta, tb);
        prop_assert_eq!(snapshot(&a.site), snapshot(&b.site));
        if fraction_pct == 0 {
            prop_assert_eq!(ta, 0);
            prop_assert_eq!(snapshot(&a.site), snapshot(&uni().site));
        }
    }
}
