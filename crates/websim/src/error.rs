//! Errors of the virtual web layer.

use adm::Url;
use std::fmt;

/// Errors raised by the virtual server and site generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WebError {
    /// No page at this URL (HTTP 404 analogue).
    NotFound(Url),
    /// A site generator was asked for an impossible configuration.
    BadConfig(String),
    /// An underlying data-model error.
    Adm(adm::AdmError),
}

impl fmt::Display for WebError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebError::NotFound(u) => write!(f, "404 not found: {u}"),
            WebError::BadConfig(msg) => write!(f, "bad site configuration: {msg}"),
            WebError::Adm(e) => write!(f, "data model error: {e}"),
        }
    }
}

impl std::error::Error for WebError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WebError::Adm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<adm::AdmError> for WebError {
    fn from(e: adm::AdmError) -> Self {
        WebError::Adm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WebError::NotFound(Url::new("/x.html"));
        assert_eq!(e.to_string(), "404 not found: /x.html");
        let e = WebError::Adm(adm::AdmError::UnknownScheme("P".into()));
        assert!(std::error::Error::source(&e).is_some());
    }
}
