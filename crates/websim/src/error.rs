//! Errors of the virtual web layer.

use adm::Url;
use std::fmt;

/// Errors raised by the virtual server and site generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WebError {
    /// No page at this URL (HTTP 404 analogue). Permanent: retrying the
    /// same request cannot succeed.
    NotFound(Url),
    /// Transient server failure (HTTP 5xx analogue), injected by a
    /// [`crate::fault::FaultPlan`]. A retry may succeed.
    Unavailable {
        /// The URL that failed.
        url: Url,
        /// The simulated HTTP status (e.g. 503).
        status: u16,
    },
    /// The request timed out (injected fault). A retry may succeed.
    Timeout(Url),
    /// A site generator was asked for an impossible configuration.
    BadConfig(String),
    /// An underlying data-model error.
    Adm(adm::AdmError),
}

impl WebError {
    /// True for failures a retry may fix (5xx, timeout); false for
    /// permanent conditions (404, configuration and data-model errors).
    pub fn is_transient(&self) -> bool {
        matches!(self, WebError::Unavailable { .. } | WebError::Timeout(_))
    }
}

impl fmt::Display for WebError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WebError::NotFound(u) => write!(f, "404 not found: {u}"),
            WebError::Unavailable { url, status } => {
                write!(f, "{status} service unavailable: {url}")
            }
            WebError::Timeout(u) => write!(f, "timeout: {u}"),
            WebError::BadConfig(msg) => write!(f, "bad site configuration: {msg}"),
            WebError::Adm(e) => write!(f, "data model error: {e}"),
        }
    }
}

impl std::error::Error for WebError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WebError::Adm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<adm::AdmError> for WebError {
    fn from(e: adm::AdmError) -> Self {
        WebError::Adm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WebError::NotFound(Url::new("/x.html"));
        assert_eq!(e.to_string(), "404 not found: /x.html");
        let e = WebError::Adm(adm::AdmError::UnknownScheme("P".into()));
        assert!(std::error::Error::source(&e).is_some());
    }
}
