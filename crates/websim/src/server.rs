//! The virtual web server.
//!
//! Pages live in an in-memory store keyed by URL. Two request kinds mirror
//! the paper's cost model:
//!
//! * [`VirtualServer::get`] — a full download; this is what the cost
//!   function 𝒞 counts;
//! * [`VirtualServer::head`] — a "light connection" (Section 8) that
//!   exchanges only an error flag and the date of last modification, used
//!   by materialized-view maintenance.
//!
//! A logical clock stamps every stored page with its last-modified time;
//! mutations bump the clock, so freshness checks behave like HTTP
//! `If-Modified-Since` without real time.

use crate::error::WebError;
use crate::fault::{FaultKind, FaultPlan};
use crate::Result;
use adm::Url;
use bytes::Bytes;
use obs::{Counter, Histogram, MetricsRegistry};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A stored page.
#[derive(Debug, Clone)]
struct StoredPage {
    /// Page-scheme name, carried as out-of-band metadata the way a real
    /// deployment would carry a wrapper registry keyed by URL pattern.
    scheme: String,
    body: Bytes,
    last_modified: u64,
}

/// Response to a full `GET`.
#[derive(Debug, Clone)]
pub struct PageResponse {
    /// The page-scheme this URL belongs to.
    pub scheme: String,
    /// The HTML body.
    pub body: Bytes,
    /// Logical last-modified stamp.
    pub last_modified: u64,
}

/// Response to a light `HEAD` connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadResponse {
    /// Logical last-modified stamp.
    pub last_modified: u64,
}

/// A deterministic heavy-tail latency model.
///
/// Most requests pay `floor_us`; a `tail_rate` fraction pay
/// `floor_us + tail_us`. Whether a given request lands in the tail is a
/// pure function of `(seed, url, attempt)` — the per-URL attempt counter
/// makes a *repeat* request to the same URL (a hedge's backup GET, a
/// retry) re-roll the decision, exactly the property hedging exploits —
/// so every seeded run is reproducible end to end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyProfile {
    /// Latency every request pays, in microseconds.
    pub floor_us: u64,
    /// Extra latency a tail request pays on top of the floor.
    pub tail_us: u64,
    /// Fraction of requests landing in the tail, in `[0, 1]`.
    pub tail_rate: f64,
    /// Seed of the per-(url, attempt) tail decision stream.
    pub seed: u64,
}

impl LatencyProfile {
    /// The latency at quantile `q` ∈ `[0, 1]`: the floor below
    /// `1 − tail_rate`, the full tail latency above it. This is what a
    /// hedge policy derives its delay from (e.g. `quantile(0.9)`).
    pub fn quantile(&self, q: f64) -> u64 {
        if q < 1.0 - self.tail_rate {
            self.floor_us
        } else {
            self.floor_us + self.tail_us
        }
    }

    /// The deterministic delay for the `attempt`-th request (1-based) to
    /// `url`.
    pub fn delay_us(&self, url: &Url, attempt: u64) -> u64 {
        let tail_ppm = (self.tail_rate.clamp(0.0, 1.0) * 1_000_000.0) as u64;
        if tail_ppm == 0 {
            return self.floor_us;
        }
        // FNV-1a over the URL bytes, mixed with seed and attempt via
        // splitmix64 — fully deterministic, no hasher randomness.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in url.as_str().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut z = h ^ self.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ attempt;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        if z % 1_000_000 < tail_ppm {
            self.floor_us + self.tail_us
        } else {
            self.floor_us
        }
    }
}

/// Per-kind counts of injected faults (all zero without a fault plan).
/// These are separate from `gets`/`heads`/`not_found` so the paper's
/// access accounting stays fault-blind when no plan is installed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSnapshot {
    /// Injected transient 5xx errors.
    pub unavailable: u64,
    /// Injected transient timeouts.
    pub timeout: u64,
    /// Injected permanent 404s (link rot).
    pub link_rot: u64,
    /// Requests served after an injected delay.
    pub slow: u64,
    /// GETs served with a truncated body.
    pub truncated: u64,
}

impl FaultSnapshot {
    /// Difference of two snapshots (self − earlier).
    /// Saturating per-field subtraction: a field that went backwards
    /// (e.g. counters were reset between snapshots) yields 0, not a
    /// wrapped-around huge delta.
    pub fn since(&self, earlier: &FaultSnapshot) -> FaultSnapshot {
        FaultSnapshot {
            unavailable: self.unavailable.saturating_sub(earlier.unavailable),
            timeout: self.timeout.saturating_sub(earlier.timeout),
            link_rot: self.link_rot.saturating_sub(earlier.link_rot),
            slow: self.slow.saturating_sub(earlier.slow),
            truncated: self.truncated.saturating_sub(earlier.truncated),
        }
    }

    /// Total faults of every kind.
    pub fn total(&self) -> u64 {
        self.unavailable + self.timeout + self.link_rot + self.slow + self.truncated
    }
}

/// Counts of applied constraint drift (all zero until a
/// [`crate::mutation::DriftPlan`] is applied). Like [`FaultSnapshot`],
/// these never feed `gets`/`heads`: drifting a site is a publishing
/// operation, not a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriftSnapshot {
    /// Pages whose replicated attribute was perturbed.
    pub perturbed_pages: u64,
    /// Individual links dropped from link collections.
    pub dropped_links: u64,
}

impl DriftSnapshot {
    /// Difference of two snapshots (self − earlier), saturating per field.
    pub fn since(&self, earlier: &DriftSnapshot) -> DriftSnapshot {
        DriftSnapshot {
            perturbed_pages: self.perturbed_pages.saturating_sub(earlier.perturbed_pages),
            dropped_links: self.dropped_links.saturating_sub(earlier.dropped_links),
        }
    }

    /// Total drift events of either kind.
    pub fn total(&self) -> u64 {
        self.perturbed_pages + self.dropped_links
    }
}

/// A snapshot of the access counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessSnapshot {
    /// Number of full page downloads.
    pub gets: u64,
    /// Number of light connections.
    pub heads: u64,
    /// Total bytes transferred by GETs.
    pub bytes: u64,
    /// Requests (of either kind) answered with 404.
    pub not_found: u64,
    /// Injected faults by kind (zero without a [`FaultPlan`]).
    pub faults: FaultSnapshot,
    /// Applied constraint drift (zero without a
    /// [`crate::mutation::DriftPlan`]).
    pub drift: DriftSnapshot,
}

impl AccessSnapshot {
    /// Difference of two snapshots (self − earlier).
    /// Saturating per-field subtraction: a field that went backwards
    /// (e.g. [`VirtualServer::reset_stats`] ran between snapshots)
    /// yields 0, not a wrapped-around huge delta.
    pub fn since(&self, earlier: &AccessSnapshot) -> AccessSnapshot {
        AccessSnapshot {
            gets: self.gets.saturating_sub(earlier.gets),
            heads: self.heads.saturating_sub(earlier.heads),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            not_found: self.not_found.saturating_sub(earlier.not_found),
            faults: self.faults.since(&earlier.faults),
            drift: self.drift.since(&earlier.drift),
        }
    }
}

/// Mutable bookkeeping of an installed fault plan: the per-URL attempt
/// counter transient decisions re-roll on, and the per-(rule, URL)
/// injection counts that enforce [`crate::fault::FaultRule::max_per_url`].
#[derive(Debug, Default)]
struct FaultState {
    plan: FaultPlan,
    attempts: HashMap<Url, u64>,
    injected: HashMap<(usize, Url), u32>,
}

/// The in-process web server.
///
/// Access counters live in an [`obs::MetricsRegistry`] (prefix
/// `websim`); [`AccessSnapshot`] is a point-in-time view over those
/// registry cells, so the numbers are identical to the pre-registry
/// ad-hoc atomics.
#[derive(Debug)]
pub struct VirtualServer {
    pages: RwLock<HashMap<Url, StoredPage>>,
    clock: AtomicU64,
    registry: MetricsRegistry,
    gets: Counter,
    heads: Counter,
    bytes: Counter,
    not_found: Counter,
    /// Distribution of completed GET body sizes.
    get_bytes: Histogram,
    gets_by_scheme: RwLock<HashMap<String, u64>>,
    /// Simulated network latency per request, in microseconds (0 = off).
    latency_us: AtomicU64,
    /// Fast-path flag: true only while a latency profile is installed.
    profile_on: AtomicBool,
    /// Heavy-tail latency model plus its per-URL attempt counter.
    latency_profile: Mutex<Option<(LatencyProfile, HashMap<Url, u64>)>>,
    /// Simulated transfer rate for GET bodies, bytes/second (0 = infinite).
    /// HEADs exchange no body and pay only the latency — the asymmetry that
    /// makes light connections "light".
    bandwidth_bps: AtomicU64,
    /// Fast-path flag: true only while a fault plan is installed, so the
    /// zero-fault request path never touches the fault lock.
    chaos_enabled: AtomicBool,
    fault: Mutex<FaultState>,
    f_unavailable: Counter,
    f_timeout: Counter,
    f_link_rot: Counter,
    f_slow: Counter,
    f_truncated: Counter,
    d_perturbed: Counter,
    d_dropped: Counter,
}

impl Default for VirtualServer {
    fn default() -> Self {
        let registry = MetricsRegistry::with_prefix("websim");
        VirtualServer {
            pages: RwLock::default(),
            clock: AtomicU64::new(0),
            gets: registry.counter("gets"),
            heads: registry.counter("heads"),
            bytes: registry.counter("bytes"),
            not_found: registry.counter("not_found"),
            get_bytes: registry.histogram("get_bytes"),
            gets_by_scheme: RwLock::default(),
            latency_us: AtomicU64::new(0),
            profile_on: AtomicBool::new(false),
            latency_profile: Mutex::new(None),
            bandwidth_bps: AtomicU64::new(0),
            chaos_enabled: AtomicBool::new(false),
            fault: Mutex::new(FaultState::default()),
            f_unavailable: registry.counter("fault_unavailable"),
            f_timeout: registry.counter("fault_timeout"),
            f_link_rot: registry.counter("fault_link_rot"),
            f_slow: registry.counter("fault_slow"),
            f_truncated: registry.counter("fault_truncated"),
            d_perturbed: registry.counter("drift_perturbed"),
            d_dropped: registry.counter("drift_dropped"),
            registry,
        }
    }
}

/// Sleeps out one simulated network delay, abandoning the wait early when
/// the ambient request (see [`obs::reqctx`]) has a fired deadline or has
/// cancelled this URL. Abandonment models a client closing its
/// connection: the server still does the work and charges its access
/// counters — only the caller's blocked thread is released, so a
/// browned-out session never sits out a tail it will not use. Without a
/// finite deadline or a cancel token in scope this is a plain sleep,
/// byte-identical in effect to the pre-budget server.
fn simulated_wait(total: Duration, url: &Url) {
    let Some(ctx) = obs::reqctx::current() else {
        return std::thread::sleep(total);
    };
    if !ctx.deadline.is_finite() && ctx.cancel.is_none() {
        return std::thread::sleep(total);
    }
    let t0 = std::time::Instant::now();
    loop {
        let elapsed = t0.elapsed();
        if elapsed >= total {
            return;
        }
        if ctx.deadline.expired()
            || ctx
                .cancel
                .as_ref()
                .is_some_and(|t| t.is_url_cancelled(url.as_str()))
        {
            return;
        }
        std::thread::sleep((total - elapsed).min(Duration::from_micros(200)));
    }
}

impl VirtualServer {
    /// An empty server at logical time 0.
    pub fn new() -> Self {
        VirtualServer::default()
    }

    /// The registry backing this server's counters (prefix `websim`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Advances the logical clock and returns the new time.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Sets a simulated per-request network latency (applied to both GET
    /// and HEAD). Lets experiments show wall-clock effects — e.g. of
    /// concurrent fetching — that the page-count cost model abstracts away.
    pub fn set_latency(&self, latency: Duration) {
        self.latency_us
            .store(latency.as_micros() as u64, Ordering::Relaxed);
    }

    /// Installs a heavy-tail latency profile (replacing any previous one
    /// and its attempt bookkeeping). Stacks with [`set_latency`]: both
    /// delays apply, though experiments normally use one or the other.
    ///
    /// [`set_latency`]: VirtualServer::set_latency
    pub fn set_latency_profile(&self, profile: LatencyProfile) {
        let mut g = self.latency_profile.lock();
        self.profile_on.store(true, Ordering::Release);
        *g = Some((profile, HashMap::new()));
    }

    /// Removes the latency profile; only the flat `set_latency` delay
    /// (if any) remains.
    pub fn clear_latency_profile(&self) {
        let mut g = self.latency_profile.lock();
        self.profile_on.store(false, Ordering::Release);
        *g = None;
    }

    fn simulate_latency(&self, url: &Url) {
        let us = self.latency_us.load(Ordering::Relaxed);
        if us > 0 {
            simulated_wait(Duration::from_micros(us), url);
        }
        if self.profile_on.load(Ordering::Acquire) {
            let delay = {
                let mut g = self.latency_profile.lock();
                g.as_mut().map(|(profile, attempts)| {
                    let n = attempts.entry(url.clone()).or_insert(0);
                    *n += 1;
                    profile.delay_us(url, *n)
                })
            };
            if let Some(us) = delay {
                if us > 0 {
                    simulated_wait(Duration::from_micros(us), url);
                }
            }
        }
    }

    /// Sets a simulated transfer rate for GET bodies in bytes per second
    /// (0 = infinite). Downloading an `n`-byte page then takes latency +
    /// `n / rate`; HEADs stay latency-only.
    pub fn set_bandwidth(&self, bytes_per_sec: u64) {
        self.bandwidth_bps.store(bytes_per_sec, Ordering::Relaxed);
    }

    fn simulate_transfer(&self, bytes: usize) {
        let bps = self.bandwidth_bps.load(Ordering::Relaxed);
        // checked_div: bps == 0 means throttling is off
        match (bytes as u64).saturating_mul(1_000_000).checked_div(bps) {
            Some(us) if us > 0 => std::thread::sleep(Duration::from_micros(us)),
            _ => {}
        }
    }

    /// Installs a fault plan: subsequent requests consult it and may be
    /// failed, delayed, or mangled. Replaces any previous plan (and its
    /// per-URL attempt bookkeeping).
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut state = self.fault.lock();
        self.chaos_enabled
            .store(!plan.is_empty(), Ordering::Release);
        *state = FaultState {
            plan,
            ..FaultState::default()
        };
    }

    /// Removes the fault plan; the server serves cleanly again.
    pub fn clear_fault_plan(&self) {
        self.set_fault_plan(FaultPlan::default());
    }

    /// The installed fault plan, if any rules are active.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if !self.chaos_enabled.load(Ordering::Acquire) {
            return None;
        }
        let state = self.fault.lock();
        (!state.plan.is_empty()).then(|| state.plan.clone())
    }

    /// Consults the fault plan for one request, advancing the per-URL
    /// attempt counter and recording the injection. `None` without a plan
    /// (the zero-fault fast path) or when no rule fires.
    fn apply_fault(&self, url: &Url, scheme: Option<&str>, is_head: bool) -> Option<FaultKind> {
        if !self.chaos_enabled.load(Ordering::Acquire) {
            return None;
        }
        let mut state = self.fault.lock();
        let attempt = {
            let a = state.attempts.entry(url.clone()).or_insert(0);
            let current = *a;
            *a += 1;
            current
        };
        let decision = state.plan.decide(url, scheme, is_head, attempt, |rule| {
            state
                .injected
                .get(&(rule, url.clone()))
                .copied()
                .unwrap_or(0)
        });
        let (rule, kind) = decision?;
        *state.injected.entry((rule, url.clone())).or_insert(0) += 1;
        let counter = match kind {
            FaultKind::Unavailable => &self.f_unavailable,
            FaultKind::Timeout => &self.f_timeout,
            FaultKind::LinkRot => &self.f_link_rot,
            FaultKind::Slow { .. } => &self.f_slow,
            FaultKind::Truncate { .. } => &self.f_truncated,
        };
        counter.inc();
        Some(kind)
    }

    /// Publishes (or replaces) a page; stamps it with the *current* clock.
    pub fn put(&self, url: Url, scheme: impl Into<String>, body: impl Into<Bytes>) {
        let page = StoredPage {
            scheme: scheme.into(),
            body: body.into(),
            last_modified: self.now(),
        };
        self.pages.write().insert(url, page);
    }

    /// Publishes a page after bumping the clock — the page is strictly
    /// newer than anything stamped before this call.
    pub fn put_updated(&self, url: Url, scheme: impl Into<String>, body: impl Into<Bytes>) {
        self.tick();
        self.put(url, scheme, body);
    }

    /// Deletes a page. Returns true if it existed.
    pub fn remove(&self, url: &Url) -> bool {
        self.tick();
        self.pages.write().remove(url).is_some()
    }

    /// Full download. Counts one GET and the body bytes. A failed request
    /// (404 or injected fault) counts in `not_found`/`faults`, never as a
    /// GET: the paper's cost measure charges only completed downloads.
    pub fn get(&self, url: &Url) -> Result<PageResponse> {
        self.simulate_latency(url);
        let pages = self.pages.read();
        let scheme = pages.get(url).map(|p| p.scheme.clone());
        match self.apply_fault(url, scheme.as_deref(), false) {
            Some(FaultKind::Unavailable) => {
                return Err(WebError::Unavailable {
                    url: url.clone(),
                    status: 503,
                })
            }
            Some(FaultKind::Timeout) => return Err(WebError::Timeout(url.clone())),
            Some(FaultKind::LinkRot) => {
                self.not_found.inc();
                return Err(WebError::NotFound(url.clone()));
            }
            Some(FaultKind::Slow { delay_us }) if delay_us > 0 => {
                std::thread::sleep(Duration::from_micros(delay_us));
            }
            Some(FaultKind::Truncate { keep_pct }) => {
                // Serve (and count) a prefix of the body: the transfer
                // "succeeded" on the wire but the document is mangled.
                if let Some(p) = pages.get(url) {
                    let keep = p.body.len() * keep_pct.min(100) as usize / 100;
                    let body = Bytes::copy_from_slice(&p.body[..keep]);
                    self.simulate_transfer(body.len());
                    self.gets.inc();
                    self.bytes.add(body.len() as u64);
                    self.get_bytes.observe(body.len() as u64);
                    *self
                        .gets_by_scheme
                        .write()
                        .entry(p.scheme.clone())
                        .or_insert(0) += 1;
                    return Ok(PageResponse {
                        scheme: p.scheme.clone(),
                        body,
                        last_modified: p.last_modified,
                    });
                }
            }
            Some(FaultKind::Slow { .. }) | None => {}
        }
        match pages.get(url) {
            Some(p) => {
                self.simulate_transfer(p.body.len());
                self.gets.inc();
                self.bytes.add(p.body.len() as u64);
                self.get_bytes.observe(p.body.len() as u64);
                *self
                    .gets_by_scheme
                    .write()
                    .entry(p.scheme.clone())
                    .or_insert(0) += 1;
                Ok(PageResponse {
                    scheme: p.scheme.clone(),
                    body: p.body.clone(),
                    last_modified: p.last_modified,
                })
            }
            None => {
                self.not_found.inc();
                Err(WebError::NotFound(url.clone()))
            }
        }
    }

    /// Light connection: only existence and last-modified are exchanged.
    /// Body-mangling faults do not apply; availability faults do.
    pub fn head(&self, url: &Url) -> Result<HeadResponse> {
        self.simulate_latency(url);
        let pages = self.pages.read();
        let scheme = pages.get(url).map(|p| p.scheme.clone());
        match self.apply_fault(url, scheme.as_deref(), true) {
            Some(FaultKind::Unavailable) => {
                return Err(WebError::Unavailable {
                    url: url.clone(),
                    status: 503,
                })
            }
            Some(FaultKind::Timeout) => return Err(WebError::Timeout(url.clone())),
            Some(FaultKind::LinkRot) => {
                self.not_found.inc();
                return Err(WebError::NotFound(url.clone()));
            }
            Some(FaultKind::Slow { delay_us }) => {
                if delay_us > 0 {
                    std::thread::sleep(Duration::from_micros(delay_us));
                }
            }
            Some(FaultKind::Truncate { .. }) | None => {}
        }
        match pages.get(url) {
            Some(p) => {
                self.heads.inc();
                Ok(HeadResponse {
                    last_modified: p.last_modified,
                })
            }
            None => {
                self.not_found.inc();
                Err(WebError::NotFound(url.clone()))
            }
        }
    }

    /// True if a page exists, without touching any counter (test helper —
    /// not part of the simulated network protocol).
    pub fn exists(&self, url: &Url) -> bool {
        self.pages.read().contains_key(url)
    }

    /// Number of stored pages.
    pub fn page_count(&self) -> usize {
        self.pages.read().len()
    }

    /// All URLs of pages belonging to a scheme (inspection helper).
    pub fn urls_of_scheme(&self, scheme: &str) -> Vec<Url> {
        let mut v: Vec<Url> = self
            .pages
            .read()
            .iter()
            .filter(|(_, p)| p.scheme == scheme)
            .map(|(u, _)| u.clone())
            .collect();
        v.sort();
        v
    }

    /// Snapshot of the access counters.
    pub fn stats(&self) -> AccessSnapshot {
        AccessSnapshot {
            gets: self.gets.get(),
            heads: self.heads.get(),
            bytes: self.bytes.get(),
            not_found: self.not_found.get(),
            faults: FaultSnapshot {
                unavailable: self.f_unavailable.get(),
                timeout: self.f_timeout.get(),
                link_rot: self.f_link_rot.get(),
                slow: self.f_slow.get(),
                truncated: self.f_truncated.get(),
            },
            drift: DriftSnapshot {
                perturbed_pages: self.d_perturbed.get(),
                dropped_links: self.d_dropped.get(),
            },
        }
    }

    /// Records drift applied to the stored site (called by
    /// [`crate::mutation::DriftPlan::apply`]).
    pub(crate) fn note_drift(&self, perturbed_pages: u64, dropped_links: u64) {
        self.d_perturbed.add(perturbed_pages);
        self.d_dropped.add(dropped_links);
    }

    /// GET counts broken down by page-scheme.
    pub fn gets_by_scheme(&self) -> HashMap<String, u64> {
        self.gets_by_scheme.read().clone()
    }

    /// Resets all access counters (not the clock, the pages, or the fault
    /// plan's attempt bookkeeping).
    pub fn reset_stats(&self) {
        self.gets.reset();
        self.heads.reset();
        self.bytes.reset();
        self.not_found.reset();
        self.f_unavailable.reset();
        self.f_timeout.reset();
        self.f_link_rot.reset();
        self.f_slow.reset();
        self.f_truncated.reset();
        self.d_perturbed.reset();
        self.d_dropped.reset();
        self.gets_by_scheme.write().clear();
    }
}

/// The server-side protocol surface — GET, HEAD, and the logical clock —
/// abstracted so maintenance code (crawling, URL-check, the `CheckMissing`
/// sweep) can run against either a raw [`VirtualServer`] or a resilience
/// wrapper that retries and circuit-breaks around one.
pub trait PageServer {
    /// Full download (counted).
    fn get(&self, url: &Url) -> Result<PageResponse>;
    /// Light connection (counted).
    fn head(&self, url: &Url) -> Result<HeadResponse>;
    /// Current logical time of the underlying server.
    fn now(&self) -> u64;
}

impl PageServer for VirtualServer {
    fn get(&self, url: &Url) -> Result<PageResponse> {
        VirtualServer::get(self, url)
    }

    fn head(&self, url: &Url) -> Result<HeadResponse> {
        VirtualServer::head(self, url)
    }

    fn now(&self) -> u64 {
        VirtualServer::now(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_with_page() -> VirtualServer {
        let s = VirtualServer::new();
        s.put(Url::new("/a.html"), "APage", "<html>A</html>");
        s
    }

    #[test]
    fn get_counts_and_returns_body() {
        let s = server_with_page();
        let r = s.get(&Url::new("/a.html")).unwrap();
        assert_eq!(r.scheme, "APage");
        assert_eq!(&r.body[..], b"<html>A</html>");
        let st = s.stats();
        assert_eq!(st.gets, 1);
        assert_eq!(st.bytes, 14);
        assert_eq!(st.heads, 0);
    }

    #[test]
    fn head_is_light() {
        let s = server_with_page();
        let h = s.head(&Url::new("/a.html")).unwrap();
        assert_eq!(h.last_modified, 0);
        let st = s.stats();
        assert_eq!(st.gets, 0);
        assert_eq!(st.heads, 1);
        assert_eq!(st.bytes, 0);
    }

    #[test]
    fn missing_pages_404() {
        let s = server_with_page();
        assert!(matches!(
            s.get(&Url::new("/nope.html")),
            Err(WebError::NotFound(_))
        ));
        assert!(matches!(
            s.head(&Url::new("/nope.html")),
            Err(WebError::NotFound(_))
        ));
        assert_eq!(s.stats().not_found, 2);
    }

    #[test]
    fn update_bumps_last_modified() {
        let s = server_with_page();
        let before = s.get(&Url::new("/a.html")).unwrap().last_modified;
        s.put_updated(Url::new("/a.html"), "APage", "<html>A2</html>");
        let after = s.head(&Url::new("/a.html")).unwrap().last_modified;
        assert!(after > before);
    }

    #[test]
    fn remove_deletes() {
        let s = server_with_page();
        assert!(s.remove(&Url::new("/a.html")));
        assert!(!s.remove(&Url::new("/a.html")));
        assert!(!s.exists(&Url::new("/a.html")));
    }

    #[test]
    fn per_scheme_counters() {
        let s = server_with_page();
        s.put(Url::new("/b.html"), "BPage", "<html>B</html>");
        s.get(&Url::new("/a.html")).unwrap();
        s.get(&Url::new("/a.html")).unwrap();
        s.get(&Url::new("/b.html")).unwrap();
        let by = s.gets_by_scheme();
        assert_eq!(by["APage"], 2);
        assert_eq!(by["BPage"], 1);
    }

    #[test]
    fn snapshot_diff() {
        let s = server_with_page();
        s.get(&Url::new("/a.html")).unwrap();
        let t0 = s.stats();
        s.get(&Url::new("/a.html")).unwrap();
        s.head(&Url::new("/a.html")).unwrap();
        let d = s.stats().since(&t0);
        assert_eq!(d.gets, 1);
        assert_eq!(d.heads, 1);
    }

    #[test]
    fn reset_clears_counters_not_pages() {
        let s = server_with_page();
        s.get(&Url::new("/a.html")).unwrap();
        s.reset_stats();
        assert_eq!(s.stats(), AccessSnapshot::default());
        assert_eq!(s.page_count(), 1);
    }

    #[test]
    fn since_saturates_after_reset() {
        // a reset between snapshots makes counters go backwards; the
        // delta must clamp at zero, never wrap to a huge u64
        let s = server_with_page();
        s.get(&Url::new("/a.html")).unwrap();
        s.get(&Url::new("/a.html")).unwrap();
        let before = s.stats();
        s.reset_stats();
        s.get(&Url::new("/a.html")).unwrap();
        let d = s.stats().since(&before);
        assert_eq!(d.gets, 0, "1 - 2 must saturate, not wrap");
        assert_eq!(d.bytes, 0);
        assert_eq!(
            d,
            s.stats().since(&before).since(&before),
            "idempotent at 0"
        );
    }

    #[test]
    fn since_saturates_per_field_independently() {
        let newer = AccessSnapshot {
            gets: 5,
            heads: 1,
            bytes: 100,
            faults: FaultSnapshot {
                timeout: 2,
                ..FaultSnapshot::default()
            },
            drift: DriftSnapshot {
                perturbed_pages: 3,
                dropped_links: 0,
            },
            ..AccessSnapshot::default()
        };
        let earlier = AccessSnapshot {
            gets: 2,
            heads: 4, // went backwards
            bytes: 300,
            faults: FaultSnapshot {
                timeout: 9, // went backwards
                link_rot: 1,
                ..FaultSnapshot::default()
            },
            drift: DriftSnapshot {
                perturbed_pages: 1,
                dropped_links: 4, // went backwards
            },
            ..AccessSnapshot::default()
        };
        let d = newer.since(&earlier);
        assert_eq!(d.gets, 3, "forward fields still subtract exactly");
        assert_eq!(d.heads, 0);
        assert_eq!(d.bytes, 0);
        assert_eq!(d.faults.timeout, 0);
        assert_eq!(d.faults.link_rot, 0);
        assert_eq!(d.faults.total(), 0);
        assert_eq!(d.drift.perturbed_pages, 2);
        assert_eq!(d.drift.dropped_links, 0, "backwards drift field saturates");
        assert_eq!(d.drift.total(), 2);
        // the degenerate cases: X.since(X) == 0, X.since(0) == X
        assert_eq!(newer.since(&newer), AccessSnapshot::default());
        assert_eq!(newer.since(&AccessSnapshot::default()), newer);
    }

    #[test]
    fn latency_is_simulated() {
        let s = server_with_page();
        s.set_latency(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        s.set_latency(Duration::ZERO);
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn latency_profile_is_deterministic_per_url_and_attempt() {
        let p = LatencyProfile {
            floor_us: 100,
            tail_us: 9_900,
            tail_rate: 0.25,
            seed: 7,
        };
        // Pure function of (seed, url, attempt).
        let u = Url::new("/a.html");
        assert_eq!(p.delay_us(&u, 1), p.delay_us(&u, 1));
        // Over many URLs, roughly tail_rate of first attempts are slow.
        let slow = (0..1000)
            .filter(|i| p.delay_us(&Url::new(format!("/p/{i}")), 1) > p.floor_us)
            .count();
        assert!((150..350).contains(&slow), "tail fraction off: {slow}/1000");
        // Quantiles: the floor below 1 − rate, the full tail above.
        assert_eq!(p.quantile(0.5), 100);
        assert_eq!(p.quantile(0.9), 10_000);
    }

    #[test]
    fn latency_profile_rerolls_on_repeat_attempts() {
        let p = LatencyProfile {
            floor_us: 0,
            tail_us: 1,
            tail_rate: 0.5,
            seed: 3,
        };
        // Some URL must flip between attempt 1 and attempt 2 — the
        // re-roll a hedged backup GET relies on.
        let flips = (0..64).any(|i| {
            let u = Url::new(format!("/p/{i}"));
            p.delay_us(&u, 1) != p.delay_us(&u, 2)
        });
        assert!(flips);
    }

    #[test]
    fn latency_profile_delays_requests_until_cleared() {
        let s = server_with_page();
        s.set_latency_profile(LatencyProfile {
            floor_us: 5_000,
            tail_us: 0,
            tail_rate: 0.0,
            seed: 0,
        });
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        s.clear_latency_profile();
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn simulated_waits_are_severed_when_the_requester_gave_up() {
        use obs::reqctx::{with_ctx, FetchClock, RequestCtx};
        let s = server_with_page();
        s.set_latency(Duration::from_millis(50));
        // An expired deadline in the ambient request context: the client
        // has already browned out, so the wait is abandoned — but the GET
        // was still counted (the server did the work).
        let ctx = RequestCtx {
            sink: obs::trace::TraceSink::with_seed(0),
            parent: 0,
            request_id: 0,
            clock: FetchClock::new(),
            deadline: obs::Deadline::after_us(0),
            cancel: None,
        };
        let before = s.stats().gets;
        let t0 = std::time::Instant::now();
        with_ctx(Some(ctx), || s.get(&Url::new("/a.html")).unwrap());
        assert!(
            t0.elapsed() < Duration::from_millis(40),
            "an abandoned request must not sit out the full simulated wait"
        );
        assert_eq!(s.stats().gets, before + 1, "the GET is still charged");
        // A cancelled URL severs the wait the same way.
        let token = obs::CancelToken::new();
        token.cancel_url("/a.html");
        let ctx = RequestCtx {
            sink: obs::trace::TraceSink::with_seed(0),
            parent: 0,
            request_id: 0,
            clock: FetchClock::new(),
            deadline: obs::Deadline::infinite(),
            cancel: Some(token),
        };
        let t0 = std::time::Instant::now();
        with_ctx(Some(ctx), || s.get(&Url::new("/a.html")).unwrap());
        assert!(t0.elapsed() < Duration::from_millis(40));
        // Without either signal the full wait is simulated as before.
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(50));
        s.set_latency(Duration::ZERO);
    }

    #[test]
    fn bandwidth_throttles_gets_not_heads() {
        let s = server_with_page(); // 14-byte body
        s.set_bandwidth(1_000); // 1 KB/s → 14 ms per GET
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(14));
        let t0 = std::time::Instant::now();
        s.head(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(14));
        s.set_bandwidth(0);
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(14));
    }

    #[test]
    fn urls_of_scheme_sorted() {
        let s = VirtualServer::new();
        s.put(Url::new("/b"), "P", "x");
        s.put(Url::new("/a"), "P", "x");
        s.put(Url::new("/c"), "Q", "x");
        let urls = s.urls_of_scheme("P");
        assert_eq!(urls.len(), 2);
        assert!(urls[0] < urls[1]);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        let s = server_with_page();
        s.set_fault_plan(FaultPlan::new(7));
        let r = s.get(&Url::new("/a.html")).unwrap();
        assert_eq!(&r.body[..], b"<html>A</html>");
        let st = s.stats();
        assert_eq!(st.gets, 1);
        assert_eq!(st.faults, FaultSnapshot::default());
    }

    #[test]
    fn unavailable_fault_counts_and_does_not_count_get() {
        let s = server_with_page();
        s.set_fault_plan(FaultPlan::new(11).with_rule(crate::fault::FaultRule::unavailable(1.0)));
        let url = Url::new("/a.html");
        // Cap of 2 injections per URL: two failures, then success.
        assert!(matches!(
            s.get(&url),
            Err(WebError::Unavailable { status: 503, .. })
        ));
        assert!(matches!(s.get(&url), Err(WebError::Unavailable { .. })));
        let r = s.get(&url).unwrap();
        assert_eq!(&r.body[..], b"<html>A</html>");
        let st = s.stats();
        assert_eq!(st.faults.unavailable, 2);
        assert_eq!(st.gets, 1, "failed requests must not count as GETs");
        assert_eq!(st.bytes, 14);
    }

    #[test]
    fn link_rot_is_permanent_404() {
        let s = server_with_page();
        s.set_fault_plan(FaultPlan::new(3).with_rule(crate::fault::FaultRule::link_rot(1.0)));
        let url = Url::new("/a.html");
        for _ in 0..4 {
            assert!(matches!(s.get(&url), Err(WebError::NotFound(_))));
        }
        assert!(matches!(s.head(&url), Err(WebError::NotFound(_))));
        let st = s.stats();
        assert_eq!(st.faults.link_rot, 5);
        assert_eq!(st.not_found, 5);
        assert_eq!(st.gets, 0);
        assert_eq!(st.heads, 0);
    }

    #[test]
    fn truncation_serves_short_body_and_counts_get() {
        let s = server_with_page(); // 14-byte body
        s.set_fault_plan(FaultPlan::new(5).with_rule(crate::fault::FaultRule::truncation(1.0, 50)));
        let r = s.get(&Url::new("/a.html")).unwrap();
        assert_eq!(r.body.len(), 7);
        assert_eq!(&r.body[..], b"<html>A");
        let st = s.stats();
        assert_eq!(st.faults.truncated, 1);
        assert_eq!(st.gets, 1, "a truncated response is still a download");
        assert_eq!(st.bytes, 7);
    }

    #[test]
    fn truncation_does_not_affect_head() {
        let s = server_with_page();
        s.set_fault_plan(
            FaultPlan::new(5)
                .with_rule(crate::fault::FaultRule::truncation(1.0, 50))
                .with_rule(crate::fault::FaultRule::slow(1.0, 1)),
        );
        s.head(&Url::new("/a.html")).unwrap();
        assert_eq!(s.stats().heads, 1);
    }

    #[test]
    fn clear_fault_plan_restores_normal_service() {
        let s = server_with_page();
        s.set_fault_plan(
            FaultPlan::new(11)
                .with_rule(crate::fault::FaultRule::unavailable(1.0).with_max_per_url(None)),
        );
        assert!(s.get(&Url::new("/a.html")).is_err());
        s.clear_fault_plan();
        assert!(s.fault_plan().is_none());
        assert!(s.get(&Url::new("/a.html")).is_ok());
    }

    #[test]
    fn scheme_scoped_fault_spares_other_schemes() {
        let s = server_with_page();
        s.put(Url::new("/b.html"), "BPage", "<html>B</html>");
        s.set_fault_plan(
            FaultPlan::new(13).with_rule(
                crate::fault::FaultRule::unavailable(1.0)
                    .for_scheme("APage")
                    .with_max_per_url(None),
            ),
        );
        assert!(s.get(&Url::new("/a.html")).is_err());
        assert!(s.get(&Url::new("/b.html")).is_ok());
    }

    #[test]
    fn reset_stats_clears_fault_counters() {
        let s = server_with_page();
        s.set_fault_plan(FaultPlan::new(3).with_rule(crate::fault::FaultRule::link_rot(1.0)));
        let _ = s.get(&Url::new("/a.html"));
        assert_ne!(s.stats().faults, FaultSnapshot::default());
        s.reset_stats();
        assert_eq!(s.stats().faults, FaultSnapshot::default());
    }

    #[test]
    fn page_server_trait_delegates() {
        let s = server_with_page();
        fn through_trait(p: &dyn PageServer) -> (u64, bool) {
            let got = p.get(&Url::new("/a.html")).is_ok();
            (p.now(), got)
        }
        let (now, got) = through_trait(&s);
        assert!(got);
        assert_eq!(now, s.now());
    }
}
