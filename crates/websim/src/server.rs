//! The virtual web server.
//!
//! Pages live in an in-memory store keyed by URL. Two request kinds mirror
//! the paper's cost model:
//!
//! * [`VirtualServer::get`] — a full download; this is what the cost
//!   function 𝒞 counts;
//! * [`VirtualServer::head`] — a "light connection" (Section 8) that
//!   exchanges only an error flag and the date of last modification, used
//!   by materialized-view maintenance.
//!
//! A logical clock stamps every stored page with its last-modified time;
//! mutations bump the clock, so freshness checks behave like HTTP
//! `If-Modified-Since` without real time.

use crate::error::WebError;
use crate::Result;
use adm::Url;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A stored page.
#[derive(Debug, Clone)]
struct StoredPage {
    /// Page-scheme name, carried as out-of-band metadata the way a real
    /// deployment would carry a wrapper registry keyed by URL pattern.
    scheme: String,
    body: Bytes,
    last_modified: u64,
}

/// Response to a full `GET`.
#[derive(Debug, Clone)]
pub struct PageResponse {
    /// The page-scheme this URL belongs to.
    pub scheme: String,
    /// The HTML body.
    pub body: Bytes,
    /// Logical last-modified stamp.
    pub last_modified: u64,
}

/// Response to a light `HEAD` connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadResponse {
    /// Logical last-modified stamp.
    pub last_modified: u64,
}

/// A snapshot of the access counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessSnapshot {
    /// Number of full page downloads.
    pub gets: u64,
    /// Number of light connections.
    pub heads: u64,
    /// Total bytes transferred by GETs.
    pub bytes: u64,
    /// Requests (of either kind) answered with 404.
    pub not_found: u64,
}

impl AccessSnapshot {
    /// Difference of two snapshots (self − earlier).
    pub fn since(&self, earlier: &AccessSnapshot) -> AccessSnapshot {
        AccessSnapshot {
            gets: self.gets - earlier.gets,
            heads: self.heads - earlier.heads,
            bytes: self.bytes - earlier.bytes,
            not_found: self.not_found - earlier.not_found,
        }
    }
}

/// The in-process web server.
#[derive(Debug, Default)]
pub struct VirtualServer {
    pages: RwLock<HashMap<Url, StoredPage>>,
    clock: AtomicU64,
    gets: AtomicU64,
    heads: AtomicU64,
    bytes: AtomicU64,
    not_found: AtomicU64,
    gets_by_scheme: RwLock<HashMap<String, u64>>,
    /// Simulated network latency per request, in microseconds (0 = off).
    latency_us: AtomicU64,
    /// Simulated transfer rate for GET bodies, bytes/second (0 = infinite).
    /// HEADs exchange no body and pay only the latency — the asymmetry that
    /// makes light connections "light".
    bandwidth_bps: AtomicU64,
}

impl VirtualServer {
    /// An empty server at logical time 0.
    pub fn new() -> Self {
        VirtualServer::default()
    }

    /// Current logical time.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Advances the logical clock and returns the new time.
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Sets a simulated per-request network latency (applied to both GET
    /// and HEAD). Lets experiments show wall-clock effects — e.g. of
    /// concurrent fetching — that the page-count cost model abstracts away.
    pub fn set_latency(&self, latency: Duration) {
        self.latency_us
            .store(latency.as_micros() as u64, Ordering::Relaxed);
    }

    fn simulate_latency(&self) {
        let us = self.latency_us.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(Duration::from_micros(us));
        }
    }

    /// Sets a simulated transfer rate for GET bodies in bytes per second
    /// (0 = infinite). Downloading an `n`-byte page then takes latency +
    /// `n / rate`; HEADs stay latency-only.
    pub fn set_bandwidth(&self, bytes_per_sec: u64) {
        self.bandwidth_bps.store(bytes_per_sec, Ordering::Relaxed);
    }

    fn simulate_transfer(&self, bytes: usize) {
        let bps = self.bandwidth_bps.load(Ordering::Relaxed);
        // checked_div: bps == 0 means throttling is off
        match (bytes as u64).saturating_mul(1_000_000).checked_div(bps) {
            Some(us) if us > 0 => std::thread::sleep(Duration::from_micros(us)),
            _ => {}
        }
    }

    /// Publishes (or replaces) a page; stamps it with the *current* clock.
    pub fn put(&self, url: Url, scheme: impl Into<String>, body: impl Into<Bytes>) {
        let page = StoredPage {
            scheme: scheme.into(),
            body: body.into(),
            last_modified: self.now(),
        };
        self.pages.write().insert(url, page);
    }

    /// Publishes a page after bumping the clock — the page is strictly
    /// newer than anything stamped before this call.
    pub fn put_updated(&self, url: Url, scheme: impl Into<String>, body: impl Into<Bytes>) {
        self.tick();
        self.put(url, scheme, body);
    }

    /// Deletes a page. Returns true if it existed.
    pub fn remove(&self, url: &Url) -> bool {
        self.tick();
        self.pages.write().remove(url).is_some()
    }

    /// Full download. Counts one GET and the body bytes.
    pub fn get(&self, url: &Url) -> Result<PageResponse> {
        self.simulate_latency();
        let pages = self.pages.read();
        match pages.get(url) {
            Some(p) => {
                self.simulate_transfer(p.body.len());
                self.gets.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(p.body.len() as u64, Ordering::Relaxed);
                *self
                    .gets_by_scheme
                    .write()
                    .entry(p.scheme.clone())
                    .or_insert(0) += 1;
                Ok(PageResponse {
                    scheme: p.scheme.clone(),
                    body: p.body.clone(),
                    last_modified: p.last_modified,
                })
            }
            None => {
                self.not_found.fetch_add(1, Ordering::Relaxed);
                Err(WebError::NotFound(url.clone()))
            }
        }
    }

    /// Light connection: only existence and last-modified are exchanged.
    pub fn head(&self, url: &Url) -> Result<HeadResponse> {
        self.simulate_latency();
        let pages = self.pages.read();
        match pages.get(url) {
            Some(p) => {
                self.heads.fetch_add(1, Ordering::Relaxed);
                Ok(HeadResponse {
                    last_modified: p.last_modified,
                })
            }
            None => {
                self.not_found.fetch_add(1, Ordering::Relaxed);
                Err(WebError::NotFound(url.clone()))
            }
        }
    }

    /// True if a page exists, without touching any counter (test helper —
    /// not part of the simulated network protocol).
    pub fn exists(&self, url: &Url) -> bool {
        self.pages.read().contains_key(url)
    }

    /// Number of stored pages.
    pub fn page_count(&self) -> usize {
        self.pages.read().len()
    }

    /// All URLs of pages belonging to a scheme (inspection helper).
    pub fn urls_of_scheme(&self, scheme: &str) -> Vec<Url> {
        let mut v: Vec<Url> = self
            .pages
            .read()
            .iter()
            .filter(|(_, p)| p.scheme == scheme)
            .map(|(u, _)| u.clone())
            .collect();
        v.sort();
        v
    }

    /// Snapshot of the access counters.
    pub fn stats(&self) -> AccessSnapshot {
        AccessSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            heads: self.heads.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            not_found: self.not_found.load(Ordering::Relaxed),
        }
    }

    /// GET counts broken down by page-scheme.
    pub fn gets_by_scheme(&self) -> HashMap<String, u64> {
        self.gets_by_scheme.read().clone()
    }

    /// Resets all access counters (not the clock or the pages).
    pub fn reset_stats(&self) {
        self.gets.store(0, Ordering::Relaxed);
        self.heads.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.not_found.store(0, Ordering::Relaxed);
        self.gets_by_scheme.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_with_page() -> VirtualServer {
        let s = VirtualServer::new();
        s.put(Url::new("/a.html"), "APage", "<html>A</html>");
        s
    }

    #[test]
    fn get_counts_and_returns_body() {
        let s = server_with_page();
        let r = s.get(&Url::new("/a.html")).unwrap();
        assert_eq!(r.scheme, "APage");
        assert_eq!(&r.body[..], b"<html>A</html>");
        let st = s.stats();
        assert_eq!(st.gets, 1);
        assert_eq!(st.bytes, 14);
        assert_eq!(st.heads, 0);
    }

    #[test]
    fn head_is_light() {
        let s = server_with_page();
        let h = s.head(&Url::new("/a.html")).unwrap();
        assert_eq!(h.last_modified, 0);
        let st = s.stats();
        assert_eq!(st.gets, 0);
        assert_eq!(st.heads, 1);
        assert_eq!(st.bytes, 0);
    }

    #[test]
    fn missing_pages_404() {
        let s = server_with_page();
        assert!(matches!(
            s.get(&Url::new("/nope.html")),
            Err(WebError::NotFound(_))
        ));
        assert!(matches!(
            s.head(&Url::new("/nope.html")),
            Err(WebError::NotFound(_))
        ));
        assert_eq!(s.stats().not_found, 2);
    }

    #[test]
    fn update_bumps_last_modified() {
        let s = server_with_page();
        let before = s.get(&Url::new("/a.html")).unwrap().last_modified;
        s.put_updated(Url::new("/a.html"), "APage", "<html>A2</html>");
        let after = s.head(&Url::new("/a.html")).unwrap().last_modified;
        assert!(after > before);
    }

    #[test]
    fn remove_deletes() {
        let s = server_with_page();
        assert!(s.remove(&Url::new("/a.html")));
        assert!(!s.remove(&Url::new("/a.html")));
        assert!(!s.exists(&Url::new("/a.html")));
    }

    #[test]
    fn per_scheme_counters() {
        let s = server_with_page();
        s.put(Url::new("/b.html"), "BPage", "<html>B</html>");
        s.get(&Url::new("/a.html")).unwrap();
        s.get(&Url::new("/a.html")).unwrap();
        s.get(&Url::new("/b.html")).unwrap();
        let by = s.gets_by_scheme();
        assert_eq!(by["APage"], 2);
        assert_eq!(by["BPage"], 1);
    }

    #[test]
    fn snapshot_diff() {
        let s = server_with_page();
        s.get(&Url::new("/a.html")).unwrap();
        let t0 = s.stats();
        s.get(&Url::new("/a.html")).unwrap();
        s.head(&Url::new("/a.html")).unwrap();
        let d = s.stats().since(&t0);
        assert_eq!(d.gets, 1);
        assert_eq!(d.heads, 1);
    }

    #[test]
    fn reset_clears_counters_not_pages() {
        let s = server_with_page();
        s.get(&Url::new("/a.html")).unwrap();
        s.reset_stats();
        assert_eq!(s.stats(), AccessSnapshot::default());
        assert_eq!(s.page_count(), 1);
    }

    #[test]
    fn latency_is_simulated() {
        let s = server_with_page();
        s.set_latency(Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
        s.set_latency(Duration::ZERO);
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn bandwidth_throttles_gets_not_heads() {
        let s = server_with_page(); // 14-byte body
        s.set_bandwidth(1_000); // 1 KB/s → 14 ms per GET
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(14));
        let t0 = std::time::Instant::now();
        s.head(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(14));
        s.set_bandwidth(0);
        let t0 = std::time::Instant::now();
        s.get(&Url::new("/a.html")).unwrap();
        assert!(t0.elapsed() < Duration::from_millis(14));
    }

    #[test]
    fn urls_of_scheme_sorted() {
        let s = VirtualServer::new();
        s.put(Url::new("/b"), "P", "x");
        s.put(Url::new("/a"), "P", "x");
        s.put(Url::new("/c"), "Q", "x");
        let urls = s.urls_of_scheme("P");
        assert_eq!(urls.len(), 2);
        assert!(urls[0] < urls[1]);
    }
}
