//! Deterministic fault injection for the virtual web.
//!
//! A [`FaultPlan`] installed on a [`crate::VirtualServer`] makes the
//! simulated web misbehave the way the paper's *real* 1998 web did:
//! transient 5xx errors and timeouts, permanent 404 link rot, slow
//! responses, and truncated bodies. Every decision is a pure function of
//! the plan's seed, the URL, the rule index, and (for transient kinds) a
//! per-URL attempt counter — so a chaos run is exactly reproducible, and a
//! retry against the same URL can deterministically succeed.
//!
//! Two fault classes behave differently by construction:
//!
//! * **transient** kinds ([`FaultKind::Unavailable`], [`FaultKind::Timeout`],
//!   [`FaultKind::Slow`], [`FaultKind::Truncate`]) re-roll on every attempt
//!   and respect [`FaultRule::max_per_url`], so a retry policy with enough
//!   attempts always reaches the page eventually;
//! * **permanent** kinds ([`FaultKind::LinkRot`]) ignore the attempt
//!   counter: a rotted URL is rotted on every request, forever, exactly
//!   like a dead link on the open web.
//!
//! Rules can be scoped to one page-scheme or one URL prefix. Every
//! injected fault is counted in [`crate::AccessSnapshot::faults`], in
//! counters separate from `gets`/`heads`, so a zero-fault plan leaves the
//! paper's access accounting byte-identical.

use adm::Url;

/// What a matched fault rule does to the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Transient server error (HTTP 5xx analogue). The request fails; a
    /// later attempt may succeed.
    Unavailable,
    /// Transient timeout: the request fails as if the connection hung.
    Timeout,
    /// Permanent link rot: the URL answers 404 on every request even
    /// though the page is still stored.
    LinkRot,
    /// The request succeeds after an extra simulated delay.
    Slow {
        /// Extra delay in microseconds.
        delay_us: u64,
    },
    /// A GET succeeds but delivers only a prefix of the body — the
    /// wrapper downstream will fail to parse it (a malformed transfer).
    Truncate {
        /// Percentage of the body to keep (0–100).
        keep_pct: u8,
    },
}

impl FaultKind {
    /// True for kinds whose decision re-rolls per attempt (a retry can
    /// succeed); false for permanent kinds.
    pub fn is_transient(&self) -> bool {
        !matches!(self, FaultKind::LinkRot)
    }

    /// True if the kind applies to light (HEAD) connections too.
    /// Body-mangling kinds only affect GETs.
    pub fn applies_to_head(&self) -> bool {
        matches!(
            self,
            FaultKind::Unavailable | FaultKind::Timeout | FaultKind::LinkRot
        )
    }
}

/// One injection rule: a kind, an injection rate, an optional scope, and
/// an optional per-URL cap for transient kinds.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The fault to inject when the rule fires.
    pub kind: FaultKind,
    /// Injection probability per attempt (permanent kinds: per URL).
    pub rate: f64,
    /// Only pages of this page-scheme are affected, when set.
    pub scheme: Option<String>,
    /// Only URLs with this prefix are affected, when set.
    pub url_prefix: Option<String>,
    /// Cap on injected faults per URL for transient kinds (ignored for
    /// permanent kinds). With a cap of `k`, attempt `k+1` is guaranteed to
    /// pass this rule — the invariant retry-equivalence tests rely on.
    pub max_per_url: Option<u32>,
}

impl FaultRule {
    fn new(kind: FaultKind, rate: f64) -> Self {
        FaultRule {
            kind,
            rate,
            scheme: None,
            url_prefix: None,
            max_per_url: Some(2),
        }
    }

    /// Transient 5xx errors at the given per-attempt rate.
    pub fn unavailable(rate: f64) -> Self {
        FaultRule::new(FaultKind::Unavailable, rate)
    }

    /// Transient timeouts at the given per-attempt rate.
    pub fn timeouts(rate: f64) -> Self {
        FaultRule::new(FaultKind::Timeout, rate)
    }

    /// Permanent 404 link rot: each matching URL is dead with the given
    /// probability, stably across all attempts.
    pub fn link_rot(rate: f64) -> Self {
        FaultRule {
            max_per_url: None,
            ..FaultRule::new(FaultKind::LinkRot, rate)
        }
    }

    /// Slow responses: the request succeeds after `delay_us` extra
    /// microseconds.
    pub fn slow(rate: f64, delay_us: u64) -> Self {
        FaultRule::new(FaultKind::Slow { delay_us }, rate)
    }

    /// Truncated GET bodies keeping `keep_pct` percent of the bytes.
    pub fn truncation(rate: f64, keep_pct: u8) -> Self {
        FaultRule::new(FaultKind::Truncate { keep_pct }, rate)
    }

    /// Scopes the rule to one page-scheme.
    pub fn for_scheme(mut self, scheme: impl Into<String>) -> Self {
        self.scheme = Some(scheme.into());
        self
    }

    /// Scopes the rule to URLs with the given prefix.
    pub fn for_url_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.url_prefix = Some(prefix.into());
        self
    }

    /// Sets (or lifts, with `None`) the per-URL injection cap.
    pub fn with_max_per_url(mut self, cap: Option<u32>) -> Self {
        self.max_per_url = cap;
        self
    }

    fn matches(&self, url: &Url, scheme: Option<&str>) -> bool {
        if let Some(want) = &self.scheme {
            // Unknown scheme (e.g. a 404 URL): scheme-scoped rules skip it.
            if scheme != Some(want.as_str()) {
                return false;
            }
        }
        if let Some(prefix) = &self.url_prefix {
            if !url.as_str().starts_with(prefix.as_str()) {
                return false;
            }
        }
        true
    }
}

/// A seeded set of fault rules. The first matching rule that fires wins.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed of every injection decision.
    pub seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with a seed. With no rules it injects nothing — a
    /// server carrying it behaves byte-identically to one without a plan.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// True if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Decides the fault (if any) for one request. `attempt` is the
    /// 0-based per-URL request counter and `injected_so_far(i)` reports
    /// how many faults rule `i` already injected on this URL (for
    /// [`FaultRule::max_per_url`]). Pure: same inputs, same answer.
    pub fn decide(
        &self,
        url: &Url,
        scheme: Option<&str>,
        is_head: bool,
        attempt: u64,
        injected_so_far: impl Fn(usize) -> u32,
    ) -> Option<(usize, FaultKind)> {
        for (i, rule) in self.rules.iter().enumerate() {
            if is_head && !rule.kind.applies_to_head() {
                continue;
            }
            if !rule.matches(url, scheme) {
                continue;
            }
            let roll = if rule.kind.is_transient() {
                if let Some(cap) = rule.max_per_url {
                    if injected_so_far(i) >= cap {
                        continue;
                    }
                }
                decision_fraction(self.seed, i as u64, url, attempt)
            } else {
                // Permanent: attempt-independent, so the URL stays dead.
                decision_fraction(self.seed, i as u64, url, u64::MAX)
            };
            if roll < rule.rate {
                return Some((i, rule.kind));
            }
        }
        None
    }

    /// True if this plan permanently rots `url` (a [`FaultKind::LinkRot`]
    /// rule fires on it). Lets tests compute the exact expected
    /// missing-URL set without touching the server.
    pub fn is_rotted(&self, url: &Url, scheme: Option<&str>) -> bool {
        self.rules.iter().enumerate().any(|(i, rule)| {
            rule.kind == FaultKind::LinkRot
                && rule.matches(url, scheme)
                && decision_fraction(self.seed, i as u64, url, u64::MAX) < rule.rate
        })
    }
}

/// Uniform fraction in `[0, 1)` from (seed, rule, url, attempt) via
/// FNV-1a + splitmix64 — the deterministic core of every fault decision
/// (and, with `attempt = u64::MAX`, of every [`crate::mutation::DriftPlan`]
/// decision).
pub(crate) fn decision_fraction(seed: u64, rule: u64, url: &Url, attempt: u64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in url.as_str().as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut state = seed
        ^ h
        ^ rule.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ attempt.wrapping_mul(0xD1B5_4A32_D192_ED03);
    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new(7);
        for i in 0..50 {
            let url = Url::new(format!("/p{i}.html"));
            assert!(plan.decide(&url, Some("P"), false, 0, |_| 0).is_none());
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let mk = || FaultPlan::new(42).with_rule(FaultRule::unavailable(0.5));
        let url = Url::new("/x.html");
        for attempt in 0..20 {
            assert_eq!(
                mk().decide(&url, None, false, attempt, |_| 0),
                mk().decide(&url, None, false, attempt, |_| 0)
            );
        }
    }

    #[test]
    fn transient_rate_roughly_holds() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::unavailable(0.3).with_max_per_url(None));
        let url = Url::new("/x.html");
        let fired = (0..10_000)
            .filter(|&a| plan.decide(&url, None, false, a, |_| 0).is_some())
            .count();
        assert!((2_000..4_000).contains(&fired), "fired {fired}");
    }

    #[test]
    fn per_url_cap_guarantees_eventual_success() {
        let plan =
            FaultPlan::new(9).with_rule(FaultRule::unavailable(1.0).with_max_per_url(Some(2)));
        let url = Url::new("/x.html");
        let mut injected = 0u32;
        for attempt in 0..10 {
            if plan
                .decide(&url, None, false, attempt, |_| injected)
                .is_some()
            {
                injected += 1;
            }
        }
        assert_eq!(injected, 2, "cap bounds the injections");
    }

    #[test]
    fn link_rot_is_stable_per_url() {
        let plan = FaultPlan::new(3).with_rule(FaultRule::link_rot(0.5));
        let mut rotted = 0;
        for i in 0..100 {
            let url = Url::new(format!("/p{i}"));
            let first = plan.decide(&url, None, false, 0, |_| 0).is_some();
            for attempt in 1..10 {
                assert_eq!(
                    first,
                    plan.decide(&url, None, false, attempt, |_| 0).is_some(),
                    "rot must not flicker across attempts"
                );
            }
            assert_eq!(first, plan.is_rotted(&url, None));
            rotted += first as usize;
        }
        assert!((20..80).contains(&rotted), "rotted {rotted}/100");
    }

    #[test]
    fn scheme_scope_is_respected() {
        let plan =
            FaultPlan::new(5).with_rule(FaultRule::unavailable(1.0).for_scheme("CoursePage"));
        let url = Url::new("/c1.html");
        assert!(plan
            .decide(&url, Some("CoursePage"), false, 0, |_| 0)
            .is_some());
        assert!(plan
            .decide(&url, Some("ProfPage"), false, 0, |_| 0)
            .is_none());
        // unknown scheme: scoped rules do not fire
        assert!(plan.decide(&url, None, false, 0, |_| 0).is_none());
    }

    #[test]
    fn url_prefix_scope_is_respected() {
        let plan = FaultPlan::new(5).with_rule(FaultRule::timeouts(1.0).for_url_prefix("/course/"));
        assert!(plan
            .decide(&Url::new("/course/1"), None, false, 0, |_| 0)
            .is_some());
        assert!(plan
            .decide(&Url::new("/prof/1"), None, false, 0, |_| 0)
            .is_none());
    }

    #[test]
    fn body_faults_skip_head_requests() {
        let plan = FaultPlan::new(5).with_rule(FaultRule::truncation(1.0, 50));
        let url = Url::new("/x");
        assert!(plan.decide(&url, None, false, 0, |_| 0).is_some());
        assert!(plan.decide(&url, None, true, 0, |_| 0).is_none());
    }
}
