//! A site: a web scheme, a virtual server, and the ground-truth instance.
//!
//! Site generators publish pages through [`Site::publish`], which validates
//! the tuple against its page-scheme, renders it to HTML, stores it on the
//! server, and records the tuple as *ground truth*. Ground truth lets tests
//! check wrapper round-trips, verify the declared constraints actually hold
//! on the instance, and compute query-result oracles without navigation.

use crate::error::WebError;
use crate::page::render_page;
use crate::server::VirtualServer;
use crate::Result;
use adm::constraints::{verify_inclusion_constraint, verify_link_constraint, Violation};
use adm::{Tuple, Url, WebScheme};
use std::collections::BTreeMap;

/// What happened to one page, as recorded in the site's change feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// The page was published at a URL that had no page before.
    Added,
    /// An existing page was re-published with new content.
    Edited,
    /// The page was removed from the server.
    Removed,
}

/// One entry of the site's change feed — the deterministic mutation log a
/// maintenance process can subscribe to instead of re-crawling the world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteChange {
    /// Position in the feed (0-based, dense).
    pub seq: u64,
    /// The page-scheme of the affected page.
    pub scheme: String,
    /// The affected URL.
    pub url: Url,
    /// What happened.
    pub kind: ChangeKind,
}

/// A generated web site.
#[derive(Debug)]
pub struct Site {
    /// Site name (for display).
    pub name: String,
    /// The ADM scheme describing the site.
    pub scheme: WebScheme,
    /// The virtual server holding the rendered pages.
    pub server: VirtualServer,
    /// Ground truth: scheme name → URL → the tuple the page was rendered
    /// from. This is the generator's knowledge, *not* available to the
    /// query engine (which must navigate and wrap).
    instances: BTreeMap<String, BTreeMap<Url, Tuple>>,
    /// Append-only change feed: every publish/republish/unpublish since
    /// the site was created, in order. Readers keep a cursor
    /// ([`Site::change_cursor`]) and poll [`Site::changes_since`].
    changes: Vec<SiteChange>,
}

impl Site {
    /// Creates an empty site over a scheme.
    pub fn new(name: impl Into<String>, scheme: WebScheme) -> Self {
        Site {
            name: name.into(),
            scheme,
            server: VirtualServer::new(),
            instances: BTreeMap::new(),
            changes: Vec::new(),
        }
    }

    fn record_change(&mut self, scheme: &str, url: Url, kind: ChangeKind) {
        let seq = self.changes.len() as u64;
        self.changes.push(SiteChange {
            seq,
            scheme: scheme.to_string(),
            url,
            kind,
        });
    }

    /// The current end-of-feed cursor. `changes_since(change_cursor())` is
    /// always empty; take a cursor *before* mutating and the slice after
    /// covers exactly those mutations.
    pub fn change_cursor(&self) -> u64 {
        self.changes.len() as u64
    }

    /// Every change recorded at or after `cursor`, in feed order.
    pub fn changes_since(&self, cursor: u64) -> &[SiteChange] {
        let at = (cursor as usize).min(self.changes.len());
        &self.changes[at..]
    }

    /// Validates, renders, and publishes a page; records ground truth.
    pub fn publish(
        &mut self,
        scheme_name: &str,
        url: Url,
        tuple: Tuple,
        title: &str,
    ) -> Result<()> {
        let ps = self.scheme.scheme(scheme_name)?;
        if !tuple.conforms_to(&ps.fields) {
            return Err(WebError::Adm(adm::AdmError::SchemaViolation(format!(
                "tuple for {url} does not conform to page-scheme {scheme_name}"
            ))));
        }
        let html = render_page(ps, &tuple, title);
        let kind = if self
            .instances
            .get(scheme_name)
            .is_some_and(|m| m.contains_key(&url))
        {
            ChangeKind::Edited
        } else {
            ChangeKind::Added
        };
        self.server.put(url.clone(), scheme_name, html);
        self.instances
            .entry(scheme_name.to_string())
            .or_default()
            .insert(url.clone(), tuple);
        self.record_change(scheme_name, url, kind);
        Ok(())
    }

    /// Re-publishes a page with a *newer* last-modified stamp (a site
    /// update by the autonomous site manager).
    pub fn republish(
        &mut self,
        scheme_name: &str,
        url: Url,
        tuple: Tuple,
        title: &str,
    ) -> Result<()> {
        self.server.tick();
        self.publish(scheme_name, url, tuple, title)
    }

    /// Deletes a page from the server and the ground truth.
    pub fn unpublish(&mut self, scheme_name: &str, url: &Url) -> bool {
        let existed = self.server.remove(url);
        if let Some(m) = self.instances.get_mut(scheme_name) {
            m.remove(url);
        }
        if existed {
            self.record_change(scheme_name, url.clone(), ChangeKind::Removed);
        }
        existed
    }

    /// The ground-truth instance of a page-scheme, URL-ordered.
    pub fn instance(&self, scheme_name: &str) -> Vec<(Url, Tuple)> {
        self.instances
            .get(scheme_name)
            .map(|m| m.iter().map(|(u, t)| (u.clone(), t.clone())).collect())
            .unwrap_or_default()
    }

    /// The ground-truth tuple for one URL, if published.
    pub fn ground_truth(&self, scheme_name: &str, url: &Url) -> Option<&Tuple> {
        self.instances.get(scheme_name)?.get(url)
    }

    /// Number of pages of a scheme.
    pub fn cardinality(&self, scheme_name: &str) -> usize {
        self.instances.get(scheme_name).map_or(0, |m| m.len())
    }

    /// Total pages across all schemes.
    pub fn total_pages(&self) -> usize {
        self.instances.values().map(|m| m.len()).sum()
    }

    /// Verifies every declared link and inclusion constraint against the
    /// ground truth; returns all violations (empty means the instance
    /// satisfies its scheme's constraints).
    pub fn verify_constraints(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for c in self.scheme.link_constraints() {
            let Ok(link_field) = self.scheme.resolve(&c.link) else {
                continue;
            };
            let Some(target) = link_field.ty.link_target() else {
                continue;
            };
            let source = self.instance(&c.link.scheme);
            let tgt = self.instance(target);
            out.extend(verify_link_constraint(c, &source, &tgt));
        }
        for c in self.scheme.inclusion_constraints() {
            let sub = self.instance(&c.sub.scheme);
            let sup = self.instance(&c.sup.scheme);
            out.extend(verify_inclusion_constraint(c, &sub, &sup));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adm::{Field, PageScheme, Value};

    fn mini_site() -> Site {
        let list = PageScheme::new(
            "ListPage",
            vec![Field::list(
                "Items",
                vec![Field::text("Name"), Field::link("ToItem", "ItemPage")],
            )],
        )
        .unwrap();
        let item = PageScheme::new("ItemPage", vec![Field::text("Name")]).unwrap();
        let ws = WebScheme::builder()
            .scheme(list)
            .scheme(item)
            .entry_point("ListPage", "/list.html")
            .link_constraint(
                adm::LinkConstraint::parse(
                    "ListPage.Items.ToItem",
                    "ListPage.Items.Name",
                    "ItemPage.Name",
                )
                .unwrap(),
            )
            .build()
            .unwrap();
        Site::new("mini", ws)
    }

    #[test]
    fn publish_validates_and_serves() {
        let mut s = mini_site();
        s.publish(
            "ItemPage",
            Url::new("/i1.html"),
            Tuple::new().with("Name", "one"),
            "Item one",
        )
        .unwrap();
        let r = s.server.get(&Url::new("/i1.html")).unwrap();
        assert!(std::str::from_utf8(&r.body).unwrap().contains("one"));
        assert_eq!(s.cardinality("ItemPage"), 1);
    }

    #[test]
    fn publish_rejects_nonconforming() {
        let mut s = mini_site();
        let err = s.publish(
            "ItemPage",
            Url::new("/i1.html"),
            Tuple::new().with("Wrong", "x"),
            "bad",
        );
        assert!(err.is_err());
    }

    #[test]
    fn constraint_verification_passes_consistent_site() {
        let mut s = mini_site();
        s.publish(
            "ItemPage",
            Url::new("/i1.html"),
            Tuple::new().with("Name", "one"),
            "one",
        )
        .unwrap();
        s.publish(
            "ListPage",
            Url::new("/list.html"),
            Tuple::new().with_list(
                "Items",
                vec![Tuple::new()
                    .with("Name", "one")
                    .with("ToItem", Value::link("/i1.html"))],
            ),
            "list",
        )
        .unwrap();
        assert!(s.verify_constraints().is_empty());
    }

    #[test]
    fn constraint_verification_flags_inconsistency() {
        let mut s = mini_site();
        s.publish(
            "ItemPage",
            Url::new("/i1.html"),
            Tuple::new().with("Name", "one"),
            "one",
        )
        .unwrap();
        s.publish(
            "ListPage",
            Url::new("/list.html"),
            Tuple::new().with_list(
                "Items",
                vec![Tuple::new()
                    .with("Name", "WRONG ANCHOR")
                    .with("ToItem", Value::link("/i1.html"))],
            ),
            "list",
        )
        .unwrap();
        assert!(!s.verify_constraints().is_empty());
    }

    #[test]
    fn republish_bumps_modification_time() {
        let mut s = mini_site();
        let u = Url::new("/i1.html");
        s.publish("ItemPage", u.clone(), Tuple::new().with("Name", "one"), "t")
            .unwrap();
        let t0 = s.server.head(&u).unwrap().last_modified;
        s.republish("ItemPage", u.clone(), Tuple::new().with("Name", "two"), "t")
            .unwrap();
        assert!(s.server.head(&u).unwrap().last_modified > t0);
        assert_eq!(
            s.ground_truth("ItemPage", &u).unwrap().get("Name").unwrap(),
            &Value::text("two")
        );
    }

    #[test]
    fn change_feed_records_publish_edit_remove_in_order() {
        let mut s = mini_site();
        let u = Url::new("/i1.html");
        assert_eq!(s.change_cursor(), 0);
        s.publish("ItemPage", u.clone(), Tuple::new().with("Name", "one"), "t")
            .unwrap();
        let cursor = s.change_cursor();
        assert_eq!(cursor, 1);
        assert_eq!(s.changes_since(0)[0].kind, ChangeKind::Added);
        s.republish("ItemPage", u.clone(), Tuple::new().with("Name", "two"), "t")
            .unwrap();
        s.unpublish("ItemPage", &u);
        let tail = s.changes_since(cursor);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].kind, ChangeKind::Edited);
        assert_eq!(tail[0].url, u);
        assert_eq!(tail[0].seq, 1);
        assert_eq!(tail[1].kind, ChangeKind::Removed);
        assert_eq!(tail[1].seq, 2);
        // removing a page that is already gone records nothing
        assert!(!s.unpublish("ItemPage", &u));
        assert_eq!(s.change_cursor(), 3);
        // cursor past the end is an empty slice, not a panic
        assert!(s.changes_since(99).is_empty());
    }

    #[test]
    fn unpublish_removes_everywhere() {
        let mut s = mini_site();
        let u = Url::new("/i1.html");
        s.publish("ItemPage", u.clone(), Tuple::new().with("Name", "one"), "t")
            .unwrap();
        assert!(s.unpublish("ItemPage", &u));
        assert_eq!(s.cardinality("ItemPage"), 0);
        assert!(!s.server.exists(&u));
        assert_eq!(s.total_pages(), 0);
    }
}
