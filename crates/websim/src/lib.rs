//! # websim — a simulated web substrate
//!
//! The paper evaluates its optimizer against live 1998 web sites (the Trier
//! bibliography, university sites) over a real network, with *number of
//! pages downloaded* as the cost measure. This crate substitutes an
//! **in-process virtual web** that preserves exactly that quantity:
//!
//! * [`VirtualServer`] — a page store with instrumented `GET` (full
//!   download) and `HEAD` ("light connection", Section 8) requests, atomic
//!   access counters, per-page `Last-Modified` stamps driven by a logical
//!   clock, and 404s;
//! * [`html`] — a from-scratch HTML AST and writer (no external crates);
//! * [`page`] — rendering of ADM nested tuples into real HTML documents
//!   carrying extraction markers the `wrapper` crate parses back;
//! * [`sitegen`] — generators for the paper's two running examples: the
//!   **university site** of Figure 1 and a **bibliography site** modeled on
//!   the Trier DBLP repository used in the introduction;
//! * [`mutation`] — a site-update API (the autonomous site manager of the
//!   paper's Section 1), used by the materialized-view experiments, plus
//!   seeded constraint-drift injection ([`DriftPlan`]) that breaks declared
//!   link/inclusion constraints for the constraint-auditing experiments,
//!   and seeded ordinary-life mutation rounds ([`MutationPlan`]) whose
//!   edits/deletions land in the site's [`SiteChange`] feed for
//!   incremental view maintenance to consume;
//! * [`fault`] — deterministic, seed-driven fault injection ([`FaultPlan`])
//!   for chaos testing: transient 5xx/timeouts, permanent link rot, slow
//!   responses, and truncated bodies, all counted separately from the
//!   paper's page-access statistics.

pub mod error;
pub mod fault;
pub mod html;
pub mod mutation;
pub mod page;
pub mod server;
pub mod site;
pub mod sitegen;

pub use error::WebError;
pub use fault::{FaultKind, FaultPlan, FaultRule};
pub use mutation::{
    DriftKind, DriftPlan, DriftReport, DriftRule, MutationKind, MutationPlan, MutationReport,
    MutationRule,
};
pub use server::{
    AccessSnapshot, DriftSnapshot, FaultSnapshot, HeadResponse, LatencyProfile, PageResponse,
    PageServer, VirtualServer,
};
pub use site::{ChangeKind, Site, SiteChange};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, WebError>;
