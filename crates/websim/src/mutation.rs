//! Generic site-mutation helpers.
//!
//! The paper's Section 1 stresses that "the site manager inserts, deletes
//! and modifies pages without notifying remote users of the updates". The
//! structural mutations (add/remove course, …) live on the site generators,
//! which know how to keep all affected pages consistent; this module adds
//! *content-only* perturbation useful for materialized-view experiments:
//! it touches a configurable fraction of a scheme's pages by rewriting one
//! mono-valued text attribute, changing Last-Modified without changing the
//! link structure.

use crate::site::Site;
use crate::Result;
use adm::{Tuple, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Rewrites attribute `attr` (a top-level text attribute) on a randomly
/// chosen `fraction` (0.0..=1.0) of the pages of `scheme_name`, appending a
/// revision marker. Returns the number of pages touched.
pub fn perturb_text_attr(
    site: &mut Site,
    scheme_name: &str,
    attr: &str,
    fraction: f64,
    revision: u64,
    rng: &mut StdRng,
) -> Result<usize> {
    let instance = site.instance(scheme_name);
    let mut urls: Vec<_> = instance.iter().map(|(u, _)| u.clone()).collect();
    urls.shuffle(rng);
    let n = ((urls.len() as f64) * fraction).round() as usize;
    let mut touched = 0;
    for url in urls.into_iter().take(n) {
        let Some(t) = site.ground_truth(scheme_name, &url).cloned() else {
            continue;
        };
        let new_tuple = rewrite_attr(&t, attr, revision);
        site.republish(scheme_name, url, new_tuple, &format!("{scheme_name} (rev)"))?;
        touched += 1;
    }
    Ok(touched)
}

fn rewrite_attr(t: &Tuple, attr: &str, revision: u64) -> Tuple {
    let pairs = t
        .clone()
        .into_pairs()
        .into_iter()
        .map(|(n, v)| {
            if n == attr {
                let base = match &v {
                    Value::Text(s) => s.split(" [rev ").next().unwrap_or_default().to_string(),
                    _ => String::new(),
                };
                (n, Value::Text(format!("{base} [rev {revision}]")))
            } else {
                (n, v)
            }
        })
        .collect();
    Tuple::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sitegen::university::{University, UniversityConfig};
    use rand::SeedableRng;

    fn uni() -> University {
        University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 10,
            seed: 5,
            ..UniversityConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn perturb_touches_requested_fraction() {
        let mut u = uni();
        let mut rng = StdRng::seed_from_u64(9);
        let touched =
            perturb_text_attr(&mut u.site, "CoursePage", "Description", 0.5, 1, &mut rng).unwrap();
        assert_eq!(touched, 5);
        // touched pages carry the revision marker in ground truth
        let marked = u
            .site
            .instance("CoursePage")
            .iter()
            .filter(|(_, t)| {
                t.get("Description")
                    .and_then(|v| v.as_text())
                    .is_some_and(|s| s.contains("[rev 1]"))
            })
            .count();
        assert_eq!(marked, 5);
    }

    #[test]
    fn perturb_preserves_constraints() {
        let mut u = uni();
        let mut rng = StdRng::seed_from_u64(9);
        perturb_text_attr(&mut u.site, "CoursePage", "Description", 1.0, 1, &mut rng).unwrap();
        assert!(u.site.verify_constraints().is_empty());
    }

    #[test]
    fn repeated_perturbation_does_not_stack_markers() {
        let mut u = uni();
        let mut rng = StdRng::seed_from_u64(9);
        perturb_text_attr(&mut u.site, "CoursePage", "Description", 1.0, 1, &mut rng).unwrap();
        perturb_text_attr(&mut u.site, "CoursePage", "Description", 1.0, 2, &mut rng).unwrap();
        for (_, t) in u.site.instance("CoursePage") {
            let d = t.get("Description").unwrap().as_text().unwrap().to_string();
            assert_eq!(d.matches("[rev").count(), 1, "{d}");
            assert!(d.contains("[rev 2]"));
        }
    }

    #[test]
    fn zero_fraction_is_noop() {
        let mut u = uni();
        let mut rng = StdRng::seed_from_u64(9);
        let before = u.site.server.head(&University::course_url(0)).unwrap();
        let touched =
            perturb_text_attr(&mut u.site, "CoursePage", "Description", 0.0, 1, &mut rng).unwrap();
        assert_eq!(touched, 0);
        assert_eq!(
            u.site.server.head(&University::course_url(0)).unwrap(),
            before
        );
    }
}
