//! Generic site-mutation helpers.
//!
//! The paper's Section 1 stresses that "the site manager inserts, deletes
//! and modifies pages without notifying remote users of the updates". The
//! structural mutations (add/remove course, …) live on the site generators,
//! which know how to keep all affected pages consistent; this module adds
//! two *inconsistency-aware* mutation tools:
//!
//! * [`perturb_text_attr`] — content-only perturbation for the
//!   materialized-view experiments: rewrites one mono-valued text attribute
//!   on a fraction of a scheme's pages, changing Last-Modified without
//!   changing the link structure (and without breaking any constraint);
//! * [`DriftPlan`] — seeded **constraint drift** injection: perturbs
//!   replicated attributes and drops links from link collections so that
//!   the site's declared [`adm::LinkConstraint`]s / [`adm::InclusionConstraint`]s
//!   no longer hold, exactly the failure mode the optimizer's
//!   constraint-auditing defense is built against. Every decision is a pure
//!   function of (seed, rule, URL), so a drifted site is byte-identically
//!   reproducible, and a plan with all-zero rates leaves the site pristine.
//!   Applied drift is counted in [`crate::AccessSnapshot::drift`].

use crate::fault::decision_fraction;
use crate::site::Site;
use crate::Result;
use adm::{Tuple, Url, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Rewrites attribute `attr` (a top-level text attribute) on a randomly
/// chosen `fraction` (0.0..=1.0) of the pages of `scheme_name`, appending a
/// revision marker. Returns the number of pages touched.
pub fn perturb_text_attr(
    site: &mut Site,
    scheme_name: &str,
    attr: &str,
    fraction: f64,
    revision: u64,
    rng: &mut StdRng,
) -> Result<usize> {
    let instance = site.instance(scheme_name);
    let mut urls: Vec<_> = instance.iter().map(|(u, _)| u.clone()).collect();
    urls.shuffle(rng);
    let n = ((urls.len() as f64) * fraction).round() as usize;
    let mut touched = 0;
    for url in urls.into_iter().take(n) {
        let Some(t) = site.ground_truth(scheme_name, &url).cloned() else {
            continue;
        };
        let new_tuple = rewrite_attr(&t, attr, revision);
        site.republish(scheme_name, url, new_tuple, &format!("{scheme_name} (rev)"))?;
        touched += 1;
    }
    Ok(touched)
}

/// What one drift rule does to the pages of its scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriftKind {
    /// Rewrites the named top-level text attribute on drifted pages,
    /// breaking any link constraint that replicates it.
    PerturbAttr {
        /// The mono-valued text attribute to rewrite.
        attr: String,
    },
    /// Drops individual links at `path` (rows of a link collection, or a
    /// top-level link set to null), breaking inclusion constraints whose
    /// superset side is that collection.
    DropLinks {
        /// Path to the link attribute, e.g. `["CourseList", "ToCourse"]`.
        path: Vec<String>,
    },
}

/// One drift rule: a scheme, a kind, and a rate.
///
/// For [`DriftKind::PerturbAttr`] the rate is the per-*page* drift
/// probability; for [`DriftKind::DropLinks`] it is the per-*link*
/// drop probability (decided on the link's target URL, so the same link is
/// dropped from every collection that carries it — drift is a property of
/// the site, not of one page).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRule {
    /// The page-scheme whose pages drift.
    pub scheme: String,
    /// What happens to a drifted page.
    pub kind: DriftKind,
    /// Drift probability (see above for the unit).
    pub rate: f64,
}

impl DriftRule {
    /// Perturbs `attr` on `rate` of the pages of `scheme`.
    pub fn perturb_attr(scheme: impl Into<String>, attr: impl Into<String>, rate: f64) -> Self {
        DriftRule {
            scheme: scheme.into(),
            kind: DriftKind::PerturbAttr { attr: attr.into() },
            rate,
        }
    }

    /// Drops `rate` of the links at `path` on pages of `scheme`.
    pub fn drop_links(scheme: impl Into<String>, path: &[&str], rate: f64) -> Self {
        DriftRule {
            scheme: scheme.into(),
            kind: DriftKind::DropLinks {
                path: path.iter().map(|s| s.to_string()).collect(),
            },
            rate,
        }
    }
}

/// How a drifted site reports what changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DriftReport {
    /// Pages whose replicated attribute was rewritten.
    pub perturbed_pages: u64,
    /// Links removed from link collections.
    pub dropped_links: u64,
}

impl DriftReport {
    /// Total drift events of either kind.
    pub fn total(&self) -> u64 {
        self.perturbed_pages + self.dropped_links
    }
}

/// A seeded set of drift rules, applied to a [`Site`] in one shot.
///
/// Decisions use the same FNV-1a + splitmix64 stream as [`crate::FaultPlan`]
/// (with the attempt counter pinned, since drift is permanent): the same
/// seed drifts the same pages and drops the same links, every time, on any
/// site with the same URLs. A plan with no rules — or all-zero rates — is a
/// complete no-op: no page is republished, no clock tick happens, and the
/// site stays byte-identical to a pristine one.
#[derive(Debug, Clone, Default)]
pub struct DriftPlan {
    /// Seed of every drift decision.
    pub seed: u64,
    rules: Vec<DriftRule>,
}

impl DriftPlan {
    /// An empty plan with a seed.
    pub fn new(seed: u64) -> Self {
        DriftPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: DriftRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// True if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// True if this plan perturbs the page at `url` (scheme `scheme`)
    /// under rule `i` — exposed so tests can compute the exact expected
    /// drift set without applying the plan.
    pub fn drifts_page(&self, i: usize, url: &Url) -> bool {
        self.rules
            .get(i)
            .is_some_and(|r| decision_fraction(self.seed, i as u64, url, u64::MAX) < r.rate)
    }

    /// Applies every rule to `site`, republishing the affected pages
    /// (which bumps their Last-Modified stamps) and recording the totals
    /// in the server's [`crate::AccessSnapshot::drift`] counters.
    pub fn apply(&self, site: &mut Site) -> Result<DriftReport> {
        let mut report = DriftReport::default();
        for (i, rule) in self.rules.iter().enumerate() {
            for (url, tuple) in site.instance(&rule.scheme) {
                let drifted = match &rule.kind {
                    DriftKind::PerturbAttr { attr } => {
                        if !self.drifts_page(i, &url) {
                            continue;
                        }
                        report.perturbed_pages += 1;
                        drift_attr(&tuple, attr, self.seed, i as u64)
                    }
                    DriftKind::DropLinks { path } => {
                        let (t, dropped) = drop_links(&tuple, path, &|u: &Url| {
                            decision_fraction(self.seed, i as u64, u, u64::MAX) < rule.rate
                        });
                        if dropped == 0 {
                            continue;
                        }
                        report.dropped_links += dropped;
                        t
                    }
                };
                site.republish(
                    &rule.scheme,
                    url,
                    drifted,
                    &format!("{} (drift)", rule.scheme),
                )?;
            }
        }
        if report.total() > 0 {
            site.server
                .note_drift(report.perturbed_pages, report.dropped_links);
        }
        Ok(report)
    }
}

/// What one mutation rule does to the pages of its scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationKind {
    /// Rewrites the named top-level text attribute on chosen pages (a
    /// content-only edit: link structure is untouched).
    EditAttr {
        /// The mono-valued text attribute to rewrite.
        attr: String,
    },
    /// Drops individual links at `path`, exactly like
    /// [`DriftKind::DropLinks`] — a link-removal edit.
    DropLinks {
        /// Path to the link attribute, e.g. `["CourseList", "ToCourse"]`.
        path: Vec<String>,
    },
    /// Unpublishes chosen pages (a deletion; referencing pages are *not*
    /// rewritten — the site manager "deletes pages without notifying
    /// remote users").
    Delete,
}

/// One mutation rule: a scheme, a kind, and a per-page (per-link for
/// [`MutationKind::DropLinks`]) probability.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationRule {
    /// The page-scheme whose pages mutate.
    pub scheme: String,
    /// What happens to a chosen page.
    pub kind: MutationKind,
    /// Mutation probability per round.
    pub rate: f64,
}

impl MutationRule {
    /// Rewrites `attr` on `rate` of the pages of `scheme` each round.
    pub fn edit_attr(scheme: impl Into<String>, attr: impl Into<String>, rate: f64) -> Self {
        MutationRule {
            scheme: scheme.into(),
            kind: MutationKind::EditAttr { attr: attr.into() },
            rate,
        }
    }

    /// Drops `rate` of the links at `path` on pages of `scheme` each round.
    pub fn drop_links(scheme: impl Into<String>, path: &[&str], rate: f64) -> Self {
        MutationRule {
            scheme: scheme.into(),
            kind: MutationKind::DropLinks {
                path: path.iter().map(|s| s.to_string()).collect(),
            },
            rate,
        }
    }

    /// Deletes `rate` of the pages of `scheme` each round.
    pub fn delete(scheme: impl Into<String>, rate: f64) -> Self {
        MutationRule {
            scheme: scheme.into(),
            kind: MutationKind::Delete,
            rate,
        }
    }
}

/// What one applied mutation round changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MutationReport {
    /// Pages whose attribute was rewritten.
    pub edited_pages: u64,
    /// Links removed from link collections.
    pub dropped_links: u64,
    /// Pages unpublished.
    pub deleted_pages: u64,
}

impl MutationReport {
    /// Total mutation events of any kind.
    pub fn total(&self) -> u64 {
        self.edited_pages + self.dropped_links + self.deleted_pages
    }
}

/// A seeded, round-based site mutator feeding the change feed.
///
/// Where [`DriftPlan`] models *silent inconsistency* (drift the auditing
/// defense must catch), a `MutationPlan` models the ordinary life of a
/// site: edits, link removals, and deletions that land in the site's
/// [`crate::SiteChange`] feed for incremental maintenance to consume.
/// Every decision is a pure function of (seed, rule, URL, round) — same
/// plan, same round, same site ⇒ byte-identical mutations — and different
/// rounds pick different pages, so a multi-round experiment exercises a
/// changing working set deterministically.
#[derive(Debug, Clone, Default)]
pub struct MutationPlan {
    /// Seed of every mutation decision.
    pub seed: u64,
    rules: Vec<MutationRule>,
}

impl MutationPlan {
    /// An empty plan with a seed.
    pub fn new(seed: u64) -> Self {
        MutationPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: MutationRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// True if the plan has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// True if rule `i` mutates the page at `url` in `round` — exposed so
    /// tests can compute the exact expected mutation set without applying
    /// the plan.
    pub fn mutates_page(&self, i: usize, url: &Url, round: u64) -> bool {
        self.rules
            .get(i)
            .is_some_and(|r| decision_fraction(self.seed, i as u64, url, round) < r.rate)
    }

    /// Applies one round of every rule to `site`. Edits republish (which
    /// bumps Last-Modified and records `Edited`), deletions unpublish
    /// (recording `Removed`); a round that chooses nothing leaves the
    /// site byte-identical — no republish, no clock tick, no feed entry.
    pub fn apply_round(&self, site: &mut Site, round: u64) -> Result<MutationReport> {
        let mut report = MutationReport::default();
        for (i, rule) in self.rules.iter().enumerate() {
            for (url, tuple) in site.instance(&rule.scheme) {
                match &rule.kind {
                    MutationKind::EditAttr { attr } => {
                        if !self.mutates_page(i, &url, round) {
                            continue;
                        }
                        report.edited_pages += 1;
                        let edited = edit_attr(&tuple, attr, self.seed, i as u64, round);
                        site.republish(
                            &rule.scheme,
                            url,
                            edited,
                            &format!("{} (edit)", rule.scheme),
                        )?;
                    }
                    MutationKind::DropLinks { path } => {
                        let (t, dropped) = drop_links(&tuple, path, &|u: &Url| {
                            decision_fraction(self.seed, i as u64, u, round) < rule.rate
                        });
                        if dropped == 0 {
                            continue;
                        }
                        report.dropped_links += dropped;
                        site.republish(&rule.scheme, url, t, &format!("{} (edit)", rule.scheme))?;
                    }
                    MutationKind::Delete => {
                        if !self.mutates_page(i, &url, round) {
                            continue;
                        }
                        if site.unpublish(&rule.scheme, &url) {
                            report.deleted_pages += 1;
                        }
                    }
                }
            }
        }
        Ok(report)
    }
}

/// Rewrites `attr` with a deterministic edit marker (non-stacking, and
/// distinct per round so every chosen round really changes the content).
fn edit_attr(t: &Tuple, attr: &str, seed: u64, rule: u64, round: u64) -> Tuple {
    let pairs = t
        .clone()
        .into_pairs()
        .into_iter()
        .map(|(n, v)| {
            if n == attr {
                let base = match &v {
                    Value::Text(s) => s.split(" [edit ").next().unwrap_or_default().to_string(),
                    _ => String::new(),
                };
                (
                    n,
                    Value::Text(format!("{base} [edit {seed}.{rule}.{round}]")),
                )
            } else {
                (n, v)
            }
        })
        .collect();
    Tuple::from_pairs(pairs)
}

/// Rewrites `attr` with a deterministic drift marker (replacing any marker
/// from an earlier drift application, so repeated drift does not stack).
fn drift_attr(t: &Tuple, attr: &str, seed: u64, rule: u64) -> Tuple {
    let pairs = t
        .clone()
        .into_pairs()
        .into_iter()
        .map(|(n, v)| {
            if n == attr {
                let base = match &v {
                    Value::Text(s) => s.split(" [drift ").next().unwrap_or_default().to_string(),
                    _ => String::new(),
                };
                (n, Value::Text(format!("{base} [drift {seed}.{rule}]")))
            } else {
                (n, v)
            }
        })
        .collect();
    Tuple::from_pairs(pairs)
}

/// Removes links chosen by `decide` at `path`: rows of a link collection
/// are dropped whole; a top-level link is set to null. Returns the new
/// tuple and the number of links removed.
fn drop_links(t: &Tuple, path: &[String], decide: &dyn Fn(&Url) -> bool) -> (Tuple, u64) {
    let Some((first, rest)) = path.split_first() else {
        return (t.clone(), 0);
    };
    let mut dropped = 0u64;
    let mut pairs = Vec::new();
    for (n, v) in t.clone().into_pairs() {
        if n != *first {
            pairs.push((n, v));
            continue;
        }
        if rest.is_empty() {
            if let Value::Link(u) = &v {
                if decide(u) {
                    dropped += 1;
                    pairs.push((n, Value::Null));
                    continue;
                }
            }
            pairs.push((n, v));
        } else if let Value::List(rows) = v {
            let mut kept = Vec::new();
            for row in rows {
                if rest.len() == 1 {
                    if let Some(Value::Link(u)) = row.get(&rest[0]) {
                        if decide(u) {
                            dropped += 1;
                            continue;
                        }
                    }
                    kept.push(row);
                } else {
                    let (nr, d) = drop_links(&row, rest, decide);
                    dropped += d;
                    kept.push(nr);
                }
            }
            pairs.push((n, Value::List(kept)));
        } else {
            pairs.push((n, v));
        }
    }
    (Tuple::from_pairs(pairs), dropped)
}

fn rewrite_attr(t: &Tuple, attr: &str, revision: u64) -> Tuple {
    let pairs = t
        .clone()
        .into_pairs()
        .into_iter()
        .map(|(n, v)| {
            if n == attr {
                let base = match &v {
                    Value::Text(s) => s.split(" [rev ").next().unwrap_or_default().to_string(),
                    _ => String::new(),
                };
                (n, Value::Text(format!("{base} [rev {revision}]")))
            } else {
                (n, v)
            }
        })
        .collect();
    Tuple::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sitegen::university::{University, UniversityConfig};
    use rand::SeedableRng;

    fn uni() -> University {
        University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 10,
            seed: 5,
            ..UniversityConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn perturb_touches_requested_fraction() {
        let mut u = uni();
        let mut rng = StdRng::seed_from_u64(9);
        let touched =
            perturb_text_attr(&mut u.site, "CoursePage", "Description", 0.5, 1, &mut rng).unwrap();
        assert_eq!(touched, 5);
        // touched pages carry the revision marker in ground truth
        let marked = u
            .site
            .instance("CoursePage")
            .iter()
            .filter(|(_, t)| {
                t.get("Description")
                    .and_then(|v| v.as_text())
                    .is_some_and(|s| s.contains("[rev 1]"))
            })
            .count();
        assert_eq!(marked, 5);
    }

    #[test]
    fn perturb_preserves_constraints() {
        let mut u = uni();
        let mut rng = StdRng::seed_from_u64(9);
        perturb_text_attr(&mut u.site, "CoursePage", "Description", 1.0, 1, &mut rng).unwrap();
        assert!(u.site.verify_constraints().is_empty());
    }

    #[test]
    fn repeated_perturbation_does_not_stack_markers() {
        let mut u = uni();
        let mut rng = StdRng::seed_from_u64(9);
        perturb_text_attr(&mut u.site, "CoursePage", "Description", 1.0, 1, &mut rng).unwrap();
        perturb_text_attr(&mut u.site, "CoursePage", "Description", 1.0, 2, &mut rng).unwrap();
        for (_, t) in u.site.instance("CoursePage") {
            let d = t.get("Description").unwrap().as_text().unwrap().to_string();
            assert_eq!(d.matches("[rev").count(), 1, "{d}");
            assert!(d.contains("[rev 2]"));
        }
    }

    #[test]
    fn drift_perturb_breaks_link_constraints_deterministically() {
        let plan =
            DriftPlan::new(17).with_rule(DriftRule::perturb_attr("CoursePage", "CName", 0.5));
        let mut a = uni();
        let ra = plan.apply(&mut a.site).unwrap();
        assert!(
            ra.perturbed_pages > 0,
            "rate 0.5 over 10 pages must drift some"
        );
        assert!(
            !a.site.verify_constraints().is_empty(),
            "perturbing a replicated attribute must violate a link constraint"
        );
        // Same plan on an identically generated site: identical drift.
        let mut b = uni();
        let rb = plan.apply(&mut b.site).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(a.site.instance("CoursePage"), b.site.instance("CoursePage"));
        // Counted in the server's access snapshot, separate from gets.
        let st = a.site.server.stats();
        assert_eq!(st.drift.perturbed_pages, ra.perturbed_pages);
        assert_eq!(st.gets, 0);
    }

    #[test]
    fn drift_drop_links_breaks_inclusion_deterministically() {
        let plan = DriftPlan::new(23).with_rule(DriftRule::drop_links(
            "SessionPage",
            &["CourseList", "ToCourse"],
            0.4,
        ));
        let mut a = uni();
        let ra = plan.apply(&mut a.site).unwrap();
        assert!(ra.dropped_links > 0);
        assert!(
            !a.site.verify_constraints().is_empty(),
            "dropping sup-side links must violate an inclusion constraint"
        );
        let mut b = uni();
        assert_eq!(plan.apply(&mut b.site).unwrap(), ra);
        assert_eq!(
            a.site.instance("SessionPage"),
            b.site.instance("SessionPage")
        );
        assert_eq!(a.site.server.stats().drift.dropped_links, ra.dropped_links);
    }

    #[test]
    fn zero_rate_drift_is_pristine() {
        let plan = DriftPlan::new(99)
            .with_rule(DriftRule::perturb_attr("CoursePage", "CName", 0.0))
            .with_rule(DriftRule::drop_links(
                "DepartmentPage",
                &["CourseList", "ToCourse"],
                0.0,
            ));
        let mut u = uni();
        let clock = u.site.server.now();
        let report = plan.apply(&mut u.site).unwrap();
        assert_eq!(report, DriftReport::default());
        assert_eq!(u.site.server.now(), clock, "no republish, no tick");
        assert_eq!(u.site.server.stats().drift.total(), 0);
        assert!(u.site.verify_constraints().is_empty());
    }

    #[test]
    fn mutation_rounds_are_deterministic_and_feed_the_change_log() {
        let plan = MutationPlan::new(41)
            .with_rule(MutationRule::edit_attr("CoursePage", "Description", 0.4))
            .with_rule(MutationRule::delete("CoursePage", 0.1));
        let mut a = uni();
        let cursor = a.site.change_cursor();
        let ra = plan.apply_round(&mut a.site, 0).unwrap();
        assert!(ra.total() > 0, "rates must choose something over 10 pages");
        let feed: Vec<_> = a.site.changes_since(cursor).to_vec();
        assert_eq!(
            feed.len() as u64,
            ra.edited_pages + ra.deleted_pages,
            "every edit/delete lands in the feed"
        );
        // Identical plan on an identically generated site: identical feed.
        let mut b = uni();
        let rb = plan.apply_round(&mut b.site, 0).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(b.site.changes_since(cursor), &feed[..]);
        // A later round picks a different (still deterministic) page set.
        let r1 = plan.apply_round(&mut a.site, 1).unwrap();
        let r1b = plan.apply_round(&mut b.site, 1).unwrap();
        assert_eq!(r1, r1b);
    }

    #[test]
    fn zero_rate_mutation_round_is_pristine() {
        let plan = MutationPlan::new(7)
            .with_rule(MutationRule::edit_attr("CoursePage", "Description", 0.0))
            .with_rule(MutationRule::drop_links(
                "SessionPage",
                &["CourseList", "ToCourse"],
                0.0,
            ))
            .with_rule(MutationRule::delete("CoursePage", 0.0));
        let mut u = uni();
        let clock = u.site.server.now();
        let cursor = u.site.change_cursor();
        let report = plan.apply_round(&mut u.site, 0).unwrap();
        assert_eq!(report, MutationReport::default());
        assert_eq!(u.site.server.now(), clock, "no republish, no tick");
        assert!(u.site.changes_since(cursor).is_empty());
    }

    #[test]
    fn repeated_edits_do_not_stack_markers() {
        let plan = MutationPlan::new(3).with_rule(MutationRule::edit_attr(
            "CoursePage",
            "Description",
            1.0,
        ));
        let mut u = uni();
        plan.apply_round(&mut u.site, 0).unwrap();
        plan.apply_round(&mut u.site, 1).unwrap();
        for (_, t) in u.site.instance("CoursePage") {
            let d = t.get("Description").unwrap().as_text().unwrap().to_string();
            assert_eq!(d.matches("[edit").count(), 1, "{d}");
            assert!(d.contains(".1]"), "round 1 marker wins: {d}");
        }
    }

    #[test]
    fn zero_fraction_is_noop() {
        let mut u = uni();
        let mut rng = StdRng::seed_from_u64(9);
        let before = u.site.server.head(&University::course_url(0)).unwrap();
        let touched =
            perturb_text_attr(&mut u.site, "CoursePage", "Description", 0.0, 1, &mut rng).unwrap();
        assert_eq!(touched, 0);
        assert_eq!(
            u.site.server.head(&University::course_url(0)).unwrap(),
            before
        );
    }
}
