//! A bibliography web site modeled on the Trier DBLP repository.
//!
//! The paper's introduction reasons about the query *"find all authors who
//! had papers in the last three VLDB conferences"* over this site and lists
//! four navigation strategies:
//!
//! 1. home → list of all conferences → VLDB page → last three editions;
//! 2. home → list of *database* conferences (a smaller page) → VLDB → …;
//! 3. home → VLDB page directly (a featured link) → …;
//! 4. home → list of authors → every author's page (over 16,000 of them!).
//!
//! The generated site reproduces exactly this topology. Editors are
//! replicated on the conference page (the paper: "if we want to know who
//! were the editors of VLDB '96 … we do not need to follow the link"),
//! which the scheme documents with a link constraint.

use crate::error::WebError;
use crate::site::Site;
use crate::sitegen::names;
use crate::Result;
use adm::{Field, InclusionConstraint, LinkConstraint, PageScheme, Tuple, Url, Value, WebScheme};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the bibliography site. Defaults are small; the
/// benchmark harness sweeps `authors` up to the paper's 16,000.
#[derive(Debug, Clone)]
pub struct BibConfig {
    /// Total number of authors (paper: "over 16,000").
    pub authors: usize,
    /// Total number of conferences; index 0 is VLDB.
    pub conferences: usize,
    /// How many of the conferences are database conferences (≥ 1; the
    /// first `db_conferences` ones, so VLDB is always included).
    pub db_conferences: usize,
    /// How many of the database conferences are featured on the home page.
    pub featured: usize,
    /// Editions per conference (years counting back from 1997).
    pub editions_per_conf: usize,
    /// Papers per edition.
    pub papers_per_edition: usize,
    /// Maximum authors per paper (1..=max, uniform).
    pub max_authors_per_paper: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BibConfig {
    fn default() -> Self {
        BibConfig {
            authors: 300,
            conferences: 24,
            db_conferences: 8,
            featured: 3,
            editions_per_conf: 5,
            papers_per_edition: 12,
            max_authors_per_paper: 3,
            seed: 97,
        }
    }
}

#[derive(Debug, Clone)]
struct PaperRec {
    title: String,
    conf: usize,
    year: u32,
    authors: Vec<usize>,
}

/// The generated bibliography site plus ground truth for oracles.
#[derive(Debug)]
pub struct Bibliography {
    /// The published site.
    pub site: Site,
    cfg: BibConfig,
    author_names: Vec<String>,
    conf_names: Vec<String>,
    papers: Vec<PaperRec>,
}

/// Builds the bibliography ADM scheme.
pub fn bibliography_scheme() -> WebScheme {
    let home = PageScheme::new(
        "BibHomePage",
        vec![
            Field::link("ToConfList", "ConfListPage"),
            Field::link("ToDBConfList", "DBConfListPage"),
            Field::link("ToAuthorList", "AuthorListPage"),
            Field::list(
                "Featured",
                vec![Field::text("ConfName"), Field::link("ToConf", "ConfPage")],
            ),
        ],
    )
    .expect("static scheme");
    let conf_list_fields = vec![Field::list(
        "ConfList",
        vec![Field::text("ConfName"), Field::link("ToConf", "ConfPage")],
    )];
    let conf_list = PageScheme::new("ConfListPage", conf_list_fields.clone()).expect("static");
    let db_conf_list = PageScheme::new("DBConfListPage", conf_list_fields).expect("static");
    let conf = PageScheme::new(
        "ConfPage",
        vec![
            Field::text("ConfName"),
            Field::list(
                "EditionList",
                vec![
                    Field::text("Year"),
                    Field::text("Editors"),
                    Field::link("ToEdition", "EditionPage"),
                ],
            ),
        ],
    )
    .expect("static scheme");
    let edition = PageScheme::new(
        "EditionPage",
        vec![
            Field::text("ConfName"),
            Field::text("Year"),
            Field::text("Editors"),
            Field::list(
                "PaperList",
                vec![
                    Field::text("Title"),
                    Field::list(
                        "Authors",
                        vec![Field::text("AName"), Field::link("ToAuthor", "AuthorPage")],
                    ),
                ],
            ),
        ],
    )
    .expect("static scheme");
    let author_list = PageScheme::new(
        "AuthorListPage",
        vec![Field::list(
            "AuthorList",
            vec![Field::text("AName"), Field::link("ToAuthor", "AuthorPage")],
        )],
    )
    .expect("static scheme");
    let author = PageScheme::new(
        "AuthorPage",
        vec![
            Field::text("AName"),
            Field::list(
                "PubList",
                vec![
                    Field::text("Title"),
                    Field::text("ConfName"),
                    Field::text("Year"),
                ],
            ),
        ],
    )
    .expect("static scheme");

    let lc = |link: &str, src: &str, tgt: &str| {
        LinkConstraint::parse(link, src, tgt).expect("static constraint")
    };
    let ic =
        |sub: &str, sup: &str| InclusionConstraint::parse(sub, sup).expect("static constraint");

    WebScheme::builder()
        .scheme(home)
        .scheme(conf_list)
        .scheme(db_conf_list)
        .scheme(conf)
        .scheme(edition)
        .scheme(author_list)
        .scheme(author)
        .entry_point("BibHomePage", "/bib/index.html")
        .link_constraint(lc(
            "BibHomePage.Featured.ToConf",
            "BibHomePage.Featured.ConfName",
            "ConfPage.ConfName",
        ))
        .link_constraint(lc(
            "ConfListPage.ConfList.ToConf",
            "ConfListPage.ConfList.ConfName",
            "ConfPage.ConfName",
        ))
        .link_constraint(lc(
            "DBConfListPage.ConfList.ToConf",
            "DBConfListPage.ConfList.ConfName",
            "ConfPage.ConfName",
        ))
        // Editions replicate year AND editors on the conference page — the
        // redundancy the paper's "editors of VLDB '96" example exploits.
        .link_constraint(lc(
            "ConfPage.EditionList.ToEdition",
            "ConfPage.EditionList.Year",
            "EditionPage.Year",
        ))
        .link_constraint(lc(
            "ConfPage.EditionList.ToEdition",
            "ConfPage.EditionList.Editors",
            "EditionPage.Editors",
        ))
        .link_constraint(lc(
            "ConfPage.EditionList.ToEdition",
            "ConfPage.ConfName",
            "EditionPage.ConfName",
        ))
        .link_constraint(lc(
            "EditionPage.PaperList.Authors.ToAuthor",
            "EditionPage.PaperList.Authors.AName",
            "AuthorPage.AName",
        ))
        .link_constraint(lc(
            "AuthorListPage.AuthorList.ToAuthor",
            "AuthorListPage.AuthorList.AName",
            "AuthorPage.AName",
        ))
        .inclusion(ic(
            "DBConfListPage.ConfList.ToConf",
            "ConfListPage.ConfList.ToConf",
        ))
        .inclusion(ic(
            "BibHomePage.Featured.ToConf",
            "DBConfListPage.ConfList.ToConf",
        ))
        .inclusion(ic(
            "EditionPage.PaperList.Authors.ToAuthor",
            "AuthorListPage.AuthorList.ToAuthor",
        ))
        .build()
        .expect("the bibliography scheme is statically valid")
}

impl Bibliography {
    /// Generates a bibliography site.
    pub fn generate(cfg: BibConfig) -> Result<Bibliography> {
        if cfg.conferences == 0
            || cfg.db_conferences == 0
            || cfg.db_conferences > cfg.conferences
            || cfg.featured > cfg.db_conferences
            || cfg.authors == 0
            || cfg.max_authors_per_paper == 0
        {
            return Err(WebError::BadConfig(
                "need 1 ≤ featured ≤ db_conferences ≤ conferences, ≥1 author, ≥1 author/paper"
                    .into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let author_names = names::person_names(&mut rng, cfg.authors);
        let conf_names = names::conference_names(cfg.conferences);
        let mut papers = Vec::new();
        let mut idx = 0usize;
        for conf in 0..cfg.conferences {
            for e in 0..cfg.editions_per_conf {
                let year = 1997 - e as u32;
                for _ in 0..cfg.papers_per_edition {
                    let n_auth = rng.gen_range(1..=cfg.max_authors_per_paper);
                    let mut authors = Vec::with_capacity(n_auth);
                    while authors.len() < n_auth {
                        let a = rng.gen_range(0..cfg.authors);
                        if !authors.contains(&a) {
                            authors.push(a);
                        }
                    }
                    papers.push(PaperRec {
                        title: names::paper_title(&mut rng, idx),
                        conf,
                        year,
                        authors,
                    });
                    idx += 1;
                }
            }
        }
        let mut b = Bibliography {
            site: Site::new("bibliography", bibliography_scheme()),
            cfg,
            author_names,
            conf_names,
            papers,
        };
        b.render_all()?;
        Ok(b)
    }

    // ----- URLs -----------------------------------------------------------

    /// URL of the bibliography home page.
    pub fn home_url() -> Url {
        Url::new("/bib/index.html")
    }

    /// URL of a conference page.
    pub fn conf_url(i: usize) -> Url {
        Url::new(format!("/bib/conf/{i}.html"))
    }

    /// URL of an edition page.
    pub fn edition_url(conf: usize, year: u32) -> Url {
        Url::new(format!("/bib/conf/{conf}/{year}.html"))
    }

    /// URL of an author page.
    pub fn author_url(i: usize) -> Url {
        Url::new(format!("/bib/author/{i}.html"))
    }

    // ----- rendering -------------------------------------------------------

    fn conf_row(&self, i: usize) -> Tuple {
        Tuple::new()
            .with("ConfName", self.conf_names[i].clone())
            .with("ToConf", Value::link(Self::conf_url(i)))
    }

    fn editors_of(&self, conf: usize, year: u32) -> String {
        // Deterministic editors derived from conference and year.
        let a = &self.author_names[(conf * 7 + year as usize) % self.author_names.len()];
        let b = &self.author_names[(conf * 13 + year as usize * 3) % self.author_names.len()];
        format!("{a} and {b}")
    }

    fn years(&self) -> Vec<u32> {
        (0..self.cfg.editions_per_conf)
            .map(|e| 1997 - e as u32)
            .collect()
    }

    fn render_all(&mut self) -> Result<()> {
        // home
        let featured: Vec<Tuple> = (0..self.cfg.featured).map(|i| self.conf_row(i)).collect();
        let home = Tuple::new()
            .with("ToConfList", Value::link("/bib/confs.html"))
            .with("ToDBConfList", Value::link("/bib/dbconfs.html"))
            .with("ToAuthorList", Value::link("/bib/authors.html"))
            .with_list("Featured", featured);
        self.site
            .publish("BibHomePage", Self::home_url(), home, "Bibliography Home")?;

        // conference lists
        let all: Vec<Tuple> = (0..self.cfg.conferences)
            .map(|i| self.conf_row(i))
            .collect();
        self.site.publish(
            "ConfListPage",
            Url::new("/bib/confs.html"),
            Tuple::new().with_list("ConfList", all),
            "All Conferences",
        )?;
        let db: Vec<Tuple> = (0..self.cfg.db_conferences)
            .map(|i| self.conf_row(i))
            .collect();
        self.site.publish(
            "DBConfListPage",
            Url::new("/bib/dbconfs.html"),
            Tuple::new().with_list("ConfList", db),
            "Database Conferences",
        )?;

        // conference and edition pages
        for c in 0..self.cfg.conferences {
            let editions: Vec<Tuple> = self
                .years()
                .iter()
                .map(|&y| {
                    Tuple::new()
                        .with("Year", y.to_string())
                        .with("Editors", self.editors_of(c, y))
                        .with("ToEdition", Value::link(Self::edition_url(c, y)))
                })
                .collect();
            let t = Tuple::new()
                .with("ConfName", self.conf_names[c].clone())
                .with_list("EditionList", editions);
            self.site.publish(
                "ConfPage",
                Self::conf_url(c),
                t,
                &self.conf_names[c].clone(),
            )?;

            for &y in &self.years() {
                let paper_rows: Vec<Tuple> = self
                    .papers
                    .iter()
                    .filter(|p| p.conf == c && p.year == y)
                    .map(|p| {
                        let authors: Vec<Tuple> = p
                            .authors
                            .iter()
                            .map(|&a| {
                                Tuple::new()
                                    .with("AName", self.author_names[a].clone())
                                    .with("ToAuthor", Value::link(Self::author_url(a)))
                            })
                            .collect();
                        Tuple::new()
                            .with("Title", p.title.clone())
                            .with_list("Authors", authors)
                    })
                    .collect();
                let t = Tuple::new()
                    .with("ConfName", self.conf_names[c].clone())
                    .with("Year", y.to_string())
                    .with("Editors", self.editors_of(c, y))
                    .with_list("PaperList", paper_rows);
                let title = format!("{} {y}", self.conf_names[c]);
                self.site
                    .publish("EditionPage", Self::edition_url(c, y), t, &title)?;
            }
        }

        // author list and author pages
        let rows: Vec<Tuple> = self
            .author_names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                Tuple::new()
                    .with("AName", n.clone())
                    .with("ToAuthor", Value::link(Self::author_url(i)))
            })
            .collect();
        self.site.publish(
            "AuthorListPage",
            Url::new("/bib/authors.html"),
            Tuple::new().with_list("AuthorList", rows),
            "All Authors",
        )?;
        for (i, name) in self.author_names.clone().iter().enumerate() {
            let pubs: Vec<Tuple> = self
                .papers
                .iter()
                .filter(|p| p.authors.contains(&i))
                .map(|p| {
                    Tuple::new()
                        .with("Title", p.title.clone())
                        .with("ConfName", self.conf_names[p.conf].clone())
                        .with("Year", p.year.to_string())
                })
                .collect();
            let t = Tuple::new()
                .with("AName", name.clone())
                .with_list("PubList", pubs);
            self.site
                .publish("AuthorPage", Self::author_url(i), t, name)?;
        }
        Ok(())
    }

    // ----- oracles ----------------------------------------------------------

    /// The three most recent edition years.
    pub fn last_three_years(&self) -> Vec<u32> {
        self.years().into_iter().take(3).collect()
    }

    /// Oracle for the intro query: author names appearing in **each** of
    /// the last three VLDB editions (conference 0), sorted.
    pub fn expected_authors_last3_vldb(&self) -> Vec<String> {
        let years = self.last_three_years();
        let mut per_year: Vec<std::collections::HashSet<usize>> = Vec::new();
        for &y in &years {
            let set = self
                .papers
                .iter()
                .filter(|p| p.conf == 0 && p.year == y)
                .flat_map(|p| p.authors.iter().cloned())
                .collect();
            per_year.push(set);
        }
        let mut result: Vec<String> = per_year
            .iter()
            .skip(1)
            .fold(per_year[0].clone(), |acc, s| {
                acc.intersection(s).cloned().collect()
            })
            .into_iter()
            .map(|i| self.author_names[i].clone())
            .collect();
        result.sort();
        result
    }

    /// Oracle: editors of a given conference edition.
    pub fn expected_editors(&self, conf: usize, year: u32) -> String {
        self.editors_of(conf, year)
    }

    /// Number of authors.
    pub fn author_count(&self) -> usize {
        self.author_names.len()
    }

    /// The configuration used for generation.
    pub fn config(&self) -> &BibConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Bibliography {
        Bibliography::generate(BibConfig {
            authors: 40,
            conferences: 6,
            db_conferences: 3,
            featured: 2,
            editions_per_conf: 4,
            papers_per_edition: 6,
            seed: 11,
            ..BibConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn page_counts() {
        let b = small();
        assert_eq!(b.site.cardinality("ConfPage"), 6);
        assert_eq!(b.site.cardinality("EditionPage"), 24);
        assert_eq!(b.site.cardinality("AuthorPage"), 40);
        assert_eq!(b.site.cardinality("BibHomePage"), 1);
    }

    #[test]
    fn constraints_hold() {
        let b = small();
        let v = b.site.verify_constraints();
        assert!(v.is_empty(), "violations: {v:?}");
    }

    #[test]
    fn vldb_is_conference_zero_and_featured() {
        let b = small();
        let home = b
            .site
            .ground_truth("BibHomePage", &Bibliography::home_url())
            .unwrap();
        let featured = home.get("Featured").unwrap().as_list().unwrap();
        assert!(featured
            .iter()
            .any(|t| t.get("ConfName").unwrap().as_text() == Some("VLDB")));
    }

    #[test]
    fn db_conferences_subset_of_all() {
        let b = small();
        let all = b
            .site
            .ground_truth("ConfListPage", &Url::new("/bib/confs.html"))
            .unwrap()
            .get("ConfList")
            .unwrap()
            .as_list()
            .unwrap()
            .len();
        let db = b
            .site
            .ground_truth("DBConfListPage", &Url::new("/bib/dbconfs.html"))
            .unwrap()
            .get("ConfList")
            .unwrap()
            .as_list()
            .unwrap()
            .len();
        assert!(db < all);
    }

    #[test]
    fn editors_replicated_on_conf_page() {
        let b = small();
        let conf = b
            .site
            .ground_truth("ConfPage", &Bibliography::conf_url(0))
            .unwrap();
        let editions = conf.get("EditionList").unwrap().as_list().unwrap();
        for ed in editions {
            let year: u32 = ed.get("Year").unwrap().as_text().unwrap().parse().unwrap();
            assert_eq!(
                ed.get("Editors").unwrap().as_text().unwrap(),
                b.expected_editors(0, year)
            );
        }
    }

    #[test]
    fn oracle_intersection_is_sound() {
        let b = Bibliography::generate(BibConfig {
            authors: 10,
            conferences: 2,
            db_conferences: 1,
            featured: 1,
            editions_per_conf: 3,
            papers_per_edition: 15,
            max_authors_per_paper: 3,
            seed: 3,
        })
        .unwrap();
        // With 10 authors and 45 author slots/edition, intersection is
        // likely non-empty; verify membership by recomputation.
        let expected = b.expected_authors_last3_vldb();
        for name in &expected {
            for &y in &b.last_three_years() {
                let in_year = b.papers.iter().any(|p| {
                    p.conf == 0
                        && p.year == y
                        && p.authors.iter().any(|&a| &b.author_names[a] == name)
                });
                assert!(in_year, "{name} missing from VLDB {y}");
            }
        }
    }

    #[test]
    fn rejects_bad_config() {
        assert!(Bibliography::generate(BibConfig {
            db_conferences: 0,
            ..BibConfig::default()
        })
        .is_err());
        assert!(Bibliography::generate(BibConfig {
            featured: 99,
            ..BibConfig::default()
        })
        .is_err());
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(
            a.expected_authors_last3_vldb(),
            b.expected_authors_last3_vldb()
        );
    }
}
