//! Site generators for the paper's two running examples.
//!
//! * [`university`] — the hypothetical university site of Figure 1
//!   (departments, professors, sessions, courses);
//! * [`bibliography`] — a bibliography repository modeled on the Trier DBLP
//!   site the paper's introduction reasons about (conferences, editions,
//!   papers, authors).
//!
//! Both generators are deterministic given a seed, publish real HTML pages
//! onto a [`crate::VirtualServer`], record ground truth, and are verified
//! (in tests) to satisfy every constraint their scheme declares.

pub mod bibliography;
pub mod names;
pub mod university;

pub use bibliography::{BibConfig, Bibliography};
pub use university::{University, UniversityConfig};
