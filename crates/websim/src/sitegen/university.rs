//! The university web site of the paper's Figure 1.
//!
//! Page-schemes: `HomePage`, `DeptListPage`, `DeptPage`, `ProfListPage`,
//! `ProfPage`, `SessionListPage`, `SessionPage`, `CoursePage`. The four
//! list/home pages are entry points. Link constraints document anchor
//! replication (e.g. `ProfPage.DName = DeptPage.DName`,
//! `SessionPage.Session = CoursePage.Session` — both given verbatim in the
//! paper); inclusion constraints document the multiple navigation paths to
//! professors and courses.
//!
//! The generator is deterministic in the seed, publishes real HTML pages,
//! and exposes *oracles* (ground-truth external relations) plus a mutation
//! API used by the materialized-view experiments.

use crate::error::WebError;
use crate::site::Site;
use crate::sitegen::names;
use crate::Result;
use adm::{
    Field, InclusionConstraint, LinkConstraint, PageScheme, Tuple, Url, Value, WebScheme, WebType,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration of the generated university site.
///
/// The defaults are the exact parameters of the paper's Example 7.2:
/// "with 50 courses, 20 professors and 3 departments, the second cost
/// amounts to 23 approximately, whereas the first is well over 50".
#[derive(Debug, Clone)]
pub struct UniversityConfig {
    /// Number of departments.
    pub departments: usize,
    /// Number of professors.
    pub professors: usize,
    /// Number of courses.
    pub courses: usize,
    /// Session names (the paper's examples assume 3, selectivity 1/3).
    pub sessions: Vec<String>,
    /// Fraction of professors with a missing (null) e-mail, in percent.
    pub null_email_pct: u32,
    /// RNG seed; equal seeds produce identical sites.
    pub seed: u64,
}

impl Default for UniversityConfig {
    fn default() -> Self {
        UniversityConfig {
            departments: 3,
            professors: 20,
            courses: 50,
            sessions: vec!["Fall".into(), "Winter".into(), "Summer".into()],
            null_email_pct: 10,
            seed: 4242,
        }
    }
}

#[derive(Debug, Clone)]
struct DeptRec {
    name: String,
    address: String,
}

#[derive(Debug, Clone)]
struct ProfRec {
    name: String,
    rank: String,
    email: Option<String>,
    dept: usize,
}

#[derive(Debug, Clone)]
struct CourseRec {
    name: String,
    session: String,
    ctype: String,
    description: String,
    prof: usize,
}

/// A generated university site: the [`Site`] plus generator state enabling
/// oracles and incremental mutations.
#[derive(Debug)]
pub struct University {
    /// The published site.
    pub site: Site,
    cfg: UniversityConfig,
    depts: Vec<DeptRec>,
    profs: Vec<ProfRec>,
    courses: BTreeMap<usize, CourseRec>,
    next_course_id: usize,
}

/// Builds the ADM scheme of Figure 1.
pub fn university_scheme() -> WebScheme {
    let home = PageScheme::new(
        "HomePage",
        vec![
            Field::link("ToDeptList", "DeptListPage"),
            Field::link("ToProfList", "ProfListPage"),
            Field::link("ToSessionList", "SessionListPage"),
        ],
    )
    .expect("static scheme");
    let dept_list = PageScheme::new(
        "DeptListPage",
        vec![Field::list(
            "DeptList",
            vec![Field::text("DName"), Field::link("ToDept", "DeptPage")],
        )],
    )
    .expect("static scheme");
    let dept = PageScheme::new(
        "DeptPage",
        vec![
            Field::text("DName"),
            Field::text("Address"),
            Field::list(
                "ProfList",
                vec![Field::text("PName"), Field::link("ToProf", "ProfPage")],
            ),
        ],
    )
    .expect("static scheme");
    let prof_list = PageScheme::new(
        "ProfListPage",
        vec![Field::list(
            "ProfList",
            vec![Field::text("PName"), Field::link("ToProf", "ProfPage")],
        )],
    )
    .expect("static scheme");
    let prof = PageScheme::new(
        "ProfPage",
        vec![
            Field::text("PName"),
            Field::text("Rank"),
            Field::optional("Email", WebType::Text),
            Field::text("DName"),
            Field::link("ToDept", "DeptPage"),
            Field::list(
                "CourseList",
                vec![Field::text("CName"), Field::link("ToCourse", "CoursePage")],
            ),
        ],
    )
    .expect("static scheme");
    let session_list = PageScheme::new(
        "SessionListPage",
        vec![Field::list(
            "SesList",
            vec![Field::text("Session"), Field::link("ToSes", "SessionPage")],
        )],
    )
    .expect("static scheme");
    let session = PageScheme::new(
        "SessionPage",
        vec![
            Field::text("Session"),
            Field::list(
                "CourseList",
                vec![Field::text("CName"), Field::link("ToCourse", "CoursePage")],
            ),
        ],
    )
    .expect("static scheme");
    let course = PageScheme::new(
        "CoursePage",
        vec![
            Field::text("CName"),
            Field::text("Session"),
            Field::text("Description"),
            Field::text("Type"),
            Field::text("PName"),
            Field::link("ToProf", "ProfPage"),
        ],
    )
    .expect("static scheme");

    let lc = |link: &str, src: &str, tgt: &str| {
        LinkConstraint::parse(link, src, tgt).expect("static constraint")
    };
    let ic =
        |sub: &str, sup: &str| InclusionConstraint::parse(sub, sup).expect("static constraint");

    WebScheme::builder()
        .scheme(home)
        .scheme(dept_list)
        .scheme(dept)
        .scheme(prof_list)
        .scheme(prof)
        .scheme(session_list)
        .scheme(session)
        .scheme(course)
        .entry_point("HomePage", "/univ/index.html")
        .entry_point("DeptListPage", "/univ/depts.html")
        .entry_point("ProfListPage", "/univ/profs.html")
        .entry_point("SessionListPage", "/univ/sessions.html")
        // Anchor replication along every link (Section 3.2).
        .link_constraint(lc(
            "DeptListPage.DeptList.ToDept",
            "DeptListPage.DeptList.DName",
            "DeptPage.DName",
        ))
        .link_constraint(lc(
            "DeptPage.ProfList.ToProf",
            "DeptPage.ProfList.PName",
            "ProfPage.PName",
        ))
        .link_constraint(lc(
            "ProfListPage.ProfList.ToProf",
            "ProfListPage.ProfList.PName",
            "ProfPage.PName",
        ))
        // The two constraints quoted verbatim in the paper:
        .link_constraint(lc("ProfPage.ToDept", "ProfPage.DName", "DeptPage.DName"))
        .link_constraint(lc(
            "SessionPage.CourseList.ToCourse",
            "SessionPage.Session",
            "CoursePage.Session",
        ))
        .link_constraint(lc(
            "ProfPage.CourseList.ToCourse",
            "ProfPage.CourseList.CName",
            "CoursePage.CName",
        ))
        .link_constraint(lc(
            "SessionListPage.SesList.ToSes",
            "SessionListPage.SesList.Session",
            "SessionPage.Session",
        ))
        .link_constraint(lc(
            "SessionPage.CourseList.ToCourse",
            "SessionPage.CourseList.CName",
            "CoursePage.CName",
        ))
        .link_constraint(lc(
            "CoursePage.ToProf",
            "CoursePage.PName",
            "ProfPage.PName",
        ))
        // The inclusion constraints quoted in the paper (Section 3.2):
        .inclusion(ic("CoursePage.ToProf", "ProfListPage.ProfList.ToProf"))
        .inclusion(ic(
            "DeptPage.ProfList.ToProf",
            "ProfListPage.ProfList.ToProf",
        ))
        // Courses reachable through instructors are a subset of the courses
        // listed under sessions (Section 5).
        .inclusion(ic(
            "ProfPage.CourseList.ToCourse",
            "SessionPage.CourseList.ToCourse",
        ))
        .build()
        .expect("the Figure 1 scheme is statically valid")
}

impl University {
    /// Generates a university site from a configuration.
    pub fn generate(cfg: UniversityConfig) -> Result<University> {
        if cfg.departments == 0 || cfg.professors < cfg.departments || cfg.sessions.is_empty() {
            return Err(WebError::BadConfig(
                "need ≥1 department, ≥1 session, and at least as many professors as departments"
                    .into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let dept_names = names::department_names(cfg.departments);
        let depts: Vec<DeptRec> = dept_names
            .iter()
            .enumerate()
            .map(|(i, n)| DeptRec {
                name: n.clone(),
                address: format!("Building {}, Campus Road {}", i + 1, 10 + i),
            })
            .collect();
        let prof_names = names::person_names(&mut rng, cfg.professors);
        let ranks = ["Full", "Associate", "Assistant"];
        let profs: Vec<ProfRec> = prof_names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                // First `departments` professors are spread one per
                // department so no department is empty; the rest random.
                let dept = if i < cfg.departments {
                    i
                } else {
                    rng.gen_range(0..cfg.departments)
                };
                let email = if rng.gen_range(0..100) < cfg.null_email_pct {
                    None
                } else {
                    Some(format!("{}@uni.example", names::slug(n)))
                };
                ProfRec {
                    name: n.clone(),
                    rank: ranks[rng.gen_range(0..ranks.len())].to_string(),
                    email,
                    dept,
                }
            })
            .collect();
        let course_names = names::course_names(&mut rng, cfg.courses);
        let mut courses = BTreeMap::new();
        for (i, n) in course_names.iter().enumerate() {
            courses.insert(
                i,
                CourseRec {
                    name: n.clone(),
                    session: cfg.sessions[rng.gen_range(0..cfg.sessions.len())].clone(),
                    ctype: if rng.gen_bool(0.5) {
                        "Graduate".to_string()
                    } else {
                        "Undergraduate".to_string()
                    },
                    description: names::description(&mut rng),
                    prof: rng.gen_range(0..cfg.professors),
                },
            );
        }
        let mut u = University {
            site: Site::new("university", university_scheme()),
            next_course_id: courses.len(),
            cfg,
            depts,
            profs,
            courses,
        };
        u.render_all()?;
        Ok(u)
    }

    /// Generates the default (paper-parameter) site.
    pub fn default_site() -> Result<University> {
        University::generate(UniversityConfig::default())
    }

    // ----- URLs ---------------------------------------------------------

    /// URL of the home page.
    pub fn home_url() -> Url {
        Url::new("/univ/index.html")
    }

    /// URL of a department page.
    pub fn dept_url(i: usize) -> Url {
        Url::new(format!("/univ/dept/{i}.html"))
    }

    /// URL of a professor page.
    pub fn prof_url(i: usize) -> Url {
        Url::new(format!("/univ/prof/{i}.html"))
    }

    /// URL of a session page.
    pub fn session_url(name: &str) -> Url {
        Url::new(format!("/univ/session/{}.html", names::slug(name)))
    }

    /// URL of a course page.
    pub fn course_url(id: usize) -> Url {
        Url::new(format!("/univ/course/{id}.html"))
    }

    // ----- rendering ------------------------------------------------------

    fn render_all(&mut self) -> Result<()> {
        self.render_home()?;
        self.render_dept_list()?;
        self.render_prof_list()?;
        self.render_session_list()?;
        for i in 0..self.depts.len() {
            self.render_dept(i, false)?;
        }
        for i in 0..self.profs.len() {
            self.render_prof(i, false)?;
        }
        for s in self.cfg.sessions.clone() {
            self.render_session(&s, false)?;
        }
        for id in self.courses.keys().cloned().collect::<Vec<_>>() {
            self.render_course(id, false)?;
        }
        Ok(())
    }

    fn publish(
        &mut self,
        scheme: &str,
        url: Url,
        tuple: Tuple,
        title: &str,
        update: bool,
    ) -> Result<()> {
        if update {
            self.site.republish(scheme, url, tuple, title)
        } else {
            self.site.publish(scheme, url, tuple, title)
        }
    }

    fn render_home(&mut self) -> Result<()> {
        let t = Tuple::new()
            .with("ToDeptList", Value::link("/univ/depts.html"))
            .with("ToProfList", Value::link("/univ/profs.html"))
            .with("ToSessionList", Value::link("/univ/sessions.html"));
        self.publish("HomePage", Self::home_url(), t, "University Home", false)
    }

    fn render_dept_list(&mut self) -> Result<()> {
        let rows = self
            .depts
            .iter()
            .enumerate()
            .map(|(i, d)| {
                Tuple::new()
                    .with("DName", d.name.clone())
                    .with("ToDept", Value::link(Self::dept_url(i)))
            })
            .collect();
        let t = Tuple::new().with_list("DeptList", rows);
        self.publish(
            "DeptListPage",
            Url::new("/univ/depts.html"),
            t,
            "Departments",
            false,
        )
    }

    fn render_prof_list(&mut self) -> Result<()> {
        let rows = self
            .profs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Tuple::new()
                    .with("PName", p.name.clone())
                    .with("ToProf", Value::link(Self::prof_url(i)))
            })
            .collect();
        let t = Tuple::new().with_list("ProfList", rows);
        self.publish(
            "ProfListPage",
            Url::new("/univ/profs.html"),
            t,
            "All Professors",
            false,
        )
    }

    fn render_session_list(&mut self) -> Result<()> {
        let rows = self
            .cfg
            .sessions
            .iter()
            .map(|s| {
                Tuple::new()
                    .with("Session", s.clone())
                    .with("ToSes", Value::link(Self::session_url(s)))
            })
            .collect();
        let t = Tuple::new().with_list("SesList", rows);
        self.publish(
            "SessionListPage",
            Url::new("/univ/sessions.html"),
            t,
            "Sessions",
            false,
        )
    }

    fn render_dept(&mut self, i: usize, update: bool) -> Result<()> {
        let d = self.depts[i].clone();
        let rows = self
            .profs
            .iter()
            .enumerate()
            .filter(|(_, p)| p.dept == i)
            .map(|(j, p)| {
                Tuple::new()
                    .with("PName", p.name.clone())
                    .with("ToProf", Value::link(Self::prof_url(j)))
            })
            .collect();
        let t = Tuple::new()
            .with("DName", d.name.clone())
            .with("Address", d.address.clone())
            .with_list("ProfList", rows);
        self.publish("DeptPage", Self::dept_url(i), t, &d.name, update)
    }

    fn render_prof(&mut self, i: usize, update: bool) -> Result<()> {
        let p = self.profs[i].clone();
        let rows = self
            .courses
            .iter()
            .filter(|(_, c)| c.prof == i)
            .map(|(id, c)| {
                Tuple::new()
                    .with("CName", c.name.clone())
                    .with("ToCourse", Value::link(Self::course_url(*id)))
            })
            .collect();
        let mut t = Tuple::new()
            .with("PName", p.name.clone())
            .with("Rank", p.rank.clone());
        t = match &p.email {
            Some(e) => t.with("Email", e.clone()),
            None => t.with_null("Email"),
        };
        let t = t
            .with("DName", self.depts[p.dept].name.clone())
            .with("ToDept", Value::link(Self::dept_url(p.dept)))
            .with_list("CourseList", rows);
        self.publish("ProfPage", Self::prof_url(i), t, &p.name, update)
    }

    fn render_session(&mut self, session: &str, update: bool) -> Result<()> {
        let rows = self
            .courses
            .iter()
            .filter(|(_, c)| c.session == session)
            .map(|(id, c)| {
                Tuple::new()
                    .with("CName", c.name.clone())
                    .with("ToCourse", Value::link(Self::course_url(*id)))
            })
            .collect();
        let t = Tuple::new()
            .with("Session", session.to_string())
            .with_list("CourseList", rows);
        self.publish(
            "SessionPage",
            Self::session_url(session),
            t,
            &format!("{session} Session"),
            update,
        )
    }

    fn render_course(&mut self, id: usize, update: bool) -> Result<()> {
        let c = self.courses[&id].clone();
        let t = Tuple::new()
            .with("CName", c.name.clone())
            .with("Session", c.session.clone())
            .with("Description", c.description.clone())
            .with("Type", c.ctype.clone())
            .with("PName", self.profs[c.prof].name.clone())
            .with("ToProf", Value::link(Self::prof_url(c.prof)));
        self.publish("CoursePage", Self::course_url(id), t, &c.name, update)
    }

    // ----- mutations (the autonomous site manager) -----------------------

    /// Rewrites a course's description; only the course page changes.
    pub fn update_course_description(&mut self, id: usize, text: impl Into<String>) -> Result<()> {
        let c = self
            .courses
            .get_mut(&id)
            .ok_or_else(|| WebError::BadConfig(format!("no course {id}")))?;
        c.description = text.into();
        self.render_course(id, true)
    }

    /// Changes a professor's e-mail; only their page changes.
    pub fn update_prof_email(&mut self, i: usize, email: Option<String>) -> Result<()> {
        if i >= self.profs.len() {
            return Err(WebError::BadConfig(format!("no professor {i}")));
        }
        self.profs[i].email = email;
        self.render_prof(i, true)
    }

    /// Adds a new course taught by professor `prof`: publishes a new course
    /// page and updates the professor's and the session's pages.
    pub fn add_course(&mut self, prof: usize, session: &str, ctype: &str) -> Result<usize> {
        if prof >= self.profs.len() {
            return Err(WebError::BadConfig(format!("no professor {prof}")));
        }
        if !self.cfg.sessions.iter().any(|s| s == session) {
            return Err(WebError::BadConfig(format!("no session {session}")));
        }
        let id = self.next_course_id;
        self.next_course_id += 1;
        self.courses.insert(
            id,
            CourseRec {
                name: format!("Special Topics {}", 100 + id),
                session: session.to_string(),
                ctype: ctype.to_string(),
                description: "A newly added course.".to_string(),
                prof,
            },
        );
        self.render_course(id, true)?;
        self.render_prof(prof, true)?;
        self.render_session(session, true)?;
        Ok(id)
    }

    /// Hires a new professor into a department: publishes their page and
    /// updates the professor-list and department pages.
    pub fn add_professor(&mut self, dept: usize, rank: &str) -> Result<usize> {
        if dept >= self.depts.len() {
            return Err(WebError::BadConfig(format!("no department {dept}")));
        }
        let i = self.profs.len();
        let name = format!("New Hire {i}");
        self.profs.push(ProfRec {
            email: Some(format!("new-hire-{i}@uni.example")),
            name,
            rank: rank.to_string(),
            dept,
        });
        self.render_prof(i, true)?;
        self.render_prof_list_update()?;
        self.render_dept(dept, true)?;
        Ok(i)
    }

    fn render_prof_list_update(&mut self) -> Result<()> {
        let rows = self
            .profs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Tuple::new()
                    .with("PName", p.name.clone())
                    .with("ToProf", Value::link(Self::prof_url(i)))
            })
            .collect();
        let t = Tuple::new().with_list("ProfList", rows);
        self.publish(
            "ProfListPage",
            Url::new("/univ/profs.html"),
            t,
            "All Professors",
            true,
        )
    }

    /// Removes a course: deletes its page and updates the professor's and
    /// session's pages (dangling links are what URLCheck must detect).
    pub fn remove_course(&mut self, id: usize) -> Result<()> {
        let c = self
            .courses
            .remove(&id)
            .ok_or_else(|| WebError::BadConfig(format!("no course {id}")))?;
        self.site.unpublish("CoursePage", &Self::course_url(id));
        self.render_prof(c.prof, true)?;
        self.render_session(&c.session, true)?;
        Ok(())
    }

    // ----- oracles --------------------------------------------------------

    /// Ground truth for the external relation `Dept(DName, Address)`.
    pub fn expected_dept(&self) -> Vec<(String, String)> {
        self.depts
            .iter()
            .map(|d| (d.name.clone(), d.address.clone()))
            .collect()
    }

    /// Ground truth for `Professor(PName, Rank, Email)`.
    pub fn expected_professor(&self) -> Vec<(String, String, Option<String>)> {
        self.profs
            .iter()
            .map(|p| (p.name.clone(), p.rank.clone(), p.email.clone()))
            .collect()
    }

    /// Ground truth for `Course(CName, Session, Description, Type)`.
    pub fn expected_course(&self) -> Vec<(String, String, String, String)> {
        self.courses
            .values()
            .map(|c| {
                (
                    c.name.clone(),
                    c.session.clone(),
                    c.description.clone(),
                    c.ctype.clone(),
                )
            })
            .collect()
    }

    /// Ground truth for `CourseInstructor(CName, PName)`.
    pub fn expected_course_instructor(&self) -> Vec<(String, String)> {
        self.courses
            .values()
            .map(|c| (c.name.clone(), self.profs[c.prof].name.clone()))
            .collect()
    }

    /// Ground truth for `ProfDept(PName, DName)`.
    pub fn expected_prof_dept(&self) -> Vec<(String, String)> {
        self.profs
            .iter()
            .map(|p| (p.name.clone(), self.depts[p.dept].name.clone()))
            .collect()
    }

    /// Number of courses currently on the site.
    pub fn course_count(&self) -> usize {
        self.courses.len()
    }

    /// Number of professors.
    pub fn prof_count(&self) -> usize {
        self.profs.len()
    }

    /// Current course ids (useful for picking mutation targets).
    pub fn course_ids(&self) -> Vec<usize> {
        self.courses.keys().cloned().collect()
    }

    /// The configuration the site was generated from.
    pub fn config(&self) -> &UniversityConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> University {
        University::generate(UniversityConfig {
            departments: 2,
            professors: 5,
            courses: 8,
            seed: 1,
            ..UniversityConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn page_counts_match_config() {
        let u = small();
        assert_eq!(u.site.cardinality("DeptPage"), 2);
        assert_eq!(u.site.cardinality("ProfPage"), 5);
        assert_eq!(u.site.cardinality("CoursePage"), 8);
        assert_eq!(u.site.cardinality("SessionPage"), 3);
        // home + 3 list pages + the above
        assert_eq!(u.site.total_pages(), 4 + 2 + 5 + 8 + 3);
    }

    #[test]
    fn constraints_hold_on_generated_site() {
        let u = small();
        let violations = u.site.verify_constraints();
        assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn default_site_matches_paper_parameters() {
        let u = University::default_site().unwrap();
        assert_eq!(u.site.cardinality("CoursePage"), 50);
        assert_eq!(u.site.cardinality("ProfPage"), 20);
        assert_eq!(u.site.cardinality("DeptPage"), 3);
        assert!(u.site.verify_constraints().is_empty());
    }

    #[test]
    fn deterministic_generation() {
        let a = small();
        let b = small();
        assert_eq!(
            a.expected_course_instructor(),
            b.expected_course_instructor()
        );
        let url = University::prof_url(0);
        assert_eq!(
            a.site.server.get(&url).unwrap().body,
            b.site.server.get(&url).unwrap().body
        );
    }

    #[test]
    fn no_department_is_empty() {
        let u = small();
        for (_, t) in u.site.instance("DeptPage") {
            let profs = t.get("ProfList").unwrap().as_list().unwrap();
            assert!(!profs.is_empty());
        }
    }

    #[test]
    fn update_description_touches_only_course_page() {
        let mut u = small();
        let course = University::course_url(0);
        let prof = University::prof_url(0);
        let t_course0 = u.site.server.head(&course).unwrap().last_modified;
        let t_prof0 = u.site.server.head(&prof).unwrap().last_modified;
        u.update_course_description(0, "New description").unwrap();
        assert!(u.site.server.head(&course).unwrap().last_modified > t_course0);
        assert_eq!(u.site.server.head(&prof).unwrap().last_modified, t_prof0);
    }

    #[test]
    fn add_course_updates_prof_and_session() {
        let mut u = small();
        let before = u.course_count();
        let id = u.add_course(1, "Fall", "Graduate").unwrap();
        assert_eq!(u.course_count(), before + 1);
        assert!(u.site.server.exists(&University::course_url(id)));
        // professor's page now lists the course
        let t = u
            .site
            .ground_truth("ProfPage", &University::prof_url(1))
            .unwrap();
        let courses = t.get("CourseList").unwrap().as_list().unwrap();
        assert!(courses
            .iter()
            .any(|c| c.get("ToCourse").unwrap().as_link().unwrap() == &University::course_url(id)));
        assert!(u.site.verify_constraints().is_empty());
    }

    #[test]
    fn remove_course_keeps_constraints() {
        let mut u = small();
        u.remove_course(3).unwrap();
        assert!(!u.site.server.exists(&University::course_url(3)));
        assert!(u.site.verify_constraints().is_empty());
    }

    #[test]
    fn add_professor_updates_lists_and_keeps_constraints() {
        let mut u = small();
        let before = u.prof_count();
        let i = u.add_professor(1, "Assistant").unwrap();
        assert_eq!(u.prof_count(), before + 1);
        assert!(u.site.server.exists(&University::prof_url(i)));
        // the professor list now includes the hire
        let list = u
            .site
            .ground_truth("ProfListPage", &Url::new("/univ/profs.html"))
            .unwrap();
        assert_eq!(
            list.get("ProfList").unwrap().as_list().unwrap().len(),
            before + 1
        );
        assert!(u.site.verify_constraints().is_empty());
        assert!(u.add_professor(99, "Full").is_err());
    }

    #[test]
    fn oracles_are_consistent() {
        let u = small();
        assert_eq!(u.expected_professor().len(), 5);
        assert_eq!(u.expected_course().len(), 8);
        assert_eq!(u.expected_course_instructor().len(), 8);
        let profs: std::collections::HashSet<String> =
            u.expected_professor().into_iter().map(|p| p.0).collect();
        for (_, p) in u.expected_course_instructor() {
            assert!(profs.contains(&p));
        }
    }

    #[test]
    fn rejects_bad_config() {
        assert!(University::generate(UniversityConfig {
            departments: 0,
            ..UniversityConfig::default()
        })
        .is_err());
        assert!(University::generate(UniversityConfig {
            departments: 10,
            professors: 5,
            ..UniversityConfig::default()
        })
        .is_err());
    }

    #[test]
    fn scheme_has_paper_constraints() {
        let ws = university_scheme();
        // the two verbatim link constraints
        assert!(ws.link_constraints().iter().any(|c| {
            c.source_attr.qualified() == "ProfPage.DName"
                && c.target_attr.qualified() == "DeptPage.DName"
        }));
        assert!(ws.link_constraints().iter().any(|c| {
            c.source_attr.qualified() == "SessionPage.Session"
                && c.target_attr.qualified() == "CoursePage.Session"
        }));
        // the two verbatim inclusion constraints
        let sub = adm::AttrRef::parse("CoursePage.ToProf").unwrap();
        let sup = adm::AttrRef::parse("ProfListPage.ProfList.ToProf").unwrap();
        assert!(ws.inclusion_implied(&sub, &sup));
    }
}
