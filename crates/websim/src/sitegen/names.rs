//! Deterministic synthetic-name generation for the site generators.
//!
//! Names must be *unique* within their population (person names act as join
//! keys in the external relations, as they do in the paper's examples), so
//! every generator guarantees uniqueness by appending a disambiguating
//! index once the base combinations are exhausted.

use rand::rngs::StdRng;
use rand::Rng;

const FIRST: &[&str] = &[
    "Alice", "Bruno", "Carla", "Davide", "Elena", "Franco", "Giulia", "Hugo", "Irene", "Jorge",
    "Karin", "Luca", "Marta", "Nadia", "Omar", "Paola", "Quentin", "Rosa", "Silvio", "Teresa",
    "Ugo", "Vera", "Walter", "Xenia", "Yuri", "Zoe",
];

const LAST: &[&str] = &[
    "Rossi", "Bianchi", "Mendel", "Atzeni", "Merialdo", "Mecca", "Greco", "Ferrari", "Romano",
    "Colombo", "Ricci", "Marino", "Gallo", "Conti", "Esposito", "Moretti", "Barbieri", "Fontana",
    "Santoro", "Leone", "Longo", "Martini", "Vitale", "Serra",
];

const SUBJECTS: &[&str] = &[
    "Databases",
    "Operating Systems",
    "Algorithms",
    "Compilers",
    "Networks",
    "Graphics",
    "Artificial Intelligence",
    "Logic",
    "Calculus",
    "Geometry",
    "Statistics",
    "Optimization",
    "Quantum Mechanics",
    "Thermodynamics",
    "Electromagnetism",
    "Organic Chemistry",
    "Microeconomics",
    "Linguistics",
    "Information Retrieval",
    "Distributed Systems",
];

const DEPARTMENTS: &[&str] = &[
    "Computer Science",
    "Mathematics",
    "Physics",
    "Chemistry",
    "Biology",
    "Economics",
    "Linguistics",
    "Philosophy",
    "History",
    "Engineering",
    "Statistics",
    "Astronomy",
];

const WORDS: &[&str] = &[
    "incremental",
    "navigational",
    "structured",
    "declarative",
    "efficient",
    "adaptive",
    "semantic",
    "parallel",
    "optimal",
    "robust",
    "temporal",
    "spatial",
    "heterogeneous",
    "distributed",
    "materialized",
    "relational",
];

/// Generates `n` unique person names, deterministically from the RNG.
pub fn person_names(rng: &mut StdRng, n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    while out.len() < n {
        let f = FIRST[rng.gen_range(0..FIRST.len())];
        let l = LAST[rng.gen_range(0..LAST.len())];
        let base = format!("{f} {l}");
        let name = if seen.contains(&base) {
            let mut i = 2;
            loop {
                let candidate = format!("{base} {i}");
                if !seen.contains(&candidate) {
                    break candidate;
                }
                i += 1;
            }
        } else {
            base
        };
        seen.insert(name.clone());
        out.push(name);
    }
    out
}

/// Generates `n` unique department names.
pub fn department_names(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let base = DEPARTMENTS[i % DEPARTMENTS.len()];
            if i < DEPARTMENTS.len() {
                base.to_string()
            } else {
                format!("{base} {}", i / DEPARTMENTS.len() + 1)
            }
        })
        .collect()
}

/// Generates `n` unique course names.
pub fn course_names(rng: &mut StdRng, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            let subject = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];
            format!("{subject} {}", 100 + i)
        })
        .collect()
}

/// Generates `n` unique conference names; index 0 is always "VLDB" so the
/// bibliography experiments can target it.
pub fn conference_names(n: usize) -> Vec<String> {
    let known = [
        "VLDB", "SIGMOD", "PODS", "ICDE", "EDBT", "ICDT", "CIKM", "ER", "DOOD", "DEXA",
    ];
    (0..n)
        .map(|i| {
            if i < known.len() {
                known[i].to_string()
            } else {
                format!("CONF-{i:03}")
            }
        })
        .collect()
}

/// A synthetic paper title.
pub fn paper_title(rng: &mut StdRng, idx: usize) -> String {
    let a = WORDS[rng.gen_range(0..WORDS.len())];
    let b = WORDS[rng.gen_range(0..WORDS.len())];
    let c = SUBJECTS[rng.gen_range(0..SUBJECTS.len())];
    format!("On {a} {b} methods for {c} (no. {idx})")
}

/// A short filler sentence, used for descriptions.
pub fn description(rng: &mut StdRng) -> String {
    let a = WORDS[rng.gen_range(0..WORDS.len())];
    let b = WORDS[rng.gen_range(0..WORDS.len())];
    format!("A course covering {a} and {b} techniques.")
}

/// Slugifies a name for use inside URLs.
pub fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn person_names_unique_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = person_names(&mut r1, 2000);
        let b = person_names(&mut r2, 2000);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 2000);
    }

    #[test]
    fn department_names_unique_beyond_base_list() {
        let names = department_names(30);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 30);
        assert_eq!(names[0], "Computer Science");
    }

    #[test]
    fn conference_names_start_with_vldb() {
        let names = conference_names(15);
        assert_eq!(names[0], "VLDB");
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 15);
    }

    #[test]
    fn course_names_unique() {
        let mut rng = StdRng::seed_from_u64(1);
        let names = course_names(&mut rng, 500);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn slug_is_url_safe() {
        assert_eq!(slug("Computer Science"), "computer-science");
        assert_eq!(slug("C++ & Co."), "c-----co-");
    }
}
