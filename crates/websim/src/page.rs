//! Rendering ADM tuples as HTML pages.
//!
//! Each page is a complete HTML document with ordinary chrome (masthead,
//! navigation, footer) plus the page's data marked up with a small
//! microformat the wrapper layer understands:
//!
//! * a mono-valued attribute `A` renders as an element with
//!   `class="adm-attr" data-attr="A"` — a `<span>` for text, an `<a href>`
//!   for links, an `<img src>` for images;
//! * a list attribute `L` renders as `<ul class="adm-list" data-attr="L">`
//!   with `<li class="adm-row">` rows, or as a `<table>`/`<tr>` equivalent
//!   (markup style varies per attribute, as on real sites — extraction
//!   keys on the classes, not the tags), recursively;
//! * a null (optional, absent) attribute renders nothing.
//!
//! This stands in for the paper's assumption that "suitable wrappers are
//! applied to pages in order to access attribute values": the wrapper crate
//! actually parses these documents back into nested tuples.

use crate::html::{document, el, Element, Node};
use adm::{Field, PageScheme, Tuple, Value, WebType};

/// Renders one attribute value. Returns `None` for nulls (nothing emitted).
fn render_value(field: &Field, value: &Value) -> Option<Node> {
    match (&field.ty, value) {
        (_, Value::Null) => None,
        (WebType::Text, Value::Text(s)) => Some(
            el("span")
                .attr("class", "adm-attr")
                .attr("data-attr", &field.name)
                .text(s.clone())
                .into(),
        ),
        (WebType::Image, Value::Text(src)) => Some(
            el("img")
                .attr("class", "adm-attr")
                .attr("data-attr", &field.name)
                .attr("src", src.clone())
                .into(),
        ),
        (WebType::Link { .. }, Value::Link(u)) => Some(
            el("a")
                .attr("class", "adm-attr")
                .attr("data-attr", &field.name)
                .attr("href", u.as_str())
                .text("link")
                .into(),
        ),
        (WebType::List(inner), Value::List(rows)) => {
            // Real sites mix markup styles; lists render as <ul> or as
            // <table>, chosen deterministically per attribute name. The
            // wrapper keys on the adm-list/adm-row classes, not the tags.
            let tabular = field.name.len().is_multiple_of(2);
            let (list_tag, row_tag) = if tabular {
                ("table", "tr")
            } else {
                ("ul", "li")
            };
            let mut list = el(list_tag)
                .attr("class", "adm-list")
                .attr("data-attr", &field.name);
            for row in rows {
                let mut item = el(row_tag).attr("class", "adm-row");
                if tabular {
                    let mut cell = el("td");
                    for node in render_fields(inner, row) {
                        cell = cell.child(node);
                    }
                    item = item.child(cell);
                } else {
                    for node in render_fields(inner, row) {
                        item = item.child(node);
                    }
                }
                list = list.child(item);
            }
            Some(list.into())
        }
        // Mismatches should never be produced by the generators; render a
        // comment so they are visible (and wrapping will report the miss).
        _ => Some(Node::Comment(format!(
            "type mismatch for attribute {}",
            field.name
        ))),
    }
}

/// Renders all fields of a tuple, in scheme order, with labels.
fn render_fields(fields: &[Field], tuple: &Tuple) -> Vec<Node> {
    let mut out = Vec::new();
    for f in fields {
        let v = tuple.get(&f.name).unwrap_or(&Value::Null);
        if let Some(node) = render_value(f, v) {
            // A human-readable label before the value, as real pages have.
            out.push(el("b").text(format!("{}: ", f.name)).into());
            out.push(node);
            out.push(el("br").into());
        }
    }
    out
}

/// Renders a full page for a tuple of the given page-scheme.
pub fn render_page(scheme: &PageScheme, tuple: &Tuple, title: &str) -> String {
    let chrome_top = el("div")
        .attr("class", "chrome")
        .child(el("h1").text(title.to_string()))
        .child(
            el("p")
                .attr("class", "nav")
                .text("Home | About | Search | Help"),
        )
        .child(el("hr"));
    let mut content = el("div")
        .attr("class", "adm-page")
        .attr("data-scheme", &scheme.name);
    for node in render_fields(&scheme.fields, tuple) {
        content = content.child(node);
    }
    let footer = el("div")
        .attr("class", "chrome footer")
        .child(el("hr"))
        .child(el("small").text("Maintained by the webmaster. Last generated automatically."));
    let body: Element = el("body").child(chrome_top).child(content).child(footer);
    document(title, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adm::Field;

    fn prof_scheme() -> PageScheme {
        PageScheme::new(
            "ProfPage",
            vec![
                Field::text("PName"),
                Field::optional("Email", WebType::Text),
                Field::link("ToDept", "DeptPage"),
                Field::list(
                    "CourseList",
                    vec![Field::text("CName"), Field::link("ToCourse", "CoursePage")],
                ),
            ],
        )
        .unwrap()
    }

    fn prof_tuple() -> Tuple {
        Tuple::new()
            .with("PName", "E. Codd")
            .with_null("Email")
            .with("ToDept", Value::link("/dept/1.html"))
            .with_list(
                "CourseList",
                vec![Tuple::new()
                    .with("CName", "Databases <advanced>")
                    .with("ToCourse", Value::link("/course/1.html"))],
            )
    }

    #[test]
    fn renders_attrs_with_markers() {
        let html = render_page(&prof_scheme(), &prof_tuple(), "Prof");
        assert!(html.contains("data-attr=\"PName\""));
        assert!(html.contains("E. Codd"));
        assert!(html.contains("href=\"/dept/1.html\""));
        assert!(html.contains("data-attr=\"CourseList\""));
        assert!(html.contains("class=\"adm-row\""));
    }

    #[test]
    fn nulls_render_nothing() {
        let html = render_page(&prof_scheme(), &prof_tuple(), "Prof");
        assert!(!html.contains("data-attr=\"Email\""));
    }

    #[test]
    fn text_is_escaped() {
        let html = render_page(&prof_scheme(), &prof_tuple(), "Prof");
        assert!(html.contains("Databases &lt;advanced&gt;"));
        assert!(!html.contains("Databases <advanced>"));
    }

    #[test]
    fn chrome_present_but_unmarked() {
        let html = render_page(&prof_scheme(), &prof_tuple(), "Prof");
        assert!(html.contains("class=\"chrome\""));
        assert!(html.contains("webmaster"));
    }

    #[test]
    fn list_markup_varies_by_attribute_name() {
        // "CourseList" (10 chars, even) renders as a table; a 7-char list
        // name renders as <ul>. Both carry the same extraction markers.
        let html = render_page(&prof_scheme(), &prof_tuple(), "Prof");
        assert!(html.contains("<table class=\"adm-list\" data-attr=\"CourseList\">"));
        let odd =
            PageScheme::new("P", vec![Field::list("Entries", vec![Field::text("X")])]).unwrap();
        let t = Tuple::new().with_list("Entries", vec![Tuple::new().with("X", "1")]);
        let html = render_page(&odd, &t, "P");
        assert!(html.contains("<ul class=\"adm-list\" data-attr=\"Entries\">"));
    }

    #[test]
    fn nested_lists_render() {
        let scheme = PageScheme::new(
            "EditionPage",
            vec![Field::list(
                "PaperList",
                vec![
                    Field::text("Title"),
                    Field::list(
                        "Authors",
                        vec![Field::text("AName"), Field::link("ToAuthor", "EditionPage")],
                    ),
                ],
            )],
        )
        .unwrap();
        let t = Tuple::new().with_list(
            "PaperList",
            vec![Tuple::new().with("Title", "A Paper").with_list(
                "Authors",
                vec![Tuple::new()
                    .with("AName", "Alice")
                    .with("ToAuthor", Value::link("/a/1.html"))],
            )],
        );
        let html = render_page(&scheme, &t, "Edition");
        assert!(html.contains("data-attr=\"PaperList\""));
        assert!(html.contains("data-attr=\"Authors\""));
        assert!(html.contains("Alice"));
    }
}
