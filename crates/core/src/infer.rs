//! Default-navigation inference.
//!
//! The paper (end of Section 5): "We may think that the human designer
//! examines the ADM scheme and defines all default navigations
//! corresponding to external relations. As an alternative, **by inference
//! over inclusion constraints, the system might be able to select default
//! navigations among all possible navigations in the scheme.**"
//!
//! This module implements that alternative. A navigation path *covers* its
//! final page-scheme (reaches every instance) when, inductively:
//!
//! * an entry point covers its singleton page-scheme;
//! * a follow step covers its target if the prefix covers its source and
//!   the followed link is **⊇-maximal** among all links to the target —
//!   i.e. every other link attribute pointing at the target is contained
//!   in it under the declared (or discovered) inclusion constraints.
//!
//! Combined with [`crate::discover`], this closes the loop the paper
//! sketches: crawl a site, mine its constraints, extend the scheme, infer
//! complete navigations, and offer a relational view with *no hand-written
//! catalog at all* (see [`auto_catalog`]).

use crate::views::{DefaultNavigation, ExternalRelation, ViewCatalog};
use crate::{OptError, Result};
use adm::paths::{enumerate_paths, NavPath, PathStep};
use adm::{AttrRef, WebScheme};
use nalg::NalgExpr;

/// A navigation inferred for a target page-scheme.
#[derive(Debug, Clone)]
pub struct InferredNavigation {
    /// The path through the scheme.
    pub path: NavPath,
    /// The corresponding NALG expression.
    pub expr: NalgExpr,
    /// Whether inclusion-constraint reasoning proves the path reaches the
    /// whole extent of the target scheme.
    pub complete: bool,
}

/// Is `link` a ⊇-maximal link to `target` (every other link to the target
/// is included in it)?
fn is_maximal_link(ws: &WebScheme, link: &AttrRef, target: &str) -> bool {
    ws.links_to(target)
        .iter()
        .all(|other| ws.inclusion_implied(other, link))
}

/// Does this path provably cover its final page-scheme?
fn path_covers(ws: &WebScheme, path: &NavPath) -> bool {
    // walk the path, tracking the current scheme and the current
    // unnest-prefix inside it (links live at nested levels)
    let mut current_scheme = path.entry.clone();
    let mut prefix: Vec<String> = Vec::new();
    if ws.entry_point(&current_scheme).is_none() {
        return false;
    }
    for step in &path.steps {
        match step {
            PathStep::Unnest(a) => prefix.push(a.clone()),
            PathStep::Follow { link, target } => {
                let mut link_path = prefix.clone();
                link_path.push(link.clone());
                let link_ref = AttrRef {
                    scheme: current_scheme.clone(),
                    path: link_path,
                };
                if !is_maximal_link(ws, &link_ref, target) {
                    return false;
                }
                current_scheme = target.clone();
                prefix.clear();
            }
        }
    }
    true
}

/// Infers navigations from entry points to `target`, marking each as
/// complete or not. Paths are shortest-first; `max_hops` bounds the
/// search.
pub fn infer_navigations(ws: &WebScheme, target: &str, max_hops: usize) -> Vec<InferredNavigation> {
    enumerate_paths(ws, target, max_hops)
        .into_iter()
        .map(|path| InferredNavigation {
            expr: NalgExpr::from_path(&path),
            complete: path_covers(ws, &path),
            path,
        })
        .collect()
}

/// Builds an external relation for a page-scheme automatically: one
/// attribute per top-level mono-valued non-link attribute, bound to the
/// target page's columns, with every *complete* inferred navigation as a
/// default navigation. Errors if no complete navigation exists.
pub fn auto_relation(ws: &WebScheme, target: &str, max_hops: usize) -> Result<ExternalRelation> {
    let scheme = ws.scheme(target)?;
    let attrs: Vec<String> = scheme
        .fields
        .iter()
        .filter(|f| f.ty.is_mono_valued() && !f.ty.is_link())
        .map(|f| f.name.clone())
        .collect();
    let navigations: Vec<DefaultNavigation> = infer_navigations(ws, target, max_hops)
        .into_iter()
        .filter(|n| n.complete)
        .map(|n| {
            DefaultNavigation::new(
                n.expr,
                attrs
                    .iter()
                    .map(|a| (a.clone(), format!("{target}.{a}")))
                    .collect(),
            )
        })
        .collect();
    if navigations.is_empty() {
        return Err(OptError::NoPlan(format!(
            "no provably complete navigation to {target} (missing inclusion constraints?)"
        )));
    }
    Ok(ExternalRelation::new(target, attrs, navigations))
}

/// Builds a whole view catalog automatically: one external relation per
/// page-scheme that has at least one provably complete navigation and at
/// least one non-link attribute.
pub fn auto_catalog(ws: &WebScheme, max_hops: usize) -> ViewCatalog {
    let mut catalog = ViewCatalog::new();
    for scheme in ws.schemes() {
        if let Ok(rel) = auto_relation(ws, &scheme.name, max_hops) {
            if !rel.attrs.is_empty() {
                catalog = catalog.with(rel);
            }
        }
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::crawl_instance;
    use crate::discover::discover_constraints;
    use crate::source::LiveSource;
    use crate::{ConjunctiveQuery, QuerySession, SiteStatistics};
    use websim::sitegen::university::university_scheme;
    use websim::sitegen::{University, UniversityConfig};

    #[test]
    fn professor_navigation_is_inferred_complete() {
        let ws = university_scheme();
        let navs = infer_navigations(&ws, "ProfPage", 3);
        // the ProfListPage path is complete; dept/course paths are not
        let complete: Vec<&InferredNavigation> = navs.iter().filter(|n| n.complete).collect();
        assert!(!complete.is_empty());
        for n in &complete {
            assert!(
                n.path.to_string().contains("ProfListPage"),
                "unexpected complete path {}",
                n.path
            );
        }
        let incomplete = navs
            .iter()
            .find(|n| n.path.to_string().contains("DeptListPage"));
        assert!(incomplete.is_some_and(|n| !n.complete));
    }

    #[test]
    fn course_navigation_requires_session_path() {
        let ws = university_scheme();
        let navs = infer_navigations(&ws, "CoursePage", 3);
        let complete: Vec<String> = navs
            .iter()
            .filter(|n| n.complete)
            .map(|n| n.path.to_string())
            .collect();
        assert!(!complete.is_empty());
        for p in &complete {
            assert!(p.contains("SessionListPage"), "{p}");
        }
    }

    #[test]
    fn dept_page_incomplete_until_inclusion_discovered() {
        let ws = university_scheme();
        // the declared scheme has no inclusion among links to DeptPage, so
        // nothing is provably complete…
        assert!(auto_relation(&ws, "DeptPage", 3).is_err());
        // …but discovery closes the gap
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 9,
            courses: 15,
            seed: 5,
            ..UniversityConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&u.site);
        let inst = crawl_instance(&u.site.scheme, &src);
        let mined = discover_constraints(&u.site.scheme, &inst);
        let enriched = u
            .site
            .scheme
            .extended_with(vec![], mined.inclusion_constraints)
            .unwrap();
        let rel = auto_relation(&enriched, "DeptPage", 3).unwrap();
        assert!(rel.attrs.contains(&"DName".to_string()));
    }

    #[test]
    fn auto_catalog_answers_match_hand_catalog() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let source = LiveSource::for_site(&u.site);
        // fully automatic pipeline: crawl → discover → extend → infer
        let inst = crawl_instance(&u.site.scheme, &source);
        let mined = discover_constraints(&u.site.scheme, &inst);
        let enriched = u
            .site
            .scheme
            .extended_with(mined.link_constraints, mined.inclusion_constraints)
            .unwrap();
        let auto = auto_catalog(&enriched, 4);
        auto.validate(&enriched).unwrap();
        assert!(auto.relation("ProfPage").is_ok());

        let q = ConjunctiveQuery::new("full profs")
            .atom("ProfPage")
            .select((0, "Rank"), "Full")
            .project((0, "PName"));
        let session = QuerySession::new(&enriched, &auto, &stats, &source);
        let outcome = session.run(&q).unwrap();
        let expected: std::collections::HashSet<String> = u
            .expected_professor()
            .into_iter()
            .filter(|(_, r, _)| r == "Full")
            .map(|(n, _, _)| n)
            .collect();
        let got: std::collections::HashSet<String> = outcome
            .report
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn inferred_complete_navigations_really_are_complete() {
        // runtime check: evaluating a complete navigation yields exactly
        // the page-scheme cardinality
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 7,
            courses: 12,
            seed: 31,
            ..UniversityConfig::default()
        })
        .unwrap();
        let source = LiveSource::for_site(&u.site);
        for target in ["ProfPage", "CoursePage", "SessionPage"] {
            for nav in infer_navigations(&u.site.scheme, target, 3) {
                if !nav.complete {
                    continue;
                }
                let report = nalg::Evaluator::new(&u.site.scheme, &source)
                    .eval(&nav.expr.clone().project(vec![format!("{target}.URL")]))
                    .unwrap();
                assert_eq!(
                    report.relation.len(),
                    u.site.cardinality(target),
                    "{}",
                    nav.path
                );
            }
        }
    }
}
