//! Site crawling: exploring a site from its entry points.
//!
//! The paper assumes both statistics and constraints are "estimated
//! exploring the site by means of a tool such as WebSQL". This module is
//! that tool: a BFS from the entry points that follows every typed link
//! and wraps every page, returning the full instance of every page-scheme.
//! A work-stealing parallel variant (crossbeam scoped threads) exists for
//! large sites — the virtual server and the wrappers are thread-safe.

use adm::{Field, Tuple, Url, Value, WebScheme, WebType};
use nalg::PageSource;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A crawled site instance: page-scheme name → URL-sorted pages.
pub type SiteInstance = BTreeMap<String, Vec<(Url, Tuple)>>;

/// All outgoing links of a tuple, with their target schemes.
pub fn outlinks(fields: &[Field], tuple: &Tuple) -> Vec<(String, Url)> {
    let mut out = Vec::new();
    fn walk(fields: &[Field], tuple: &Tuple, out: &mut Vec<(String, Url)>) {
        for f in fields {
            match (&f.ty, tuple.get(&f.name)) {
                (WebType::Link { target }, Some(Value::Link(u))) => {
                    out.push((target.clone(), u.clone()));
                }
                (WebType::List(inner), Some(Value::List(rows))) => {
                    for row in rows {
                        walk(inner, row, out);
                    }
                }
                _ => {}
            }
        }
    }
    walk(fields, tuple, &mut out);
    out
}

/// Sequential BFS crawl from the scheme's entry points. Unreachable or
/// unwrappable pages are skipped silently (the web is best-effort).
pub fn crawl_instance(ws: &WebScheme, source: &impl PageSource) -> SiteInstance {
    let mut queue: VecDeque<(Url, String)> = ws
        .entry_points()
        .iter()
        .map(|e| (e.url.clone(), e.scheme.clone()))
        .collect();
    let mut seen: HashSet<Url> = queue.iter().map(|(u, _)| u.clone()).collect();
    let mut out: SiteInstance = BTreeMap::new();
    while let Some((url, scheme)) = queue.pop_front() {
        let Ok(tuple) = source.fetch(&url, &scheme) else {
            continue;
        };
        let Ok(ps) = ws.scheme(&scheme) else { continue };
        for (target, link) in outlinks(&ps.fields, &tuple) {
            if seen.insert(link.clone()) {
                queue.push_back((link, target));
            }
        }
        out.entry(scheme).or_default().push((url, tuple));
    }
    for pages in out.values_mut() {
        pages.sort_by(|a, b| a.0.cmp(&b.0));
    }
    out
}

/// Parallel crawl with `workers` scoped threads over a shared frontier.
/// Produces exactly the same instance as [`crawl_instance`].
pub fn crawl_instance_parallel(
    ws: &WebScheme,
    source: &(impl PageSource + Sync),
    workers: usize,
) -> SiteInstance {
    let workers = workers.max(1);
    let queue: Mutex<VecDeque<(Url, String)>> = Mutex::new(
        ws.entry_points()
            .iter()
            .map(|e| (e.url.clone(), e.scheme.clone()))
            .collect(),
    );
    let seen: Mutex<HashSet<Url>> =
        Mutex::new(ws.entry_points().iter().map(|e| e.url.clone()).collect());
    let results: Mutex<Vec<(String, Url, Tuple)>> = Mutex::new(Vec::new());
    let in_flight = AtomicUsize::new(0);

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let item = {
                    let mut q = queue.lock().expect("queue lock");
                    match q.pop_front() {
                        Some(x) => {
                            in_flight.fetch_add(1, Ordering::SeqCst);
                            Some(x)
                        }
                        None => None,
                    }
                };
                match item {
                    Some((url, scheme)) => {
                        if let (Ok(tuple), Ok(ps)) =
                            (source.fetch(&url, &scheme), ws.scheme(&scheme))
                        {
                            let links = outlinks(&ps.fields, &tuple);
                            {
                                let mut s = seen.lock().expect("seen lock");
                                let mut q = queue.lock().expect("queue lock");
                                for (target, link) in links {
                                    if s.insert(link.clone()) {
                                        q.push_back((link, target));
                                    }
                                }
                            }
                            results
                                .lock()
                                .expect("results lock")
                                .push((scheme, url, tuple));
                        }
                        in_flight.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        if in_flight.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            });
        }
    })
    .expect("crawler threads do not panic");

    let mut out: SiteInstance = BTreeMap::new();
    for (scheme, url, tuple) in results.into_inner().expect("no poisoned lock") {
        out.entry(scheme).or_default().push((url, tuple));
    }
    for pages in out.values_mut() {
        pages.sort_by(|a, b| a.0.cmp(&b.0));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::LiveSource;
    use websim::sitegen::{University, UniversityConfig};

    fn uni() -> University {
        University::generate(UniversityConfig {
            departments: 3,
            professors: 8,
            courses: 16,
            seed: 71,
            ..UniversityConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn sequential_crawl_reaches_whole_site() {
        let u = uni();
        let src = LiveSource::for_site(&u.site);
        let inst = crawl_instance(&u.site.scheme, &src);
        let total: usize = inst.values().map(Vec::len).sum();
        assert_eq!(total, u.site.total_pages());
        // crawled tuples equal ground truth
        for (scheme, pages) in &inst {
            for (url, t) in pages {
                assert_eq!(Some(t), u.site.ground_truth(scheme, url));
            }
        }
    }

    #[test]
    fn parallel_crawl_equals_sequential() {
        let u = uni();
        let src = LiveSource::for_site(&u.site);
        let seq = crawl_instance(&u.site.scheme, &src);
        for workers in [1, 2, 4, 8] {
            let par = crawl_instance_parallel(&u.site.scheme, &src, workers);
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn parallel_crawl_downloads_each_page_once() {
        let u = uni();
        let src = LiveSource::for_site(&u.site);
        u.site.server.reset_stats();
        crawl_instance_parallel(&u.site.scheme, &src, 4);
        assert_eq!(u.site.server.stats().gets as usize, u.site.total_pages());
    }

    #[test]
    fn crawl_and_statistics_share_one_download_pass() {
        let u = uni();
        let live = LiveSource::for_site(&u.site);
        let cache = nalg::SharedPageCache::default();
        let src = crate::source::CachedSource::new(&live, &cache);
        u.site.server.reset_stats();
        let inst = crawl_instance(&u.site.scheme, &src);
        let cold_gets = u.site.server.stats().gets;
        assert_eq!(cold_gets as usize, u.site.total_pages());
        // Statistics collection re-crawls through the same shared cache:
        // no second download pass.
        let stats = crate::stats::SiteStatistics::crawl(&u.site.scheme, &src);
        assert_eq!(u.site.server.stats().gets, cold_gets);
        assert_eq!(stats.card("ProfPage"), 8.0);
        // And a repeat crawl is also free.
        let again = crawl_instance(&u.site.scheme, &src);
        assert_eq!(again, inst);
        assert_eq!(u.site.server.stats().gets, cold_gets);
    }

    #[test]
    fn crawl_skips_dangling_pages() {
        let u = uni();
        // remove a course page directly from the server (dangling links)
        u.site.server.remove(&University::course_url(3));
        let src = LiveSource::for_site(&u.site);
        let inst = crawl_instance(&u.site.scheme, &src);
        let total: usize = inst.values().map(Vec::len).sum();
        assert_eq!(total, u.site.total_pages() - 1);
    }
}
