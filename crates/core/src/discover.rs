//! Constraint discovery by site exploration.
//!
//! The paper (Section 3.3, footnote 7): "To derive inclusion constraints
//! for a site, one may think of using a tool like WebSQL in order to
//! verify different paths leading to the same page-scheme and check
//! inclusions between sets of links." The same reverse-engineering idea
//! applies to link constraints (anchor replication). This module mines
//! both from a crawled instance:
//!
//! * **link constraints** — every `(source attribute, target attribute)`
//!   pair co-located with a link that satisfies the iff-condition on the
//!   whole instance (checked with the same verifier the generators'
//!   self-tests use), restricted to non-vacuous evidence;
//! * **inclusion constraints** — every ordered pair of link attributes
//!   with the same target whose URL sets are in non-trivial containment.
//!
//! Mined constraints are *candidates*: they hold on the current instance
//! and a human designer (or a refresh policy) decides whether they are
//! intended invariants. On the generated sites, everything the schemes
//! declare is rediscovered.

use crate::crawl::SiteInstance;
use adm::constraints::{verify_inclusion_constraint, verify_link_constraint};
use adm::{AttrRef, Field, InclusionConstraint, LinkConstraint, WebScheme, WebType};

/// Constraints mined from an instance.
#[derive(Debug, Clone, Default)]
pub struct Discovered {
    /// Link constraints that hold (with at least one witnessing pair).
    pub link_constraints: Vec<LinkConstraint>,
    /// Inclusion constraints that hold (with a non-empty subset side).
    pub inclusion_constraints: Vec<InclusionConstraint>,
}

impl Discovered {
    /// True if the given link constraint was discovered.
    pub fn has_link(&self, c: &LinkConstraint) -> bool {
        self.link_constraints.contains(c)
    }

    /// True if the given inclusion constraint was discovered.
    pub fn has_inclusion(&self, c: &InclusionConstraint) -> bool {
        self.inclusion_constraints.contains(c)
    }
}

/// All mono-valued attribute paths of a scheme (recursively).
fn mono_paths(fields: &[Field]) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    fn walk(fields: &[Field], prefix: &mut Vec<String>, out: &mut Vec<Vec<String>>) {
        for f in fields {
            prefix.push(f.name.clone());
            match &f.ty {
                WebType::List(inner) => walk(inner, prefix, out),
                _ => out.push(prefix.clone()),
            }
            prefix.pop();
        }
    }
    walk(fields, &mut Vec::new(), &mut out);
    out
}

/// Mines link and inclusion constraints from a crawled instance.
pub fn discover_constraints(ws: &WebScheme, instance: &SiteInstance) -> Discovered {
    let mut found = Discovered::default();
    let empty: Vec<(adm::Url, adm::Tuple)> = Vec::new();
    let pages = |scheme: &str| instance.get(scheme).unwrap_or(&empty);

    // ── link constraints ────────────────────────────────────────────────
    for scheme in ws.schemes() {
        let source_pages = pages(&scheme.name);
        if source_pages.is_empty() {
            continue;
        }
        for (link_path, target) in scheme.link_paths() {
            let link_ref = AttrRef {
                scheme: scheme.name.clone(),
                path: link_path.clone(),
            };
            let Ok(link_lists) = scheme.list_ancestors(&link_path) else {
                continue;
            };
            let target_pages = pages(&target);
            let Ok(target_scheme) = ws.scheme(&target) else {
                continue;
            };
            for attr_path in mono_paths(&scheme.fields) {
                if attr_path == link_path {
                    continue;
                }
                // the source attribute must be visible at the link's level
                let Ok(attr_lists) = scheme.list_ancestors(&attr_path) else {
                    continue;
                };
                if !link_lists.starts_with(&attr_lists) {
                    continue;
                }
                // evidence: at least one (attr, link) pair with a real URL
                let has_witness = source_pages.iter().any(|(_, t)| {
                    adm::constraints::collect_pairs(t, &attr_path, &link_path)
                        .iter()
                        .any(|(a, l)| !a.is_null() && l.as_link().is_some())
                });
                if !has_witness {
                    continue;
                }
                for tf in &target_scheme.fields {
                    if !tf.ty.is_mono_valued() || tf.ty.is_link() {
                        continue;
                    }
                    let candidate = LinkConstraint::new(
                        link_ref.clone(),
                        AttrRef {
                            scheme: scheme.name.clone(),
                            path: attr_path.clone(),
                        },
                        AttrRef {
                            scheme: target.clone(),
                            path: vec![tf.name.clone()],
                        },
                    );
                    if verify_link_constraint(&candidate, source_pages, target_pages).is_empty() {
                        found.link_constraints.push(candidate);
                    }
                }
            }
        }
    }

    // ── inclusion constraints ───────────────────────────────────────────
    // group link attributes by target scheme
    let mut by_target: std::collections::BTreeMap<String, Vec<AttrRef>> = Default::default();
    for scheme in ws.schemes() {
        for (path, target) in scheme.link_paths() {
            by_target.entry(target).or_default().push(AttrRef {
                scheme: scheme.name.clone(),
                path,
            });
        }
    }
    for links in by_target.values() {
        for sub in links {
            for sup in links {
                if sub == sup {
                    continue;
                }
                let candidate = InclusionConstraint::new(sub.clone(), sup.clone());
                let sub_pages = pages(&sub.scheme);
                let sup_pages = pages(&sup.scheme);
                // require a non-empty subset side — vacuous containments
                // are noise
                let has_sub_links = sub_pages.iter().any(|(_, t)| {
                    adm::constraints::collect_values(t, &sub.path)
                        .iter()
                        .any(|v| v.as_link().is_some())
                });
                if !has_sub_links {
                    continue;
                }
                if verify_inclusion_constraint(&candidate, sub_pages, sup_pages).is_empty() {
                    found.inclusion_constraints.push(candidate);
                }
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::crawl_instance;
    use crate::source::LiveSource;
    use websim::sitegen::{BibConfig, Bibliography, University, UniversityConfig};

    fn discovered_university() -> (WebScheme, Discovered) {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 20,
            seed: 17,
            ..UniversityConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&u.site);
        let inst = crawl_instance(&u.site.scheme, &src);
        let found = discover_constraints(&u.site.scheme, &inst);
        (u.site.scheme.clone(), found)
    }

    #[test]
    fn rediscovers_every_declared_link_constraint() {
        let (ws, found) = discovered_university();
        for declared in ws.link_constraints() {
            assert!(found.has_link(declared), "not rediscovered: {declared}");
        }
    }

    #[test]
    fn rediscovers_every_declared_inclusion() {
        let (ws, found) = discovered_university();
        for declared in ws.inclusion_constraints() {
            assert!(
                found.has_inclusion(declared),
                "not rediscovered: {declared}"
            );
        }
    }

    #[test]
    fn discovers_true_but_undeclared_facts() {
        let (_, found) = discovered_university();
        // every professor's department appears in the department list, so
        // the converse inclusion holds on the instance even though the
        // scheme never declared it
        let extra =
            InclusionConstraint::parse("ProfPage.ToDept", "DeptListPage.DeptList.ToDept").unwrap();
        assert!(found.has_inclusion(&extra));
    }

    #[test]
    fn discovered_constraints_all_verify() {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 6,
            courses: 10,
            seed: 3,
            ..UniversityConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&u.site);
        let inst = crawl_instance(&u.site.scheme, &src);
        let found = discover_constraints(&u.site.scheme, &inst);
        assert!(!found.link_constraints.is_empty());
        assert!(!found.inclusion_constraints.is_empty());
        for c in &found.link_constraints {
            let source = inst.get(&c.link.scheme).cloned().unwrap_or_default();
            let tgt_scheme = u
                .site
                .scheme
                .resolve(&c.link)
                .unwrap()
                .ty
                .link_target()
                .unwrap()
                .to_string();
            let target = inst.get(&tgt_scheme).cloned().unwrap_or_default();
            assert!(verify_link_constraint(c, &source, &target).is_empty());
        }
    }

    #[test]
    fn bibliography_editors_replication_is_discovered() {
        let b = Bibliography::generate(BibConfig {
            authors: 30,
            conferences: 4,
            db_conferences: 2,
            featured: 1,
            editions_per_conf: 3,
            papers_per_edition: 5,
            seed: 8,
            ..BibConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&b.site);
        let inst = crawl_instance(&b.site.scheme, &src);
        let found = discover_constraints(&b.site.scheme, &inst);
        let editors = LinkConstraint::parse(
            "ConfPage.EditionList.ToEdition",
            "ConfPage.EditionList.Editors",
            "EditionPage.Editors",
        )
        .unwrap();
        assert!(found.has_link(&editors));
    }

    #[test]
    fn does_not_invent_false_link_constraints() {
        let (ws, found) = discovered_university();
        // Rank is not replicated anywhere; no constraint may claim it is.
        for c in &found.link_constraints {
            assert_ne!(
                c.target_attr.qualified(),
                "ProfPage.Rank",
                "bogus constraint {c}"
            );
        }
        let _ = ws;
    }
}
