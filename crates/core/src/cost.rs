//! The cost model of Section 6.2.
//!
//! **Step 1** estimates the cardinality of every intermediate result:
//!
//! ```text
//! |P ∘ L|        = |P| · |L|                (fan-out)
//! |σ_{A=v}(R)|   = |R| · s_A,  s_A = 1/c_A  (uniformity assumption)
//! |R1 ⋈_A R2|    = |R1| · |R2| · jsel
//! |π_X(R)|       = min(|R|, Π c_X)          (set projection)
//! |R –L→ P|      = |R|                      (L is a key join on URL)
//! ```
//!
//! **Step 2** sums operator costs: only network access costs anything —
//! an entry point costs 1 page, a navigation `R –L→ P` costs the number of
//! *distinct* outgoing links `|π_L(R)|`, estimated as
//! `min(|R|, c_L)`; σ, π, ⋈ are local and free.
//!
//! Costs carry a secondary **bytes** component (page count × average page
//! size) used only to break page-count ties, reproducing the paper's
//! preference for strategy 2 (the smaller database-conference list page)
//! over strategy 1.

use crate::stats::SiteStatistics;
use crate::{OptError, Result};
use nalg::expr::resolve_column;
use nalg::{NalgExpr, Pred};
use std::collections::HashMap;
use std::fmt;
use std::ops::Add;

/// An estimated plan cost: pages downloaded, with a bytes tiebreaker.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Estimated number of page downloads (the paper's 𝒞).
    pub pages: f64,
    /// Estimated bytes transferred (secondary, tie-breaking component).
    pub bytes: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost {
        pages: 0.0,
        bytes: 0.0,
    };

    /// Lexicographic comparison with a small tolerance on pages.
    pub fn better_than(&self, other: &Cost) -> bool {
        const EPS: f64 = 1e-6;
        if self.pages + EPS < other.pages {
            return true;
        }
        if (self.pages - other.pages).abs() <= EPS {
            return self.bytes < other.bytes;
        }
        false
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        Cost {
            pages: self.pages + rhs.pages,
            bytes: self.bytes + rhs.bytes,
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} pages ({:.1} KB)", self.pages, self.bytes / 1024.0)
    }
}

/// A full cost estimate for an expression.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Estimated output cardinality.
    pub card: f64,
    /// Estimated total cost.
    pub cost: Cost,
    /// Per-navigation breakdown (operator label, estimated page accesses),
    /// mirroring [`nalg::EvalReport::accesses_by_operator`].
    pub per_operator: Vec<(String, f64)>,
    /// Per-node estimates in pre-order (index = pre-order node index).
    /// The evaluator's operator spans number nodes the same way for the
    /// same expression, which is what lets EXPLAIN ANALYZE join
    /// predicted and observed values per operator.
    pub nodes: Vec<NodeEstimate>,
}

/// Estimated cardinality and page cost of one operator node.
#[derive(Debug, Clone)]
pub struct NodeEstimate {
    /// Display label (same convention as the evaluator's span names).
    pub label: String,
    /// Estimated output cardinality of this node.
    pub card: f64,
    /// Pages charged by *this* node alone (1 for an entry point, the
    /// estimated distinct links for a navigation, 0 otherwise).
    pub pages: f64,
}

/// Display label of one operator node; mirrors the evaluator's span
/// naming so predicted and observed rows read identically.
fn node_label(e: &NalgExpr) -> String {
    match e {
        NalgExpr::External { name } => format!("external {name}"),
        NalgExpr::Entry { scheme, .. } => format!("entry {scheme}"),
        NalgExpr::Select { .. } => "σ".to_string(),
        NalgExpr::Project { .. } => "π".to_string(),
        NalgExpr::Join { .. } => "⋈".to_string(),
        NalgExpr::Unnest { attr, .. } => format!("µ {attr}"),
        NalgExpr::Follow { link, target, .. } => format!("–{link}→ {target}"),
    }
}

/// Rewrites an alias-qualified column (`Ed96.Editors`) into the
/// scheme-qualified statistics key (`EditionPage.Editors`).
fn stats_key(aliases: &HashMap<String, String>, qualified: &str) -> String {
    match qualified.split_once('.') {
        Some((alias, rest)) => {
            let scheme = aliases.get(alias).map(String::as_str).unwrap_or(alias);
            format!("{scheme}.{rest}")
        }
        None => qualified.to_string(),
    }
}

struct Estimator<'a> {
    ws: &'a adm::WebScheme,
    stats: &'a SiteStatistics,
    aliases: HashMap<String, String>,
    per_op: Vec<(String, f64)>,
    nodes: Vec<NodeEstimate>,
}

/// Estimates the cardinality and cost of a computable expression.
pub fn estimate(expr: &NalgExpr, ws: &adm::WebScheme, stats: &SiteStatistics) -> Result<Estimate> {
    let aliases = expr.alias_map().map_err(OptError::Eval)?;
    let mut est = Estimator {
        ws,
        stats,
        aliases,
        per_op: Vec::new(),
        nodes: Vec::new(),
    };
    let (card, cost) = est.walk(expr)?;
    Ok(Estimate {
        card,
        cost,
        per_operator: est.per_op,
        nodes: est.nodes,
    })
}

impl Estimator<'_> {
    fn cols(&self, e: &NalgExpr) -> Result<Vec<String>> {
        e.output_columns(self.ws).map_err(OptError::Eval)
    }

    fn key_for(&self, cols: &[String], attr: &str) -> Result<String> {
        let i = resolve_column(cols, attr).map_err(OptError::Eval)?;
        Ok(stats_key(&self.aliases, &cols[i]))
    }

    fn pred_selectivity(&self, cols: &[String], pred: &Pred) -> Result<f64> {
        let mut sel = 1.0;
        for atom in pred.conjuncts() {
            sel *= match &atom {
                Pred::Eq(a, _) => {
                    let key = self.key_for(cols, a)?;
                    1.0 / self.stats.distinct_of(&key).max(1.0)
                }
                Pred::EqAttr(a, b) => {
                    let ka = self.key_for(cols, a)?;
                    let kb = self.key_for(cols, b)?;
                    self.stats.selectivity(&ka, &kb)
                }
                Pred::And(_) => unreachable!("conjuncts() returns atoms"),
            };
        }
        Ok(sel)
    }

    /// Returns (cardinality, accumulated cost) of a subexpression,
    /// recording a [`NodeEstimate`] per node in pre-order — the same
    /// numbering the evaluator assigns its operator spans.
    fn walk(&mut self, e: &NalgExpr) -> Result<(f64, Cost)> {
        let node = self.nodes.len();
        self.nodes.push(NodeEstimate {
            label: node_label(e),
            card: 0.0,
            pages: 0.0,
        });
        let per_op_before = self.per_op.len();
        let (card, cost) = self.walk_node(e)?;
        self.nodes[node].card = card;
        if matches!(e, NalgExpr::Entry { .. } | NalgExpr::Follow { .. })
            && self.per_op.len() > per_op_before
        {
            // The charge this node pushed — always the last entry, since
            // it is recorded after the input subtree.
            self.nodes[node].pages = self.per_op[self.per_op.len() - 1].1;
        }
        Ok((card, cost))
    }

    fn walk_node(&mut self, e: &NalgExpr) -> Result<(f64, Cost)> {
        match e {
            NalgExpr::External { name } => Err(OptError::NoPlan(format!(
                "cannot cost unresolved external relation {name}"
            ))),
            NalgExpr::Entry { scheme, .. } => {
                let card = if self.ws.is_entry_point(scheme) {
                    1.0
                } else {
                    self.stats.card(scheme)
                };
                self.per_op.push((format!("entry {scheme}"), 1.0));
                Ok((
                    card,
                    Cost {
                        pages: 1.0,
                        bytes: self.stats.bytes_of(scheme),
                    },
                ))
            }
            NalgExpr::Select { input, pred } => {
                let (card, cost) = self.walk(input)?;
                let cols = self.cols(input)?;
                let sel = self.pred_selectivity(&cols, pred)?;
                Ok((card * sel, cost))
            }
            NalgExpr::Project { input, cols } => {
                let (card, cost) = self.walk(input)?;
                let in_cols = self.cols(input)?;
                let mut distinct = 1.0;
                for c in cols {
                    let key = self.key_for(&in_cols, c)?;
                    distinct *= self.stats.distinct_of(&key).max(1.0);
                }
                Ok((card.min(distinct), cost))
            }
            NalgExpr::Join { left, right, on } => {
                let (cl, costl) = self.walk(left)?;
                let (cr, costr) = self.walk(right)?;
                let lcols = self.cols(left)?;
                let rcols = self.cols(right)?;
                let mut sel = 1.0;
                for (a, b) in on {
                    let ka = self.key_for(&lcols, a)?;
                    let kb = self.key_for(&rcols, b)?;
                    sel *= self.stats.selectivity(&ka, &kb);
                }
                Ok((cl * cr * sel, costl + costr))
            }
            NalgExpr::Unnest { input, attr } => {
                let (card, cost) = self.walk(input)?;
                let cols = self.cols(input)?;
                let key = self.key_for(&cols, attr)?;
                Ok((card * self.stats.fanout_of(&key), cost))
            }
            NalgExpr::Follow {
                input,
                link,
                target,
                ..
            } => {
                let (card, cost) = self.walk(input)?;
                let cols = self.cols(input)?;
                let key = self.key_for(&cols, link)?;
                let distinct_links = card.min(self.stats.distinct_of(&key)).max(0.0);
                self.per_op
                    .push((format!("–{link}→ {target}"), distinct_links));
                let nav_cost = Cost {
                    pages: distinct_links,
                    bytes: distinct_links * self.stats.bytes_of(target),
                };
                Ok((card, cost + nav_cost))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SiteStatistics;
    use nalg::Pred;
    use websim::sitegen::university::university_scheme;
    use websim::sitegen::{University, UniversityConfig};

    fn fixtures() -> (adm::WebScheme, SiteStatistics) {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        (university_scheme(), stats)
    }

    #[test]
    fn entry_costs_one_page() {
        let (ws, stats) = fixtures();
        let e = NalgExpr::entry("ProfListPage");
        let est = estimate(&e, &ws, &stats).unwrap();
        assert_eq!(est.cost.pages, 1.0);
        assert_eq!(est.card, 1.0);
    }

    #[test]
    fn full_professor_navigation_cost() {
        let (ws, stats) = fixtures();
        // ProfListPage ∘ ProfList –ToProf→ ProfPage: 1 + |ProfPage| pages.
        let e = NalgExpr::entry("ProfListPage")
            .unnest("ProfList")
            .follow("ToProf", "ProfPage");
        let est = estimate(&e, &ws, &stats).unwrap();
        assert!((est.cost.pages - 21.0).abs() < 1e-6);
        assert!((est.card - 20.0).abs() < 1e-6);
    }

    #[test]
    fn pushed_selection_reduces_navigation_cost() {
        let (ws, stats) = fixtures();
        // σ DName='CS' before following: only one department page fetched.
        let e = NalgExpr::entry("DeptListPage")
            .unnest("DeptList")
            .select(Pred::eq("DName", "Computer Science"))
            .follow("ToDept", "DeptPage");
        let est = estimate(&e, &ws, &stats).unwrap();
        assert!((est.cost.pages - 2.0).abs() < 1e-6);
        assert!((est.card - 1.0).abs() < 1e-6);
    }

    #[test]
    fn paper_example_72_pointer_chase_cost() {
        let (ws, stats) = fixtures();
        // Plan (2) of Example 7.2:
        // 1 + 1 + |Prof|/|Dept| + |Course|/|Dept| ≈ 25.3 at (50, 20, 3)
        let e = NalgExpr::entry("DeptListPage")
            .unnest("DeptList")
            .select(Pred::eq("DName", "Computer Science"))
            .follow("ToDept", "DeptPage")
            .unnest("DeptPage.ProfList")
            .follow("DeptPage.ProfList.ToProf", "ProfPage")
            .unnest("ProfPage.CourseList")
            .follow("ProfPage.CourseList.ToCourse", "CoursePage")
            .select(Pred::eq("Type", "Graduate"));
        let est = estimate(&e, &ws, &stats).unwrap();
        let expected = 1.0 + 1.0 + 20.0 / 3.0 + 50.0 / 3.0;
        assert!(
            (est.cost.pages - expected).abs() < 1.5,
            "estimated {} vs paper-formula {expected}",
            est.cost.pages
        );
        assert!(est.cost.pages > 20.0 && est.cost.pages < 30.0);
    }

    #[test]
    fn follow_distinct_links_capped_by_target_card() {
        let (ws, stats) = fixtures();
        // Navigating from all course pages to professors: at most |Prof|
        // distinct professor pages, even though there are 50 courses.
        let e = NalgExpr::entry("SessionListPage")
            .unnest("SesList")
            .follow("ToSes", "SessionPage")
            .unnest("SessionPage.CourseList")
            .follow("SessionPage.CourseList.ToCourse", "CoursePage")
            .follow("CoursePage.ToProf", "ProfPage");
        let est = estimate(&e, &ws, &stats).unwrap();
        let last = est.per_operator.last().unwrap();
        assert!(last.0.contains("ProfPage"));
        assert!(last.1 <= 20.0 + 1e-9);
    }

    #[test]
    fn bytes_break_ties() {
        let a = Cost {
            pages: 5.0,
            bytes: 100.0,
        };
        let b = Cost {
            pages: 5.0,
            bytes: 200.0,
        };
        let c = Cost {
            pages: 4.0,
            bytes: 9999.0,
        };
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
        assert!(c.better_than(&a));
    }

    #[test]
    fn join_uses_selectivity() {
        let (ws, stats) = fixtures();
        let left = NalgExpr::entry("ProfListPage").unnest("ProfList");
        let right = NalgExpr::entry_as("SessionListPage", "S2").unnest("SesList");
        // Cartesian-ish join on unrelated attrs; card = 20 × 3 × jsel.
        let e = left.join(
            right,
            vec![("ProfListPage.ProfList.PName", "S2.SesList.Session")],
        );
        let est = estimate(&e, &ws, &stats).unwrap();
        // jsel = 1/max(20, 3) = 1/20 → card = 3
        assert!((est.card - 3.0).abs() < 1e-6);
        assert_eq!(est.cost.pages, 2.0);
    }

    #[test]
    fn projection_caps_cardinality() {
        let (ws, stats) = fixtures();
        // Project 50 courses onto Session: at most 3 distinct values.
        let e = NalgExpr::entry("SessionListPage")
            .unnest("SesList")
            .follow("ToSes", "SessionPage")
            .unnest("SessionPage.CourseList")
            .follow("SessionPage.CourseList.ToCourse", "CoursePage")
            .project(vec!["CoursePage.Session"]);
        let est = estimate(&e, &ws, &stats).unwrap();
        assert!((est.card - 3.0).abs() < 1e-6);
    }

    #[test]
    fn external_cannot_be_costed() {
        let (ws, stats) = fixtures();
        let e = NalgExpr::external("Professor");
        assert!(estimate(&e, &ws, &stats).is_err());
    }
}
