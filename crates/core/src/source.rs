//! The live page source: virtual server + wrapper.
//!
//! [`LiveSource`] implements [`nalg::PageSource`] by downloading a page
//! from a [`websim::VirtualServer`] (a counted `GET`) and running the
//! scheme's wrapper over the HTML — the full pipeline the paper assumes
//! ("pages have to be downloaded from the network, then wrapped in order to
//! extract attribute values").

use adm::{Tuple, Url, WebScheme};
use nalg::{PageSource, SourceError};
use websim::{VirtualServer, WebError};

/// A page source over a live (simulated) site.
pub struct LiveSource<'a> {
    ws: &'a WebScheme,
    server: &'a VirtualServer,
}

impl<'a> LiveSource<'a> {
    /// Wraps a scheme and a server.
    pub fn new(ws: &'a WebScheme, server: &'a VirtualServer) -> Self {
        LiveSource { ws, server }
    }

    /// Convenience constructor over a generated site.
    pub fn for_site(site: &'a websim::Site) -> Self {
        LiveSource {
            ws: &site.scheme,
            server: &site.server,
        }
    }
}

impl PageSource for LiveSource<'_> {
    fn fetch(&self, url: &Url, scheme: &str) -> Result<Tuple, SourceError> {
        let resp = self.server.get(url).map_err(|e| match e {
            WebError::NotFound(u) => SourceError::NotFound(u),
            other => SourceError::Other(other.to_string()),
        })?;
        let ps = self
            .ws
            .scheme(scheme)
            .map_err(|e| SourceError::Other(e.to_string()))?;
        let html = std::str::from_utf8(&resp.body)
            .map_err(|e| SourceError::Other(format!("non-utf8 page body at {url}: {e}")))?;
        wrapper::wrap_page(ps, html).map_err(|e| SourceError::Other(format!("wrap {url}: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::sitegen::{University, UniversityConfig};

    #[test]
    fn fetches_and_wraps_live_pages() {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 4,
            courses: 6,
            seed: 2,
            ..UniversityConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&u.site);
        let url = University::prof_url(0);
        let t = src.fetch(&url, "ProfPage").unwrap();
        assert_eq!(Some(&t), u.site.ground_truth("ProfPage", &url));
        // a GET was counted
        assert_eq!(u.site.server.stats().gets, 1);
    }

    #[test]
    fn missing_page_maps_to_not_found() {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 4,
            courses: 6,
            seed: 2,
            ..UniversityConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&u.site);
        assert!(matches!(
            src.fetch(&Url::new("/nope.html"), "ProfPage"),
            Err(SourceError::NotFound(_))
        ));
    }
}
