//! The live page source: virtual server + wrapper.
//!
//! [`LiveSource`] implements [`nalg::PageSource`] by downloading a page
//! from a [`websim::VirtualServer`] (a counted `GET`) and running the
//! scheme's wrapper over the HTML — the full pipeline the paper assumes
//! ("pages have to be downloaded from the network, then wrapped in order to
//! extract attribute values").
//!
//! [`CachedSource`] layers a [`SharedPageCache`] over any page source, so
//! the crawler and statistics collection share wrapped pages with query
//! evaluation instead of re-downloading them.

use adm::{Tuple, Url, WebScheme};
use nalg::{PageSource, SharedPageCache, SourceError};
use websim::{VirtualServer, WebError};

/// A page source over a live (simulated) site.
pub struct LiveSource<'a> {
    ws: &'a WebScheme,
    server: &'a VirtualServer,
}

impl<'a> LiveSource<'a> {
    /// Wraps a scheme and a server.
    pub fn new(ws: &'a WebScheme, server: &'a VirtualServer) -> Self {
        LiveSource { ws, server }
    }

    /// Convenience constructor over a generated site.
    pub fn for_site(site: &'a websim::Site) -> Self {
        LiveSource {
            ws: &site.scheme,
            server: &site.server,
        }
    }
}

impl PageSource for LiveSource<'_> {
    fn fetch(&self, url: &Url, scheme: &str) -> Result<Tuple, SourceError> {
        self.fetch_stamped(url, scheme).map(|(t, _)| t)
    }

    fn fetch_stamped(&self, url: &Url, scheme: &str) -> Result<(Tuple, Option<u64>), SourceError> {
        let resp = self.server.get(url).map_err(|e| match e {
            WebError::NotFound(u) => SourceError::NotFound(u),
            WebError::Unavailable { url, status } => SourceError::Unavailable {
                url,
                reason: format!("http {status}"),
            },
            WebError::Timeout(u) => SourceError::Timeout(u),
            other => SourceError::Other(other.to_string()),
        })?;
        let ps = self
            .ws
            .scheme(scheme)
            .map_err(|e| SourceError::Other(e.to_string()))?;
        let html = std::str::from_utf8(&resp.body).map_err(|e| SourceError::Malformed {
            url: url.clone(),
            reason: format!("non-utf8 page body: {e}"),
        })?;
        let tuple = wrapper::wrap_page(ps, html).map_err(|e| SourceError::Malformed {
            url: url.clone(),
            reason: e.to_string(),
        })?;
        Ok((tuple, Some(resp.last_modified)))
    }
}

/// A page source that consults (and feeds) a [`SharedPageCache`] before
/// touching the inner source. Cache hits cost no connection; misses are
/// forwarded and the wrapped result is cached with its Last-Modified
/// stamp. A 404 from the inner source evicts any stale cached copy.
pub struct CachedSource<'a, S> {
    inner: &'a S,
    cache: &'a SharedPageCache,
}

impl<'a, S: PageSource> CachedSource<'a, S> {
    pub fn new(inner: &'a S, cache: &'a SharedPageCache) -> Self {
        CachedSource { inner, cache }
    }

    /// The shared cache behind this source.
    pub fn cache(&self) -> &'a SharedPageCache {
        self.cache
    }
}

impl<S: PageSource> PageSource for CachedSource<'_, S> {
    fn fetch(&self, url: &Url, scheme: &str) -> Result<Tuple, SourceError> {
        self.fetch_stamped(url, scheme).map(|(t, _)| t)
    }

    fn fetch_stamped(&self, url: &Url, scheme: &str) -> Result<(Tuple, Option<u64>), SourceError> {
        if let Some(t) = self.cache.get(url) {
            return Ok((t, None));
        }
        match self.inner.fetch_stamped(url, scheme) {
            Ok((t, lm)) => {
                self.cache.insert(url, &t, lm);
                Ok((t, lm))
            }
            Err(SourceError::NotFound(u)) => {
                self.cache.invalidate(url);
                Err(SourceError::NotFound(u))
            }
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websim::sitegen::{University, UniversityConfig};

    #[test]
    fn fetches_and_wraps_live_pages() {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 4,
            courses: 6,
            seed: 2,
            ..UniversityConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&u.site);
        let url = University::prof_url(0);
        let t = src.fetch(&url, "ProfPage").unwrap();
        assert_eq!(Some(&t), u.site.ground_truth("ProfPage", &url));
        // a GET was counted
        assert_eq!(u.site.server.stats().gets, 1);
    }

    #[test]
    fn cached_source_avoids_repeat_gets() {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 4,
            courses: 6,
            seed: 2,
            ..UniversityConfig::default()
        })
        .unwrap();
        let live = LiveSource::for_site(&u.site);
        let cache = SharedPageCache::default();
        let src = CachedSource::new(&live, &cache);
        let url = University::prof_url(0);
        let t1 = src.fetch(&url, "ProfPage").unwrap();
        let t2 = src.fetch(&url, "ProfPage").unwrap();
        assert_eq!(t1, t2);
        assert_eq!(u.site.server.stats().gets, 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn cached_source_evicts_on_not_found() {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 4,
            courses: 6,
            seed: 2,
            ..UniversityConfig::default()
        })
        .unwrap();
        let live = LiveSource::for_site(&u.site);
        let cache = SharedPageCache::default();
        let src = CachedSource::new(&live, &cache);
        let url = University::prof_url(0);
        src.fetch(&url, "ProfPage").unwrap();
        assert_eq!(cache.len(), 1);
        u.site.server.remove(&url);
        // still cached: the cache answers before the server
        assert!(src.fetch(&url, "ProfPage").is_ok());
        cache.invalidate(&url);
        assert!(matches!(
            src.fetch(&url, "ProfPage"),
            Err(SourceError::NotFound(_))
        ));
        assert!(cache.is_empty());
    }

    #[test]
    fn injected_faults_map_to_transient_source_errors() {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 4,
            courses: 6,
            seed: 2,
            ..UniversityConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&u.site);
        let url = University::prof_url(0);
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(1)
                .with_rule(websim::FaultRule::unavailable(1.0).with_max_per_url(None)),
        );
        let err = src.fetch(&url, "ProfPage").unwrap_err();
        assert!(matches!(err, SourceError::Unavailable { .. }));
        assert!(err.is_transient());
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(1)
                .with_rule(websim::FaultRule::timeouts(1.0).with_max_per_url(None)),
        );
        assert!(matches!(
            src.fetch(&url, "ProfPage"),
            Err(SourceError::Timeout(_))
        ));
    }

    #[test]
    fn truncated_body_maps_to_malformed() {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 4,
            courses: 6,
            seed: 2,
            ..UniversityConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&u.site);
        let url = University::prof_url(0);
        u.site.server.set_fault_plan(
            websim::FaultPlan::new(1)
                .with_rule(websim::FaultRule::truncation(1.0, 10).with_max_per_url(None)),
        );
        let err = src.fetch(&url, "ProfPage").unwrap_err();
        assert!(matches!(err, SourceError::Malformed { .. }), "got: {err:?}");
        assert!(!err.is_transient());
    }

    #[test]
    fn missing_page_maps_to_not_found() {
        let u = University::generate(UniversityConfig {
            departments: 2,
            professors: 4,
            courses: 6,
            seed: 2,
            ..UniversityConfig::default()
        })
        .unwrap();
        let src = LiveSource::for_site(&u.site);
        assert!(matches!(
            src.fetch(&Url::new("/nope.html"), "ProfPage"),
            Err(SourceError::NotFound(_))
        ));
    }
}
