//! EXPLAIN ANALYZE — joining predicted onto observed operator behaviour.
//!
//! The optimizer's [`Estimate`] records a [`NodeEstimate`] per plan node
//! in **pre-order**; the evaluator's operator spans carry the same
//! pre-order index in their `node` field (both sides number nodes at
//! entry, before recursing into inputs, over the same tree in the same
//! child order). [`ExplainAnalyze::from_parts`] joins the two by that
//! index, giving a per-operator table of predicted vs. observed
//! cardinalities and page accesses — the paper's "estimated vs. actual"
//! validation, but per operator instead of per plan.
//!
//! Observed **pages** are the cost-model charge of the operator (the
//! distinct links a navigation followed), taken from the span's `links`
//! field. Observed **downloads** are physical fetches; they can be lower
//! than pages when the per-query cache absorbs refetches and they stay
//! zero when a shared cache serves everything — traced hits are *never*
//! page accesses. Span counters are subtree-cumulative, so exclusive
//! per-operator values are recovered by subtracting the operator's
//! direct children.

use crate::cost::{Estimate, NodeEstimate};
use obs::trace::{EventKind, TraceEvent};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One operator's predicted-vs-observed row.
#[derive(Debug, Clone)]
pub struct OpAnalysis {
    /// Pre-order node index in the executed plan.
    pub node: usize,
    /// Depth in the plan tree (root = 0), for display indentation.
    pub depth: usize,
    /// Operator label (shared convention between estimator and evaluator).
    pub label: String,
    /// Predicted output cardinality.
    pub est_card: f64,
    /// Predicted page accesses charged by this operator alone.
    pub est_pages: f64,
    /// Observed output rows (`None` when the operator errored).
    pub rows_out: Option<u64>,
    /// Observed cost-model page accesses charged by this operator alone.
    pub pages: u64,
    /// Physical downloads performed by this operator alone (exclusive of
    /// its inputs).
    pub downloads: u64,
    /// Per-query cache hits in this operator alone.
    pub cache_hits: u64,
    /// Shared-cache hits in this operator alone (never page accesses).
    pub shared_cache_hits: u64,
    /// Broken links tolerated by this operator alone.
    pub broken_links: u64,
    /// The error that aborted this operator, if any.
    pub error: Option<String>,
}

impl OpAnalysis {
    /// Smoothed predicted/observed page-access ratio, always ≥ 1:
    /// `max(r, 1/r)` with `r = (est_pages + 1) / (pages + 1)`. The +1
    /// keeps free operators (both sides 0 → ratio 1) and genuinely
    /// mispredicted zeroes finite, so a CI gate can bound the worst
    /// ratio without special-casing σ/π/⋈ rows.
    pub fn pages_ratio(&self) -> f64 {
        let r = (self.est_pages + 1.0) / (self.pages as f64 + 1.0);
        r.max(1.0 / r)
    }
}

/// The joined predicted-vs-observed table for one executed plan.
#[derive(Debug, Clone)]
pub struct ExplainAnalyze {
    /// Per-operator rows in pre-order (execution plan order).
    pub ops: Vec<OpAnalysis>,
    /// The optimizer's total page estimate for the plan.
    pub predicted_pages: f64,
    /// The measured total under the paper's cost accounting — identical
    /// to [`nalg::EvalReport::cost_model_accesses`] for the same run.
    pub observed_pages: u64,
}

impl ExplainAnalyze {
    /// Joins an optimizer estimate onto the operator spans of one
    /// evaluation. `events` is a trace as exported by the sink the
    /// evaluator ran with; non-operator events (optimizer, fetch, cache,
    /// resilience) are ignored. If the trace holds several evaluations
    /// of the same plan, the latest span per node index wins.
    pub fn from_parts(estimate: &Estimate, events: &[TraceEvent]) -> ExplainAnalyze {
        let ops: Vec<&TraceEvent> = events
            .iter()
            .filter(|e| e.kind == EventKind::Operator && e.field_u64("node").is_some())
            .collect();
        // span id → event, and node index → latest event for that node
        let by_id: HashMap<u64, &TraceEvent> = ops.iter().map(|e| (e.id, *e)).collect();
        let mut by_node: HashMap<usize, &TraceEvent> = HashMap::new();
        for e in &ops {
            by_node.insert(e.field_u64("node").unwrap() as usize, e);
        }
        // children by parent id, for exclusive-counter subtraction
        let mut children: HashMap<u64, Vec<&TraceEvent>> = HashMap::new();
        for e in &ops {
            if let Some(p) = e.parent {
                if by_id.contains_key(&p) {
                    children.entry(p).or_default().push(e);
                }
            }
        }
        let depth_of = |e: &TraceEvent| {
            let mut d = 0;
            let mut cur = e.parent;
            while let Some(p) = cur {
                match by_id.get(&p) {
                    Some(pe) => {
                        d += 1;
                        cur = pe.parent;
                    }
                    None => break,
                }
            }
            d
        };
        let exclusive = |e: &TraceEvent, field: &str| {
            let own = e.field_u64(field).unwrap_or(0);
            let kids: u64 = children
                .get(&e.id)
                .map(|ks| ks.iter().map(|k| k.field_u64(field).unwrap_or(0)).sum())
                .unwrap_or(0);
            own.saturating_sub(kids)
        };
        let mut rows: Vec<OpAnalysis> = Vec::new();
        for (node, est) in estimate.nodes.iter().enumerate() {
            let NodeEstimate { label, card, pages } = est;
            let Some(e) = by_node.get(&node) else {
                // never executed (e.g. evaluation aborted upstream)
                rows.push(OpAnalysis {
                    node,
                    depth: 0,
                    label: label.clone(),
                    est_card: *card,
                    est_pages: *pages,
                    rows_out: None,
                    pages: 0,
                    downloads: 0,
                    cache_hits: 0,
                    shared_cache_hits: 0,
                    broken_links: 0,
                    error: None,
                });
                continue;
            };
            rows.push(OpAnalysis {
                node,
                depth: depth_of(e),
                label: e.name.clone(),
                est_card: *card,
                est_pages: *pages,
                rows_out: e.field_u64("rows_out"),
                pages: e.field_u64("links").unwrap_or(0),
                downloads: exclusive(e, "downloads"),
                cache_hits: exclusive(e, "cache_hits"),
                shared_cache_hits: exclusive(e, "shared_cache_hits"),
                broken_links: exclusive(e, "broken_links"),
                error: e.field_str("error").map(str::to_string),
            });
        }
        let observed_pages = rows.iter().map(|r| r.pages).sum();
        ExplainAnalyze {
            ops: rows,
            predicted_pages: estimate.cost.pages,
            observed_pages,
        }
    }

    /// The worst per-operator [`OpAnalysis::pages_ratio`] in the plan
    /// (1.0 for an empty plan). This is the number the CI smoke gate
    /// bounds: it drifts above the pinned tolerance when the cost model
    /// and the evaluator disagree about what a navigation costs.
    pub fn worst_pages_ratio(&self) -> f64 {
        self.ops
            .iter()
            .map(OpAnalysis::pages_ratio)
            .fold(1.0, f64::max)
    }

    /// Renders the predicted-vs-observed table, one row per operator in
    /// plan pre-order, indented by tree depth.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<38} {:>10} {:>8} {:>10} {:>7} {:>9} {:>7}",
            "operator", "est.card", "rows", "est.pages", "pages", "downloads", "cached"
        );
        for op in &self.ops {
            let label = format!("{}{}", "  ".repeat(op.depth), op.label);
            let rows = match (&op.error, op.rows_out) {
                (Some(_), _) => "ERR".to_string(),
                (None, Some(n)) => n.to_string(),
                (None, None) => "-".to_string(),
            };
            let cached = op.cache_hits + op.shared_cache_hits;
            let _ = writeln!(
                out,
                "{:<38} {:>10.1} {:>8} {:>10.1} {:>7} {:>9} {:>7}",
                label, op.est_card, rows, op.est_pages, op.pages, op.downloads, cached
            );
        }
        let _ = writeln!(
            out,
            "total: {:.1} pages predicted, {} observed (worst per-operator ratio {:.2})",
            self.predicted_pages,
            self.observed_pages,
            self.worst_pages_ratio()
        );
        out
    }

    /// The table as a raw JSON value (for embedding in benchmark output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"predicted_pages\":");
        let _ = write!(out, "{}", self.predicted_pages);
        let _ = write!(out, ",\"observed_pages\":{}", self.observed_pages);
        let _ = write!(out, ",\"worst_pages_ratio\":{}", self.worst_pages_ratio());
        out.push_str(",\"operators\":[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"node\":{},\"label\":{},\"est_card\":{},\"est_pages\":{},\"pages\":{},\"downloads\":{}",
                op.node,
                json_str(&op.label),
                op.est_card,
                op.est_pages,
                op.pages,
                op.downloads
            );
            if let Some(r) = op.rows_out {
                let _ = write!(out, ",\"rows_out\":{r}");
            }
            if let Some(e) = &op.error {
                let _ = write!(out, ",\"error\":{}", json_str(e));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::LiveSource;
    use crate::stats::SiteStatistics;
    use crate::views::university_catalog;
    use crate::ConjunctiveQuery;
    use nalg::Evaluator;
    use obs::trace::TraceSink;
    use websim::sitegen::{University, UniversityConfig};

    fn analyzed() -> (ExplainAnalyze, u64) {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let q = ConjunctiveQuery::new("full-profs")
            .atom("Professor")
            .select((0, "Rank"), "Full")
            .project((0, "PName"));
        let opt = crate::Optimizer::new(&u.site.scheme, &catalog, &stats);
        let explain = opt.optimize(&q).unwrap();
        let sink = TraceSink::with_seed(0);
        let report = Evaluator::new(&u.site.scheme, &source)
            .with_trace(&sink)
            .eval(&explain.best().expr)
            .unwrap();
        let analysis = ExplainAnalyze::from_parts(&explain.best().estimate, &sink.events());
        (analysis, report.cost_model_accesses())
    }

    #[test]
    fn joins_every_node_and_sums_to_cost_model() {
        let (a, cost_model) = analyzed();
        assert!(!a.ops.is_empty());
        assert_eq!(a.observed_pages, cost_model);
        // every executed node matched a span
        for op in &a.ops {
            assert!(
                op.rows_out.is_some(),
                "unjoined node {}: {}",
                op.node,
                op.label
            );
        }
        // labels agree between estimator and evaluator by construction
        assert!(a.ops.iter().any(|o| o.label.starts_with("entry ")));
    }

    #[test]
    fn render_and_json_mention_each_operator() {
        let (a, _) = analyzed();
        let table = a.render();
        assert!(table.contains("est.pages"));
        assert!(table.contains("total:"));
        let json = a.to_json();
        assert!(json.contains("\"operators\":["));
        assert!(json.contains("\"predicted_pages\""));
        for op in &a.ops {
            assert!(table.contains(&op.label));
        }
    }

    #[test]
    fn ratio_is_symmetric_and_at_least_one() {
        let (a, _) = analyzed();
        assert!(a.worst_pages_ratio() >= 1.0);
        for op in &a.ops {
            assert!(op.pages_ratio() >= 1.0);
        }
        // a perfect prediction has ratio exactly 1
        let perfect = OpAnalysis {
            node: 0,
            depth: 0,
            label: "σ".into(),
            est_card: 1.0,
            est_pages: 0.0,
            rows_out: Some(1),
            pages: 0,
            downloads: 0,
            cache_hits: 0,
            shared_cache_hits: 0,
            broken_links: 0,
            error: None,
        };
        assert!((perfect.pages_ratio() - 1.0).abs() < 1e-12);
    }
}
