//! End-to-end query sessions: optimize, navigate, wrap, answer.
//!
//! A [`QuerySession`] bundles a scheme, a view catalog, statistics, and a
//! page source. [`QuerySession::run`] performs the paper's full query
//! pipeline and reports both the optimizer's estimate and the measured
//! page accesses, so experiments can validate the cost model (estimated
//! vs. actual) with one call.

use crate::analyze::ExplainAnalyze;
use crate::optimizer::{Explain, Optimizer, RuleMask};
use crate::query::ConjunctiveQuery;
use crate::stats::SiteStatistics;
use crate::views::ViewCatalog;
use crate::Result;
use adm::WebScheme;
use nalg::{DegradationMode, EvalReport, Evaluator, PageSource, SharedPageCache};
use obs::trace::TraceSink;

/// The outcome of an executed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The optimizer's explanation (all candidate plans, costed).
    pub explain: Explain,
    /// The evaluation report of the chosen plan.
    pub report: EvalReport,
}

impl QueryOutcome {
    /// Estimated page accesses of the chosen plan (cost-model 𝒞).
    pub fn estimated_pages(&self) -> f64 {
        self.explain.best().estimate.cost.pages
    }

    /// Measured page accesses under the paper's cost accounting (distinct
    /// links per navigation operator).
    pub fn measured_pages(&self) -> u64 {
        self.report.cost_model_accesses()
    }

    /// Actual downloads performed (with the per-query cache).
    pub fn downloads(&self) -> u64 {
        self.report.page_accesses
    }
}

/// A [`QueryOutcome`] plus its EXPLAIN ANALYZE join and the trace it was
/// computed from (see [`QuerySession::run_analyzed`]).
#[derive(Debug, Clone)]
pub struct AnalyzedOutcome {
    /// The ordinary outcome — results and counters are byte-identical
    /// to an untraced [`QuerySession::run`].
    pub outcome: QueryOutcome,
    /// Predicted vs. observed page accesses and cardinalities, joined
    /// per operator.
    pub analysis: ExplainAnalyze,
    /// The trace the run produced (optimizer rule events + operator
    /// spans), exportable with [`TraceSink::export_jsonl`].
    pub trace: TraceSink,
}

/// A query session over a site.
pub struct QuerySession<'a, S: PageSource> {
    ws: &'a WebScheme,
    catalog: &'a ViewCatalog,
    stats: &'a SiteStatistics,
    source: &'a S,
    mask: RuleMask,
    use_incomplete: bool,
    shared_cache: Option<&'a SharedPageCache>,
    degradation: DegradationMode,
    trace: Option<TraceSink>,
    /// `(workers, enable)` — the fn pointer monomorphizes the `S: Sync`
    /// bound at builder time so the rest of the session stays available
    /// for non-`Sync` sources.
    concurrency: Option<(usize, EnablePool<'a, S>)>,
}

type EnablePool<'a, S> = fn(Evaluator<'a, S>, usize) -> Evaluator<'a, S>;

fn enable_pool<'a, S: PageSource + Sync>(ev: Evaluator<'a, S>, workers: usize) -> Evaluator<'a, S> {
    ev.with_concurrent_fetch(workers)
}

impl<'a, S: PageSource> QuerySession<'a, S> {
    /// Creates a session.
    pub fn new(
        ws: &'a WebScheme,
        catalog: &'a ViewCatalog,
        stats: &'a SiteStatistics,
        source: &'a S,
    ) -> Self {
        QuerySession {
            ws,
            catalog,
            stats,
            source,
            mask: RuleMask::all(),
            use_incomplete: false,
            shared_cache: None,
            degradation: DegradationMode::FailFast,
            trace: None,
            concurrency: None,
        }
    }

    /// Attaches a trace sink: subsequent [`QuerySession::explain`] calls
    /// record optimizer rule events and [`QuerySession::run`] /
    /// [`QuerySession::execute`] calls record one span per executed
    /// operator. Results and every reported counter are byte-identical
    /// with or without a sink attached.
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.trace = Some(sink.clone());
        self
    }

    /// Sets what happens when a fetch ultimately fails during execution:
    /// abort the query (`FailFast`, the default) or complete the plan over
    /// reachable pages and report the unreachable-URL set (`Partial`).
    pub fn with_degradation(mut self, mode: DegradationMode) -> Self {
        self.degradation = mode;
        self
    }

    /// Sets the rule mask (builder style).
    pub fn with_mask(mut self, mask: RuleMask) -> Self {
        self.mask = mask;
        self
    }

    /// Allows designer-declared incomplete navigations (builder style).
    pub fn allow_incomplete_navigations(mut self) -> Self {
        self.use_incomplete = true;
        self
    }

    /// Evaluates plans with a persistent pool of `workers` fetch threads
    /// (spawned once per evaluation, shared by every navigation in the
    /// plan). Results and page-access counts are identical to sequential
    /// execution; only wall-clock changes.
    pub fn with_concurrent_fetch(mut self, workers: usize) -> Self
    where
        S: Sync,
    {
        self.concurrency = Some((workers.max(1), enable_pool::<S>));
        self
    }

    /// Shares a cross-query page cache between this session's queries (and
    /// anything else holding the cache — crawler, other sessions). Hits
    /// are reported as `shared_cache_hits`, never as page accesses.
    pub fn with_shared_cache(mut self, cache: &'a SharedPageCache) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    fn evaluator(&self) -> Evaluator<'a, S> {
        self.evaluator_traced(self.trace.as_ref())
    }

    fn evaluator_traced(&self, trace: Option<&TraceSink>) -> Evaluator<'a, S> {
        let mut ev = Evaluator::new(self.ws, self.source).with_degradation(self.degradation);
        if let Some(cache) = self.shared_cache {
            ev = ev.with_shared_cache(cache);
        }
        if let Some(sink) = trace {
            ev = ev.with_trace(sink);
        }
        if let Some((workers, enable)) = self.concurrency {
            ev = enable(ev, workers);
        }
        ev
    }

    fn optimizer_traced(&self, trace: Option<&TraceSink>) -> Optimizer<'a> {
        let mut opt = Optimizer::new(self.ws, self.catalog, self.stats).with_mask(self.mask);
        if self.use_incomplete {
            opt = opt.allow_incomplete_navigations();
        }
        if let Some(sink) = trace {
            opt = opt.with_trace(sink);
        }
        opt
    }

    /// Optimizes without executing.
    pub fn explain(&self, q: &ConjunctiveQuery) -> Result<Explain> {
        self.optimizer_traced(self.trace.as_ref()).optimize(q)
    }

    /// Optimizes and executes the best plan.
    pub fn run(&self, q: &ConjunctiveQuery) -> Result<QueryOutcome> {
        let explain = self.explain(q)?;
        let report = self.evaluator().eval(&explain.best().expr)?;
        Ok(QueryOutcome { explain, report })
    }

    /// EXPLAIN ANALYZE: optimizes, executes the best plan under a fresh
    /// deterministic trace sink (independent of any session sink), and
    /// joins the optimizer's per-operator estimates onto the executed
    /// operator spans. Results and counters are byte-identical to
    /// [`QuerySession::run`]; the extra work is bookkeeping only.
    pub fn run_analyzed(&self, q: &ConjunctiveQuery) -> Result<AnalyzedOutcome> {
        let sink = TraceSink::with_seed(0);
        let explain = self.optimizer_traced(Some(&sink)).optimize(q)?;
        let report = self
            .evaluator_traced(Some(&sink))
            .eval(&explain.best().expr)?;
        let analysis = ExplainAnalyze::from_parts(&explain.best().estimate, &sink.events());
        Ok(AnalyzedOutcome {
            outcome: QueryOutcome { explain, report },
            analysis,
            trace: sink,
        })
    }

    /// Executes a specific plan (used by experiments to run non-optimal
    /// candidates for comparison).
    pub fn execute(&self, expr: &nalg::NalgExpr) -> Result<EvalReport> {
        Ok(self.evaluator().eval(expr)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::LiveSource;
    use crate::views::university_catalog;
    use websim::sitegen::{University, UniversityConfig};

    #[test]
    fn end_to_end_query_matches_oracle() {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 20,
            seed: 21,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("graduate-courses")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"));
        let outcome = session.run(&q).unwrap();
        let expected: std::collections::HashSet<String> = u
            .expected_course()
            .into_iter()
            .filter(|(_, _, _, t)| t == "Graduate")
            .map(|(n, _, _, _)| n)
            .collect();
        let got: std::collections::HashSet<String> = outcome
            .report
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn concurrent_session_with_shared_cache_matches_plain_run() {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 20,
            seed: 21,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let q = ConjunctiveQuery::new("graduate-courses")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"));
        let plain = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .run(&q)
            .unwrap();
        let cache = nalg::SharedPageCache::default();
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .with_concurrent_fetch(8)
            .with_shared_cache(&cache);
        let cold = session.run(&q).unwrap();
        assert_eq!(
            cold.report.relation.sorted(),
            plain.report.relation.sorted()
        );
        assert_eq!(cold.report.page_accesses, plain.report.page_accesses);
        assert_eq!(
            cold.report.accesses_by_operator,
            plain.report.accesses_by_operator
        );
        // Second run: every page comes from the shared cache.
        let warm = session.run(&q).unwrap();
        assert_eq!(
            warm.report.relation.sorted(),
            plain.report.relation.sorted()
        );
        assert_eq!(warm.downloads(), 0);
        assert_eq!(warm.report.shared_cache_hits, cold.report.page_accesses);
        // The cost model is blind to the shared cache.
        assert_eq!(warm.measured_pages(), plain.measured_pages());
    }

    #[test]
    fn run_analyzed_matches_plain_run_exactly() {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 20,
            seed: 21,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("graduate-courses")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"));
        let plain = session.run(&q).unwrap();
        let analyzed = session.run_analyzed(&q).unwrap();
        // tracing must not perturb results or any counter
        assert_eq!(analyzed.outcome.report.relation, plain.report.relation);
        assert_eq!(
            analyzed.outcome.report.page_accesses,
            plain.report.page_accesses
        );
        assert_eq!(
            analyzed.outcome.report.accesses_by_operator,
            plain.report.accesses_by_operator
        );
        // the joined table's observed total is the cost-model total
        assert_eq!(
            analyzed.analysis.observed_pages,
            plain.report.cost_model_accesses()
        );
        // every executed operator appears, with the plan's estimate joined
        assert_eq!(
            analyzed.analysis.ops.len(),
            plain.explain.best().estimate.nodes.len()
        );
        assert!(analyzed.analysis.render().contains("total:"));
        // the trace carries both optimizer events and operator spans
        let events = analyzed.trace.events();
        assert!(events
            .iter()
            .any(|e| e.kind == obs::trace::EventKind::Optimizer));
        assert!(events
            .iter()
            .any(|e| e.kind == obs::trace::EventKind::Operator));
    }

    #[test]
    fn estimated_tracks_measured() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("profs-by-dept")
            .atom("ProfDept")
            .select((0, "DName"), "Computer Science")
            .project((0, "PName"));
        let outcome = session.run(&q).unwrap();
        let est = outcome.estimated_pages();
        let meas = outcome.measured_pages() as f64;
        // within 2× either way (uniformity assumption)
        assert!(
            est <= meas * 2.0 + 2.0 && meas <= est * 2.0 + 2.0,
            "estimate {est} vs measured {meas}"
        );
    }
}
