//! End-to-end query sessions: optimize, navigate, wrap, answer.
//!
//! A [`QuerySession`] bundles a scheme, a view catalog, statistics, and a
//! page source. [`QuerySession::run`] performs the paper's full query
//! pipeline and reports both the optimizer's estimate and the measured
//! page accesses, so experiments can validate the cost model (estimated
//! vs. actual) with one call.
//!
//! **Constraint-drift defense.** With [`QuerySession::with_audit`] set,
//! each run samples the pages it fetched and re-checks exactly the
//! constraints the winning plan assumed (its
//! [`CandidatePlan::dependencies`]). A clean audit changes nothing —
//! results and every counter stay byte-identical. A violated audit means
//! the plan's licensing assumption is false on today's site, so the run
//! **falls back**: the query is re-executed via its default navigation
//! (rule mask off — a plan that assumes no constraints), the fallback's
//! answer becomes the authoritative one, and the abandoned run is kept in
//! [`FallbackOutcome`] for inspection. With
//! [`QuerySession::with_constraint_health`] attached, audit results also
//! feed a [`ConstraintHealth`] registry so violated constraints are
//! quarantined and stop licensing rewrites on subsequent queries.

use crate::analyze::ExplainAnalyze;
use crate::optimizer::{CandidatePlan, Explain, Optimizer, RuleMask};
use crate::query::ConjunctiveQuery;
use crate::rules::ConstraintDependency;
use crate::stats::SiteStatistics;
use crate::views::ViewCatalog;
use crate::Result;
use adm::WebScheme;
use nalg::{AuditConfig, DegradationMode, EvalReport, Evaluator, PageSource, SharedPageCache};
use obs::trace::TraceSink;
use resilience::ConstraintHealth;

/// What happened when a run's audit caught the plan's own constraint
/// assumptions being violated and the session re-answered the query from
/// its default navigation.
#[derive(Debug, Clone)]
pub struct FallbackOutcome {
    /// Constraint keys whose audit found violations this run.
    pub violated: Vec<String>,
    /// Keys this run's audit pushed into quarantine (empty without an
    /// attached [`ConstraintHealth`]).
    pub newly_quarantined: Vec<String>,
    /// The abandoned optimized plan's explanation.
    pub suspect_explain: Explain,
    /// The abandoned optimized plan's evaluation report (its audit field
    /// carries the detected violations).
    pub suspect_report: EvalReport,
    /// True when the abandoned run's answer differs from the fallback's —
    /// the drift was not just detectable but result-changing.
    pub diverged: bool,
}

/// The outcome of an executed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The optimizer's explanation (all candidate plans, costed). When a
    /// fallback fired this is the *fallback* plan's explanation; the
    /// abandoned one is in [`FallbackOutcome::suspect_explain`].
    pub explain: Explain,
    /// The evaluation report of the authoritative plan.
    pub report: EvalReport,
    /// Present when auditing triggered the default-navigation fallback.
    pub fallback: Option<FallbackOutcome>,
}

impl QueryOutcome {
    /// Estimated page accesses of the chosen plan (cost-model 𝒞).
    pub fn estimated_pages(&self) -> f64 {
        self.explain.best().estimate.cost.pages
    }

    /// Measured page accesses under the paper's cost accounting (distinct
    /// links per navigation operator).
    pub fn measured_pages(&self) -> u64 {
        self.report.cost_model_accesses()
    }

    /// Actual downloads performed (with the per-query cache).
    pub fn downloads(&self) -> u64 {
        self.report.page_accesses
    }

    /// True when auditing caught a violated plan assumption and the
    /// answer came from the default-navigation fallback.
    pub fn fell_back(&self) -> bool {
        self.fallback.is_some()
    }

    /// Downloads including the abandoned suspect run, when one exists —
    /// the real price of answering this query.
    pub fn total_downloads(&self) -> u64 {
        self.report.page_accesses
            + self
                .fallback
                .as_ref()
                .map_or(0, |f| f.suspect_report.page_accesses)
    }
}

/// A [`QueryOutcome`] plus its EXPLAIN ANALYZE join and the trace it was
/// computed from (see [`QuerySession::run_analyzed`]).
#[derive(Debug, Clone)]
pub struct AnalyzedOutcome {
    /// The ordinary outcome — results and counters are byte-identical
    /// to an untraced [`QuerySession::run`].
    pub outcome: QueryOutcome,
    /// Predicted vs. observed page accesses and cardinalities, joined
    /// per operator.
    pub analysis: ExplainAnalyze,
    /// The trace the run produced (optimizer rule events + operator
    /// spans), exportable with [`TraceSink::export_jsonl`].
    pub trace: TraceSink,
}

/// A query session over a site.
pub struct QuerySession<'a, S: PageSource> {
    ws: &'a WebScheme,
    catalog: &'a ViewCatalog,
    stats: &'a SiteStatistics,
    source: &'a S,
    mask: RuleMask,
    use_incomplete: bool,
    shared_cache: Option<&'a SharedPageCache>,
    degradation: DegradationMode,
    trace: Option<TraceSink>,
    /// Parent span id planner events and the top-level operator span
    /// nest under (set by the serving layer's request root span).
    trace_parent: Option<u64>,
    /// `(rate, seed)` for runtime constraint auditing; `None` (or a zero
    /// rate) disables it.
    audit: Option<(f64, u64)>,
    health: Option<&'a ConstraintHealth>,
    /// `(workers, enable)` — the fn pointer monomorphizes the `S: Sync`
    /// bound at builder time so the rest of the session stays available
    /// for non-`Sync` sources.
    concurrency: Option<(usize, EnablePool<'a, S>)>,
    deadline: Option<obs::Deadline>,
    cancel: Option<obs::CancelToken>,
    hedge: Option<nalg::HedgeConfig>,
    relevance: bool,
}

type EnablePool<'a, S> = fn(Evaluator<'a, S>, usize) -> Evaluator<'a, S>;

fn enable_pool<'a, S: PageSource + Sync>(ev: Evaluator<'a, S>, workers: usize) -> Evaluator<'a, S> {
    ev.with_concurrent_fetch(workers)
}

impl<'a, S: PageSource> QuerySession<'a, S> {
    /// Creates a session.
    pub fn new(
        ws: &'a WebScheme,
        catalog: &'a ViewCatalog,
        stats: &'a SiteStatistics,
        source: &'a S,
    ) -> Self {
        QuerySession {
            ws,
            catalog,
            stats,
            source,
            mask: RuleMask::all(),
            use_incomplete: false,
            shared_cache: None,
            degradation: DegradationMode::FailFast,
            trace: None,
            trace_parent: None,
            audit: None,
            health: None,
            concurrency: None,
            deadline: None,
            cancel: None,
            hedge: None,
            relevance: false,
        }
    }

    /// Bounds every evaluation in this session by `deadline`: once the
    /// budget is gone, not-yet-fetched pages are reported in the
    /// outcome's unreachable set (a brown-out) instead of being fetched
    /// past it — even under [`DegradationMode::FailFast`].
    pub fn with_deadline(mut self, deadline: obs::Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative cancellation token, shared with the fetch
    /// pool so queued work for cancelled URLs is skipped pre-dispatch.
    pub fn with_cancel_token(mut self, token: obs::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Hedges laggard pooled fetches: after `cfg.delay_us` in flight one
    /// backup GET races the primary and the first response wins. Rows
    /// and every paper counter are unchanged; hedge activity lands only
    /// in `cfg`'s counters. A no-op without concurrent fetch.
    pub fn with_hedging(mut self, cfg: nalg::HedgeConfig) -> Self {
        self.hedge = Some(cfg);
        self
    }

    /// Cancels pending fetches that relevance analysis proves can no
    /// longer contribute an output tuple (σ/⋈ residuals reject every
    /// carrying row). Rows are unchanged; only downloads shrink.
    pub fn with_relevance_cancel(mut self) -> Self {
        self.relevance = true;
        self
    }

    /// Enables runtime constraint auditing: each [`QuerySession::run`]
    /// samples the pages it fetched (a page is audited with probability
    /// `rate`, decided deterministically from `seed` and the URL) and
    /// re-checks the constraints the winning plan assumed. A violated
    /// audit triggers the default-navigation fallback. `rate` 0 disables
    /// auditing entirely; auditing never fetches a page.
    pub fn with_audit(mut self, rate: f64, seed: u64) -> Self {
        self.audit = (rate > 0.0).then_some((rate.min(1.0), seed));
        self
    }

    /// Attaches a [`ConstraintHealth`] registry: audit results feed its
    /// per-constraint counters, violated constraints are quarantined (and
    /// thereby barred from licensing rewrites on later queries in this or
    /// any session sharing the registry), and each `run` advances its
    /// logical clock so quarantines expire.
    pub fn with_constraint_health(mut self, health: &'a ConstraintHealth) -> Self {
        self.health = Some(health);
        self
    }

    /// Attaches a trace sink: subsequent [`QuerySession::explain`] calls
    /// record optimizer rule events and [`QuerySession::run`] /
    /// [`QuerySession::execute`] calls record one span per executed
    /// operator. Results and every reported counter are byte-identical
    /// with or without a sink attached.
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.trace = Some(sink.clone());
        self
    }

    /// Parents everything this session traces — optimizer rule events,
    /// the top-level operator span, audit events — under `parent`, so a
    /// served request's planning and execution form one causal tree
    /// rooted at the server's request span. A no-op without a sink.
    pub fn with_trace_parent(mut self, parent: u64) -> Self {
        self.trace_parent = Some(parent);
        self
    }

    /// Sets what happens when a fetch ultimately fails during execution:
    /// abort the query (`FailFast`, the default) or complete the plan over
    /// reachable pages and report the unreachable-URL set (`Partial`).
    pub fn with_degradation(mut self, mode: DegradationMode) -> Self {
        self.degradation = mode;
        self
    }

    /// Sets the rule mask (builder style).
    pub fn with_mask(mut self, mask: RuleMask) -> Self {
        self.mask = mask;
        self
    }

    /// Allows designer-declared incomplete navigations (builder style).
    pub fn allow_incomplete_navigations(mut self) -> Self {
        self.use_incomplete = true;
        self
    }

    /// Evaluates plans with a persistent pool of `workers` fetch threads
    /// (spawned once per evaluation, shared by every navigation in the
    /// plan). Results and page-access counts are identical to sequential
    /// execution; only wall-clock changes.
    pub fn with_concurrent_fetch(mut self, workers: usize) -> Self
    where
        S: Sync,
    {
        self.concurrency = Some((workers.max(1), enable_pool::<S>));
        self
    }

    /// Shares a cross-query page cache between this session's queries (and
    /// anything else holding the cache — crawler, other sessions). Hits
    /// are reported as `shared_cache_hits`, never as page accesses.
    pub fn with_shared_cache(mut self, cache: &'a SharedPageCache) -> Self {
        self.shared_cache = Some(cache);
        self
    }

    fn evaluator(&self) -> Evaluator<'a, S> {
        self.evaluator_traced(self.trace.as_ref())
    }

    fn evaluator_traced(&self, trace: Option<&TraceSink>) -> Evaluator<'a, S> {
        let mut ev = Evaluator::new(self.ws, self.source).with_degradation(self.degradation);
        if let Some(cache) = self.shared_cache {
            ev = ev.with_shared_cache(cache);
        }
        if let Some(sink) = trace {
            ev = ev.with_trace(sink);
            if let Some(parent) = self.trace_parent {
                ev = ev.with_trace_parent(parent);
            }
        }
        if let Some((workers, enable)) = self.concurrency {
            ev = enable(ev, workers);
        }
        if let Some(deadline) = self.deadline {
            ev = ev.with_deadline(deadline);
        }
        if let Some(token) = &self.cancel {
            ev = ev.with_cancel_token(token.clone());
        }
        if let Some(cfg) = &self.hedge {
            ev = ev.with_hedging(cfg.clone());
        }
        if self.relevance {
            ev = ev.with_relevance_cancel();
        }
        ev
    }

    fn optimizer_traced(&self, trace: Option<&TraceSink>) -> Optimizer<'a> {
        let mut opt = Optimizer::new(self.ws, self.catalog, self.stats).with_mask(self.mask);
        if self.use_incomplete {
            opt = opt.allow_incomplete_navigations();
        }
        if let Some(sink) = trace {
            opt = opt.with_trace(sink);
            if let Some(parent) = self.trace_parent {
                opt = opt.with_trace_parent(parent);
            }
        }
        if let Some(h) = self.health {
            opt = opt.with_constraint_health(h);
        }
        opt
    }

    /// The audit configuration for a chosen plan: the session's rate/seed
    /// over exactly the constraints the plan assumed. `None` when auditing
    /// is off or the plan is constraint-free (nothing to check).
    fn audit_config(&self, best: &CandidatePlan) -> Option<AuditConfig> {
        let (rate, seed) = self.audit?;
        let mut cfg = AuditConfig {
            rate,
            seed,
            link: Vec::new(),
            inclusion: Vec::new(),
        };
        for d in &best.dependencies {
            match d {
                ConstraintDependency::Link(c) => cfg.link.push(c.clone()),
                ConstraintDependency::Inclusion(c) => cfg.inclusion.push(c.clone()),
            }
        }
        cfg.is_active().then_some(cfg)
    }

    /// Optimizes without executing.
    pub fn explain(&self, q: &ConjunctiveQuery) -> Result<Explain> {
        self.optimizer_traced(self.trace.as_ref()).optimize(q)
    }

    /// Optimizes and executes the best plan. With auditing on, the fetched
    /// pages are sampled against the plan's assumed constraints; a
    /// violation books into the attached [`ConstraintHealth`] (quarantine)
    /// and re-answers the query from its default navigation (see
    /// [`FallbackOutcome`]).
    pub fn run(&self, q: &ConjunctiveQuery) -> Result<QueryOutcome> {
        if let Some(h) = self.health {
            h.tick();
        }
        let explain = self.explain(q)?;
        self.run_planned(q, explain)
    }

    /// Executes an already-optimized plan set for `q`, skipping rule 1–9
    /// enumeration entirely — the serving layer's plan-cache hit path.
    /// Auditing, constraint-health booking, and the drift fallback behave
    /// exactly as in [`QuerySession::run`]; the only difference is that
    /// this does **not** advance the health registry's logical clock (the
    /// caller owns the tick, so a cache hit and a cache miss age
    /// quarantines identically).
    ///
    /// Correctness is the caller's contract: `explain` must have been
    /// produced for this `q` over the session's current statistics and
    /// quarantine set (a [`crate::CandidatePlan`] licensed by a
    /// since-quarantined constraint would execute here unchallenged —
    /// the serve-layer plan cache guards exactly that).
    pub fn run_planned(&self, q: &ConjunctiveQuery, explain: Explain) -> Result<QueryOutcome> {
        let mut ev = self.evaluator();
        if let Some(cfg) = self.audit_config(explain.best()) {
            ev = ev.with_audit(cfg);
        }
        let report = ev.eval(&explain.best().expr)?;
        self.settle(q, explain, report)
    }

    /// Books a run's audit findings into the health registry and, when the
    /// audit caught the plan's own assumptions being violated, re-executes
    /// the query constraint-free and promotes that answer.
    fn settle(
        &self,
        q: &ConjunctiveQuery,
        explain: Explain,
        report: EvalReport,
    ) -> Result<QueryOutcome> {
        let (violated, newly_quarantined) = {
            let Some(audit) = report.audit.as_ref() else {
                return Ok(QueryOutcome {
                    explain,
                    report,
                    fallback: None,
                });
            };
            let mut violated = Vec::new();
            let mut newly_quarantined = Vec::new();
            for row in &audit.constraints {
                if let Some(h) = self.health {
                    if h.record(&row.key, row.checks, row.violations.len() as u64) {
                        newly_quarantined.push(row.key.clone());
                    }
                }
                if !row.violations.is_empty() {
                    violated.push(row.key.clone());
                }
            }
            (violated, newly_quarantined)
        };
        if violated.is_empty() {
            return Ok(QueryOutcome {
                explain,
                report,
                fallback: None,
            });
        }
        // Every audited constraint was load-bearing for this plan, so a
        // violation invalidates the rewrite chain that produced it. Answer
        // instead from the default navigation (rule mask off), which
        // assumes nothing about the drifted site.
        if let Some(h) = self.health {
            h.note_fallback();
        }
        let mut fb_opt =
            Optimizer::new(self.ws, self.catalog, self.stats).with_mask(RuleMask::none());
        if self.use_incomplete {
            fb_opt = fb_opt.allow_incomplete_navigations();
        }
        let fb_explain = fb_opt.optimize(q)?;
        let fb_report = self.evaluator().eval(&fb_explain.best().expr)?;
        let diverged = report.relation.sorted() != fb_report.relation.sorted();
        Ok(QueryOutcome {
            explain: fb_explain,
            report: fb_report,
            fallback: Some(FallbackOutcome {
                violated,
                newly_quarantined,
                suspect_explain: explain,
                suspect_report: report,
                diverged,
            }),
        })
    }

    /// EXPLAIN ANALYZE: optimizes, executes the best plan under a fresh
    /// deterministic trace sink (independent of any session sink), and
    /// joins the optimizer's per-operator estimates onto the executed
    /// operator spans. Results and counters are byte-identical to
    /// [`QuerySession::run`]; the extra work is bookkeeping only.
    pub fn run_analyzed(&self, q: &ConjunctiveQuery) -> Result<AnalyzedOutcome> {
        let sink = TraceSink::with_seed(0);
        let explain = self.optimizer_traced(Some(&sink)).optimize(q)?;
        let report = self
            .evaluator_traced(Some(&sink))
            .eval(&explain.best().expr)?;
        let analysis = ExplainAnalyze::from_parts(&explain.best().estimate, &sink.events());
        Ok(AnalyzedOutcome {
            outcome: QueryOutcome {
                explain,
                report,
                fallback: None,
            },
            analysis,
            trace: sink,
        })
    }

    /// Executes a specific plan (used by experiments to run non-optimal
    /// candidates for comparison).
    pub fn execute(&self, expr: &nalg::NalgExpr) -> Result<EvalReport> {
        Ok(self.evaluator().eval(expr)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::LiveSource;
    use crate::views::university_catalog;
    use websim::sitegen::{University, UniversityConfig};

    #[test]
    fn end_to_end_query_matches_oracle() {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 20,
            seed: 21,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("graduate-courses")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"));
        let outcome = session.run(&q).unwrap();
        let expected: std::collections::HashSet<String> = u
            .expected_course()
            .into_iter()
            .filter(|(_, _, _, t)| t == "Graduate")
            .map(|(n, _, _, _)| n)
            .collect();
        let got: std::collections::HashSet<String> = outcome
            .report
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn concurrent_session_with_shared_cache_matches_plain_run() {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 20,
            seed: 21,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let q = ConjunctiveQuery::new("graduate-courses")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"));
        let plain = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .run(&q)
            .unwrap();
        let cache = nalg::SharedPageCache::default();
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .with_concurrent_fetch(8)
            .with_shared_cache(&cache);
        let cold = session.run(&q).unwrap();
        assert_eq!(
            cold.report.relation.sorted(),
            plain.report.relation.sorted()
        );
        assert_eq!(cold.report.page_accesses, plain.report.page_accesses);
        assert_eq!(
            cold.report.accesses_by_operator,
            plain.report.accesses_by_operator
        );
        // Second run: every page comes from the shared cache.
        let warm = session.run(&q).unwrap();
        assert_eq!(
            warm.report.relation.sorted(),
            plain.report.relation.sorted()
        );
        assert_eq!(warm.downloads(), 0);
        assert_eq!(warm.report.shared_cache_hits, cold.report.page_accesses);
        // The cost model is blind to the shared cache.
        assert_eq!(warm.measured_pages(), plain.measured_pages());
    }

    #[test]
    fn run_analyzed_matches_plain_run_exactly() {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 20,
            seed: 21,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("graduate-courses")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"));
        let plain = session.run(&q).unwrap();
        let analyzed = session.run_analyzed(&q).unwrap();
        // tracing must not perturb results or any counter
        assert_eq!(analyzed.outcome.report.relation, plain.report.relation);
        assert_eq!(
            analyzed.outcome.report.page_accesses,
            plain.report.page_accesses
        );
        assert_eq!(
            analyzed.outcome.report.accesses_by_operator,
            plain.report.accesses_by_operator
        );
        // the joined table's observed total is the cost-model total
        assert_eq!(
            analyzed.analysis.observed_pages,
            plain.report.cost_model_accesses()
        );
        // every executed operator appears, with the plan's estimate joined
        assert_eq!(
            analyzed.analysis.ops.len(),
            plain.explain.best().estimate.nodes.len()
        );
        assert!(analyzed.analysis.render().contains("total:"));
        // the trace carries both optimizer events and operator spans
        let events = analyzed.trace.events();
        assert!(events
            .iter()
            .any(|e| e.kind == obs::trace::EventKind::Optimizer));
        assert!(events
            .iter()
            .any(|e| e.kind == obs::trace::EventKind::Operator));
    }

    #[test]
    fn audited_clean_run_is_byte_identical_and_feeds_health() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let q = ConjunctiveQuery::new("cs-dept")
            .atom("Dept")
            .select((0, "DName"), "Computer Science")
            .project((0, "Address"));
        let plain = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .run(&q)
            .unwrap();
        let health = resilience::ConstraintHealth::new();
        let audited = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .with_audit(1.0, 7)
            .with_constraint_health(&health)
            .run(&q)
            .unwrap();
        // On a pristine site auditing observes, quarantines nothing, and
        // changes nothing.
        assert!(!audited.fell_back());
        assert_eq!(audited.report.relation, plain.report.relation);
        assert_eq!(audited.report.page_accesses, plain.report.page_accesses);
        assert_eq!(
            audited.report.accesses_by_operator,
            plain.report.accesses_by_operator
        );
        assert_eq!(audited.explain.best().expr, plain.explain.best().expr);
        // … but the health registry saw the checks.
        let audit = audited.report.audit.as_ref().expect("audit ran");
        assert!(audit.checks() > 0);
        assert!(audit.is_clean());
        let snap = health.snapshot();
        assert_eq!(snap.checks, audit.checks());
        assert!(snap.is_quiet());
    }

    #[test]
    fn drift_triggers_quarantine_and_fallback() {
        use websim::{DriftPlan, DriftRule};
        let mut u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let q = ConjunctiveQuery::new("cs-dept")
            .atom("Dept")
            .select((0, "DName"), "Computer Science")
            .project((0, "Address"));
        // Drift every DeptPage's DName: the anchor-replication constraint
        // DeptListPage.DeptList.DName = DeptPage.DName — which licensed
        // pushing the selection across the follow — is now false.
        let report = DriftPlan::new(3)
            .with_rule(DriftRule::perturb_attr("DeptPage", "DName", 1.0))
            .apply(&mut u.site)
            .unwrap();
        assert!(report.perturbed_pages > 0);
        let source = LiveSource::for_site(&u.site);
        let health = resilience::ConstraintHealth::new();
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .with_audit(1.0, 7)
            .with_constraint_health(&health);
        let outcome = session.run(&q).unwrap();
        // The audit caught the violation and the answer fell back.
        assert!(outcome.fell_back());
        let fb = outcome.fallback.as_ref().unwrap();
        assert!(!fb.violated.is_empty());
        assert_eq!(fb.newly_quarantined, fb.violated);
        assert!(fb.diverged, "drifted DName changes the answer");
        assert!(fb.suspect_report.audit.as_ref().unwrap().violation_count() > 0);
        // The authoritative answer equals a constraint-free run.
        let naive = QuerySession::new(&u.site.scheme, &catalog, &stats, &source)
            .with_mask(RuleMask::none())
            .run(&q)
            .unwrap();
        assert_eq!(
            outcome.report.relation.sorted(),
            naive.report.relation.sorted()
        );
        // The registry shows the quarantine; the next run's EXPLAIN
        // surfaces it and stops trusting the constraint.
        let snap = health.snapshot();
        assert!(snap.quarantines >= 1);
        assert_eq!(snap.fallbacks, 1);
        assert!(snap.quarantined_now >= 1);
        let second = session.run(&q).unwrap();
        assert!(
            !second.fell_back(),
            "quarantine removed the bad rewrite, so nothing to audit-fail"
        );
        assert!(!second.explain.quarantined.is_empty());
        assert!(second
            .explain
            .report()
            .contains("quarantined (excluded from rewrites):"));
        for d in &second.explain.best().dependencies {
            assert!(!fb.violated.contains(&d.key()));
        }
        assert_eq!(
            second.report.relation.sorted(),
            naive.report.relation.sorted()
        );
    }

    #[test]
    fn run_planned_matches_run_and_skips_optimization() {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 20,
            seed: 21,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("graduate-courses")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"));
        let plain = session.run(&q).unwrap();
        let replayed = session.run_planned(&q, plain.explain.clone()).unwrap();
        assert_eq!(
            replayed.report.relation.sorted(),
            plain.report.relation.sorted()
        );
        assert_eq!(replayed.report.page_accesses, plain.report.page_accesses);
        assert_eq!(
            replayed.report.accesses_by_operator,
            plain.report.accesses_by_operator
        );
        assert_eq!(replayed.explain.best().expr, plain.explain.best().expr);
    }

    #[test]
    fn estimated_tracks_measured() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("profs-by-dept")
            .atom("ProfDept")
            .select((0, "DName"), "Computer Science")
            .project((0, "PName"));
        let outcome = session.run(&q).unwrap();
        let est = outcome.estimated_pages();
        let meas = outcome.measured_pages() as f64;
        // within 2× either way (uniformity assumption)
        assert!(
            est <= meas * 2.0 + 2.0 && meas <= est * 2.0 + 2.0,
            "estimate {est} vs measured {meas}"
        );
    }
}
