//! End-to-end query sessions: optimize, navigate, wrap, answer.
//!
//! A [`QuerySession`] bundles a scheme, a view catalog, statistics, and a
//! page source. [`QuerySession::run`] performs the paper's full query
//! pipeline and reports both the optimizer's estimate and the measured
//! page accesses, so experiments can validate the cost model (estimated
//! vs. actual) with one call.

use crate::optimizer::{Explain, Optimizer, RuleMask};
use crate::query::ConjunctiveQuery;
use crate::stats::SiteStatistics;
use crate::views::ViewCatalog;
use crate::Result;
use adm::WebScheme;
use nalg::{EvalReport, Evaluator, PageSource};

/// The outcome of an executed query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The optimizer's explanation (all candidate plans, costed).
    pub explain: Explain,
    /// The evaluation report of the chosen plan.
    pub report: EvalReport,
}

impl QueryOutcome {
    /// Estimated page accesses of the chosen plan (cost-model 𝒞).
    pub fn estimated_pages(&self) -> f64 {
        self.explain.best().estimate.cost.pages
    }

    /// Measured page accesses under the paper's cost accounting (distinct
    /// links per navigation operator).
    pub fn measured_pages(&self) -> u64 {
        self.report.cost_model_accesses()
    }

    /// Actual downloads performed (with the per-query cache).
    pub fn downloads(&self) -> u64 {
        self.report.page_accesses
    }
}

/// A query session over a site.
pub struct QuerySession<'a, S: PageSource> {
    ws: &'a WebScheme,
    catalog: &'a ViewCatalog,
    stats: &'a SiteStatistics,
    source: &'a S,
    mask: RuleMask,
    use_incomplete: bool,
}

impl<'a, S: PageSource> QuerySession<'a, S> {
    /// Creates a session.
    pub fn new(
        ws: &'a WebScheme,
        catalog: &'a ViewCatalog,
        stats: &'a SiteStatistics,
        source: &'a S,
    ) -> Self {
        QuerySession {
            ws,
            catalog,
            stats,
            source,
            mask: RuleMask::all(),
            use_incomplete: false,
        }
    }

    /// Sets the rule mask (builder style).
    pub fn with_mask(mut self, mask: RuleMask) -> Self {
        self.mask = mask;
        self
    }

    /// Allows designer-declared incomplete navigations (builder style).
    pub fn allow_incomplete_navigations(mut self) -> Self {
        self.use_incomplete = true;
        self
    }

    /// Optimizes without executing.
    pub fn explain(&self, q: &ConjunctiveQuery) -> Result<Explain> {
        let mut opt = Optimizer::new(self.ws, self.catalog, self.stats).with_mask(self.mask);
        if self.use_incomplete {
            opt = opt.allow_incomplete_navigations();
        }
        opt.optimize(q)
    }

    /// Optimizes and executes the best plan.
    pub fn run(&self, q: &ConjunctiveQuery) -> Result<QueryOutcome> {
        let explain = self.explain(q)?;
        let report = Evaluator::new(self.ws, self.source).eval(&explain.best().expr)?;
        Ok(QueryOutcome { explain, report })
    }

    /// Executes a specific plan (used by experiments to run non-optimal
    /// candidates for comparison).
    pub fn execute(&self, expr: &nalg::NalgExpr) -> Result<EvalReport> {
        Ok(Evaluator::new(self.ws, self.source).eval(expr)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::LiveSource;
    use crate::views::university_catalog;
    use websim::sitegen::{University, UniversityConfig};

    #[test]
    fn end_to_end_query_matches_oracle() {
        let u = University::generate(UniversityConfig {
            departments: 3,
            professors: 10,
            courses: 20,
            seed: 21,
            ..UniversityConfig::default()
        })
        .unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("graduate-courses")
            .atom("Course")
            .select((0, "Type"), "Graduate")
            .project((0, "CName"));
        let outcome = session.run(&q).unwrap();
        let expected: std::collections::HashSet<String> = u
            .expected_course()
            .into_iter()
            .filter(|(_, _, _, t)| t == "Graduate")
            .map(|(n, _, _, _)| n)
            .collect();
        let got: std::collections::HashSet<String> = outcome
            .report
            .relation
            .rows()
            .iter()
            .map(|r| r[0].as_text().unwrap().to_string())
            .collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn estimated_tracks_measured() {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        let catalog = university_catalog();
        let source = LiveSource::for_site(&u.site);
        let session = QuerySession::new(&u.site.scheme, &catalog, &stats, &source);
        let q = ConjunctiveQuery::new("profs-by-dept")
            .atom("ProfDept")
            .select((0, "DName"), "Computer Science")
            .project((0, "PName"));
        let outcome = session.run(&q).unwrap();
        let est = outcome.estimated_pages();
        let meas = outcome.measured_pages() as f64;
        // within 2× either way (uniformity assumption)
        assert!(
            est <= meas * 2.0 + 2.0 && meas <= est * 2.0 + 2.0,
            "estimate {est} vs measured {meas}"
        );
    }
}
