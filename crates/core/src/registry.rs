//! Phase-staged rewrite-rule registry.
//!
//! Algorithm 1 (Section 6.3) applies the paper's rules 1–9 in a fixed
//! staging: seed generation (rule 1), normalization (rule 4), branching
//! closure (rules 8/9), selection pushing (rule 6), and navigation pruning
//! (rules 3/5/7). This module names those stages and rules explicitly —
//! each [`RewritePhase`] owns a `const` slice of [`RewriteRule`]s — so the
//! [`crate::Optimizer`] drives "for each phase, for each registered rule"
//! instead of hard-coding the sequence inline, and ablation masks, trace
//! labels, and stage ordering all live in one place.
//!
//! The trace label of every rule ([`RewriteRule::trace_name`]) is part of
//! the repo's observability contract (`analyze`, the flight recorder, and
//! the EXPLAIN tooling all match on them) and must never change.

use crate::optimizer::RuleMask;
use crate::rules::{
    merge_repeated_navigations, prune_navigations_tracked, push_selections_tracked,
    ConstraintDependency,
};
use crate::stats::SiteStatistics;
use adm::WebScheme;
use nalg::NalgExpr;
use std::collections::BTreeSet;

/// One stage of Algorithm 1, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewritePhase {
    /// Step 2 — translate atoms into default navigations (rule 1).
    Seed,
    /// Steps 3 and 5 — repeated-navigation elimination (rule 4).
    Normalize,
    /// Step 4 — branching closure under pointer join/chase (rules 8/9).
    Branch,
    /// Step 5 — selection pushing (rule 6).
    Push,
    /// Steps 6–7 — projection pushing and navigation pruning (rules 3/5/7).
    Prune,
}

/// A named rewrite rule of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteRule {
    /// Rule 1 — replace an external relation by a default navigation.
    DefaultNavigation,
    /// Rule 4 — merge repeated navigations.
    MergeRepeated,
    /// Rule 8 — pointer join.
    PointerJoin,
    /// Rule 9 — pointer chase.
    PointerChase,
    /// Rule 6 — push selections through navigations.
    PushSelections,
    /// Rules 3/5/7 — push projections, prune unnecessary navigations.
    PruneNavigations,
}

/// What applying one rule to one candidate did.
#[derive(Debug, Clone)]
pub enum RuleOutcome {
    /// The rule does not run in this mode (generative rules — seeds and
    /// branching — are driven by their own dedicated machinery).
    NotApplicable,
    /// The rule ran; `expr` is the (possibly unchanged) result and `used`
    /// the link/inclusion constraints the rewrite leaned on.
    Applied {
        /// The rewritten expression (compare with the input to detect a
        /// no-op — only genuine rewrites are traced).
        expr: NalgExpr,
        /// Constraint provenance accumulated by this application.
        used: BTreeSet<ConstraintDependency>,
    },
    /// The rule determined the candidate cannot survive (e.g. a selection
    /// that cannot be pushed into any computable position).
    Rejected,
}

const SEED_RULES: &[RewriteRule] = &[RewriteRule::DefaultNavigation];

const NORMALIZE_RULES: &[RewriteRule] = &[RewriteRule::MergeRepeated];

const BRANCH_RULES: &[RewriteRule] = &[RewriteRule::PointerJoin, RewriteRule::PointerChase];

const PUSH_RULES: &[RewriteRule] = &[RewriteRule::PushSelections];

const PRUNE_RULES: &[RewriteRule] = &[RewriteRule::PruneNavigations];

/// The phases in the order Algorithm 1 runs them per candidate after the
/// branching closure (step 5 repeats normalization because a pointer chase
/// can leave a duplicated navigation behind).
pub const CANDIDATE_PHASES: &[RewritePhase] = &[
    RewritePhase::Normalize,
    RewritePhase::Push,
    RewritePhase::Prune,
];

/// The rules registered for a phase, in application order.
pub fn rules_for_phase(phase: RewritePhase) -> &'static [RewriteRule] {
    match phase {
        RewritePhase::Seed => SEED_RULES,
        RewritePhase::Normalize => NORMALIZE_RULES,
        RewritePhase::Branch => BRANCH_RULES,
        RewritePhase::Push => PUSH_RULES,
        RewritePhase::Prune => PRUNE_RULES,
    }
}

impl RewriteRule {
    /// The rule's trace label — matched by `analyze`, the flight recorder,
    /// and EXPLAIN tooling; byte-stable across releases.
    pub fn trace_name(self) -> &'static str {
        match self {
            RewriteRule::DefaultNavigation => "rule1.default_navigation",
            RewriteRule::MergeRepeated => "rule4.merge_repeated",
            RewriteRule::PointerJoin => "rule8.pointer_join",
            RewriteRule::PointerChase => "rule9.pointer_chase",
            RewriteRule::PushSelections => "rule6.push_selections",
            RewriteRule::PruneNavigations => "rule357.prune_navigations",
        }
    }

    /// Whether the ablation mask enables this rule. Rule 1 cannot be
    /// disabled — without seeds there are no plans at all.
    pub fn enabled(self, mask: &RuleMask) -> bool {
        match self {
            RewriteRule::DefaultNavigation => true,
            RewriteRule::MergeRepeated => mask.merge_repeated,
            RewriteRule::PointerJoin => mask.pointer_join,
            RewriteRule::PointerChase => mask.pointer_chase,
            RewriteRule::PushSelections => mask.push_selections,
            RewriteRule::PruneNavigations => mask.prune_navigations,
        }
    }

    /// Applies a normalization rule to one candidate. Generative rules
    /// (seeds, branching) return [`RuleOutcome::NotApplicable`]; they are
    /// driven by [`crate::Optimizer`]'s dedicated seed/closure machinery.
    pub(crate) fn apply(
        self,
        expr: &NalgExpr,
        ws: &WebScheme,
        stats: &SiteStatistics,
        gate: &dyn Fn(&ConstraintDependency) -> bool,
    ) -> RuleOutcome {
        match self {
            RewriteRule::DefaultNavigation
            | RewriteRule::PointerJoin
            | RewriteRule::PointerChase => RuleOutcome::NotApplicable,
            RewriteRule::MergeRepeated => RuleOutcome::Applied {
                expr: merge_repeated_navigations(expr.clone(), ws, stats),
                used: BTreeSet::new(),
            },
            RewriteRule::PushSelections => match push_selections_tracked(expr, ws, gate) {
                Ok((e, used)) => RuleOutcome::Applied {
                    expr: e,
                    used: used.into_iter().collect(),
                },
                Err(_) => RuleOutcome::Rejected,
            },
            RewriteRule::PruneNavigations => {
                match prune_navigations_tracked(expr.clone(), ws, gate) {
                    Ok((e, used)) => RuleOutcome::Applied {
                        expr: e,
                        used: used.into_iter().collect(),
                    },
                    Err(_) => RuleOutcome::Rejected,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_register_every_rule_once() {
        let all: Vec<RewriteRule> = [
            RewritePhase::Seed,
            RewritePhase::Normalize,
            RewritePhase::Branch,
            RewritePhase::Push,
            RewritePhase::Prune,
        ]
        .iter()
        .flat_map(|&p| rules_for_phase(p).iter().copied())
        .collect();
        assert_eq!(all.len(), 6);
        for r in [
            RewriteRule::DefaultNavigation,
            RewriteRule::MergeRepeated,
            RewriteRule::PointerJoin,
            RewriteRule::PointerChase,
            RewriteRule::PushSelections,
            RewriteRule::PruneNavigations,
        ] {
            assert_eq!(all.iter().filter(|&&x| x == r).count(), 1, "{r:?}");
        }
    }

    #[test]
    fn trace_names_are_byte_stable() {
        // These strings are an observability contract; see module docs.
        assert_eq!(
            RewriteRule::DefaultNavigation.trace_name(),
            "rule1.default_navigation"
        );
        assert_eq!(
            RewriteRule::MergeRepeated.trace_name(),
            "rule4.merge_repeated"
        );
        assert_eq!(RewriteRule::PointerJoin.trace_name(), "rule8.pointer_join");
        assert_eq!(
            RewriteRule::PointerChase.trace_name(),
            "rule9.pointer_chase"
        );
        assert_eq!(
            RewriteRule::PushSelections.trace_name(),
            "rule6.push_selections"
        );
        assert_eq!(
            RewriteRule::PruneNavigations.trace_name(),
            "rule357.prune_navigations"
        );
    }

    #[test]
    fn mask_gates_each_rule() {
        let none = RuleMask::none();
        assert!(RewriteRule::DefaultNavigation.enabled(&none));
        for r in [
            RewriteRule::MergeRepeated,
            RewriteRule::PointerJoin,
            RewriteRule::PointerChase,
            RewriteRule::PushSelections,
            RewriteRule::PruneNavigations,
        ] {
            assert!(!r.enabled(&none), "{r:?}");
            assert!(r.enabled(&RuleMask::all()), "{r:?}");
        }
    }

    #[test]
    fn candidate_phases_run_normalize_push_prune() {
        assert_eq!(
            CANDIDATE_PHASES,
            &[
                RewritePhase::Normalize,
                RewritePhase::Push,
                RewritePhase::Prune
            ]
        );
    }
}
