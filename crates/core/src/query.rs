//! Conjunctive queries over external relations (Section 5).
//!
//! The user's perception of the system is purely relational: a set of
//! external relations and a conjunctive (select-project-join) query over
//! them. `wvquery` provides a SQL-subset parser producing these values; the
//! optimizer consumes them.

use crate::views::ViewCatalog;
use crate::{OptError, Result};
use adm::Value;
use std::fmt;

/// A reference to an attribute of a query atom: `(atom index, attribute)`.
pub type AttrPos = (usize, String);

/// A conjunctive query: atoms (external relations), equality joins between
/// atom attributes, constant selections, and a projection list.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// A short name for reports.
    pub name: String,
    /// The external relations joined by the query, in order.
    pub atoms: Vec<String>,
    /// Equality joins between atom attributes.
    pub joins: Vec<(AttrPos, AttrPos)>,
    /// Constant selections `atom.attr = value`.
    pub selections: Vec<(AttrPos, Value)>,
    /// The output attributes.
    pub projection: Vec<AttrPos>,
}

impl ConjunctiveQuery {
    /// Starts a query with a report name.
    pub fn new(name: impl Into<String>) -> Self {
        ConjunctiveQuery {
            name: name.into(),
            atoms: Vec::new(),
            joins: Vec::new(),
            selections: Vec::new(),
            projection: Vec::new(),
        }
    }

    /// Adds an atom (external relation occurrence); returns `self`.
    pub fn atom(mut self, relation: impl Into<String>) -> Self {
        self.atoms.push(relation.into());
        self
    }

    /// Adds an equality join between two atom attributes.
    pub fn join(
        mut self,
        left: (usize, impl Into<String>),
        right: (usize, impl Into<String>),
    ) -> Self {
        self.joins
            .push(((left.0, left.1.into()), (right.0, right.1.into())));
        self
    }

    /// Adds a constant selection.
    pub fn select(mut self, at: (usize, impl Into<String>), value: impl Into<Value>) -> Self {
        self.selections.push(((at.0, at.1.into()), value.into()));
        self
    }

    /// Adds an output attribute.
    pub fn project(mut self, at: (usize, impl Into<String>)) -> Self {
        self.projection.push((at.0, at.1.into()));
        self
    }

    /// The query's canonical cache key: a normalized rendering under
    /// which two queries compare equal iff they ask for the same thing.
    ///
    /// Normalization: the report [`ConjunctiveQuery::name`] is excluded
    /// (it never affects planning); each join pair is ordered so
    /// `a.X = b.Y` and `b.Y = a.X` agree; joins and selections are
    /// sorted. Atom order and projection order are preserved — both are
    /// semantically significant (atom indices anchor every attribute
    /// reference, and the projection fixes the output column order).
    pub fn cache_key(&self) -> String {
        let pos = |(i, a): &AttrPos| format!("{i}.{a}");
        let mut joins: Vec<String> = self
            .joins
            .iter()
            .map(|(l, r)| {
                let (l, r) = if l <= r { (l, r) } else { (r, l) };
                format!("{}={}", pos(l), pos(r))
            })
            .collect();
        joins.sort();
        let mut selections: Vec<String> = self
            .selections
            .iter()
            .map(|(a, v)| format!("{}='{v}'", pos(a)))
            .collect();
        selections.sort();
        let projection: Vec<String> = self.projection.iter().map(pos).collect();
        format!(
            "atoms[{}] joins[{}] sel[{}] proj[{}]",
            self.atoms.join(","),
            joins.join(","),
            selections.join(","),
            projection.join(",")
        )
    }

    /// Validates the query against a catalog: atoms exist, attribute
    /// references are in range and belong to their relations, the
    /// projection is non-empty.
    pub fn validate(&self, catalog: &ViewCatalog) -> Result<()> {
        if self.atoms.is_empty() {
            return Err(OptError::BadQuery("no atoms".into()));
        }
        if self.projection.is_empty() {
            return Err(OptError::BadQuery("empty projection".into()));
        }
        let check = |(i, attr): &AttrPos| -> Result<()> {
            let rel_name = self
                .atoms
                .get(*i)
                .ok_or_else(|| OptError::BadQuery(format!("atom index {i} out of range")))?;
            let rel = catalog.relation(rel_name)?;
            if !rel.attrs.iter().any(|a| a == attr) {
                return Err(OptError::UnknownViewAttribute {
                    relation: rel_name.clone(),
                    attr: attr.clone(),
                });
            }
            Ok(())
        };
        for (l, r) in &self.joins {
            check(l)?;
            check(r)?;
        }
        for (a, _) in &self.selections {
            check(a)?;
        }
        for p in &self.projection {
            check(p)?;
        }
        for rel in &self.atoms {
            catalog.relation(rel)?;
        }
        Ok(())
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_pos = |(i, a): &AttrPos| {
            format!(
                "{}#{i}.{a}",
                self.atoms.get(*i).map(String::as_str).unwrap_or("?")
            )
        };
        write!(f, "π[")?;
        for (i, p) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", fmt_pos(p))?;
        }
        write!(f, "] σ[")?;
        let mut first = true;
        for (a, v) in &self.selections {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "{}='{v}'", fmt_pos(a))?;
        }
        for (l, r) in &self.joins {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "{}={}", fmt_pos(l), fmt_pos(r))?;
        }
        write!(f, "] ({})", self.atoms.join(" ⋈ "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::university_catalog;

    fn example_71() -> ConjunctiveQuery {
        // "Name and Description of courses taught by full professors in the
        // Fall session" (paper Example 7.1)
        ConjunctiveQuery::new("ex71")
            .atom("Professor")
            .atom("CourseInstructor")
            .atom("Course")
            .join((0, "PName"), (1, "PName"))
            .join((1, "CName"), (2, "CName"))
            .select((0, "Rank"), "Full")
            .select((2, "Session"), "Fall")
            .project((2, "CName"))
            .project((2, "Description"))
    }

    #[test]
    fn builder_and_validation() {
        let cat = university_catalog();
        let q = example_71();
        assert_eq!(q.atoms.len(), 3);
        q.validate(&cat).unwrap();
    }

    #[test]
    fn rejects_unknown_relation() {
        let cat = university_catalog();
        let q = ConjunctiveQuery::new("bad").atom("Nope").project((0, "X"));
        assert!(matches!(
            q.validate(&cat),
            Err(OptError::UnknownRelation(_))
        ));
    }

    #[test]
    fn rejects_unknown_attribute() {
        let cat = university_catalog();
        let q = ConjunctiveQuery::new("bad")
            .atom("Professor")
            .project((0, "Salary"));
        assert!(matches!(
            q.validate(&cat),
            Err(OptError::UnknownViewAttribute { .. })
        ));
    }

    #[test]
    fn rejects_out_of_range_atom() {
        let cat = university_catalog();
        let q = ConjunctiveQuery::new("bad")
            .atom("Professor")
            .project((3, "PName"));
        assert!(matches!(q.validate(&cat), Err(OptError::BadQuery(_))));
    }

    #[test]
    fn rejects_empty() {
        let cat = university_catalog();
        assert!(ConjunctiveQuery::new("e").validate(&cat).is_err());
        assert!(ConjunctiveQuery::new("e")
            .atom("Professor")
            .validate(&cat)
            .is_err());
    }

    #[test]
    fn cache_key_normalizes_names_join_order_and_listing_order() {
        let a = example_71();
        // Same query, different report name, joins flipped and reordered,
        // selections reordered.
        let b = ConjunctiveQuery::new("some other label")
            .atom("Professor")
            .atom("CourseInstructor")
            .atom("Course")
            .join((2, "CName"), (1, "CName"))
            .join((1, "PName"), (0, "PName"))
            .select((2, "Session"), "Fall")
            .select((0, "Rank"), "Full")
            .project((2, "CName"))
            .project((2, "Description"));
        assert_eq!(a.cache_key(), b.cache_key());
        // Projection order is significant (output column order).
        let c = ConjunctiveQuery::new("ex71")
            .atom("Professor")
            .atom("CourseInstructor")
            .atom("Course")
            .join((0, "PName"), (1, "PName"))
            .join((1, "CName"), (2, "CName"))
            .select((0, "Rank"), "Full")
            .select((2, "Session"), "Fall")
            .project((2, "Description"))
            .project((2, "CName"));
        assert_ne!(a.cache_key(), c.cache_key());
        // And so is the selection constant.
        let d = example_71().select((0, "Rank"), "Associate");
        assert_ne!(a.cache_key(), d.cache_key());
    }

    #[test]
    fn display_mentions_structure() {
        let s = example_71().to_string();
        assert!(s.contains("Professor ⋈ CourseInstructor ⋈ Course"));
        assert!(s.contains("Rank='Full'"));
        assert!(s.contains("CName"));
    }
}
