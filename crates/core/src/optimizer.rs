//! Algorithm 1: navigation plan selection (Section 6.3).
//!
//! ```text
//! Step 1   translate the conjunctive query into algebra over externals
//! Step 2   replace externals by default navigations in all ways  (rule 1)
//! Step 3   eliminate repeated navigations                        (rule 4)
//! Step 4   push and prune joins                                  (rules 8, 9)
//! Step 5   push selections                                       (rule 6)
//! Step 6   push projections                                      (rule 7)
//! Step 7   eliminate unnecessary navigations                     (rules 3, 5)
//! Step 8   cost every candidate, return the cheapest
//! ```
//!
//! Steps 2 and 4 branch (several candidates); steps 3 and 5–7 are
//! normalizations applied to every candidate. A [`RuleMask`] can disable
//! individual stages — this powers the ablation experiments.

use crate::cost::{estimate, Estimate};
use crate::query::ConjunctiveQuery;
use crate::registry::{rules_for_phase, RewritePhase, RewriteRule, RuleOutcome, CANDIDATE_PHASES};
use crate::rules::{
    join_rewrite_candidates_tracked, qualify_expr, rename_alias, validate, ConstraintDependency,
};
use crate::stats::SiteStatistics;
use crate::views::{DefaultNavigation, ViewCatalog};
use crate::{OptError, Result};
use adm::WebScheme;
use nalg::{NalgExpr, Pred};
use obs::trace::{EventKind, FieldValue, TraceSink};
use resilience::ConstraintHealth;
use std::collections::{BTreeSet, HashSet};
use std::fmt::Write as _;

/// Enables/disables individual rewrite stages (for ablation studies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleMask {
    /// Rule 4 — repeated-navigation elimination.
    pub merge_repeated: bool,
    /// Rule 8 — pointer join.
    pub pointer_join: bool,
    /// Rule 9 — pointer chase.
    pub pointer_chase: bool,
    /// Rule 6 — selection pushing.
    pub push_selections: bool,
    /// Rules 3, 5, 7 — projection pushing and navigation pruning.
    pub prune_navigations: bool,
}

impl Default for RuleMask {
    fn default() -> Self {
        RuleMask::all()
    }
}

impl RuleMask {
    /// Everything on (the full Algorithm 1).
    pub fn all() -> Self {
        RuleMask {
            merge_repeated: true,
            pointer_join: true,
            pointer_chase: true,
            push_selections: true,
            prune_navigations: true,
        }
    }

    /// Everything off: plans are naive default-navigation joins.
    pub fn none() -> Self {
        RuleMask {
            merge_repeated: false,
            pointer_join: false,
            pointer_chase: false,
            push_selections: false,
            prune_navigations: false,
        }
    }

    /// Disables rule 8.
    pub fn without_pointer_join(mut self) -> Self {
        self.pointer_join = false;
        self
    }

    /// Disables rule 9.
    pub fn without_pointer_chase(mut self) -> Self {
        self.pointer_chase = false;
        self
    }

    /// Disables rule 6.
    pub fn without_selection_pushing(mut self) -> Self {
        self.push_selections = false;
        self
    }

    /// Disables rules 3/5/7.
    pub fn without_pruning(mut self) -> Self {
        self.prune_navigations = false;
        self
    }
}

/// A costed candidate plan.
#[derive(Debug, Clone)]
pub struct CandidatePlan {
    /// The (validated, computable) plan.
    pub expr: NalgExpr,
    /// Its cost estimate.
    pub estimate: Estimate,
    /// Provenance: every link/inclusion constraint some rewrite along the
    /// way assumed. A plan with an empty set is constraint-free — its
    /// correctness does not depend on the site honouring the scheme's
    /// declared constraints. Sorted and deduplicated.
    pub dependencies: Vec<ConstraintDependency>,
}

/// The optimizer's full output: every surviving candidate, cheapest first.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query's display form.
    pub query: String,
    /// Candidates, cheapest first. Never empty.
    pub candidates: Vec<CandidatePlan>,
    /// Constraint keys that were quarantined (and thus barred from
    /// licensing rewrites) when this plan set was produced.
    pub quarantined: Vec<String>,
}

impl Explain {
    /// The selected (cheapest) plan.
    pub fn best(&self) -> &CandidatePlan {
        &self.candidates[0]
    }

    /// A multi-line report: the query, then each candidate with its
    /// estimated cost and plan tree (paper Figures 3–4 style).
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "query: {}", self.query);
        let _ = writeln!(out, "{} candidate plan(s):", self.candidates.len());
        for (i, c) in self.candidates.iter().enumerate() {
            let marker = if i == 0 { "★" } else { " " };
            let _ = writeln!(
                out,
                "{marker} plan {i}: est. cost {} (card {:.1})",
                c.estimate.cost, c.estimate.card
            );
            for d in &c.dependencies {
                let _ = writeln!(out, "    assumes {d}");
            }
            for line in nalg::display::tree(&c.expr).lines() {
                let _ = writeln!(out, "    {line}");
            }
        }
        if !self.quarantined.is_empty() {
            let _ = writeln!(out, "quarantined (excluded from rewrites):");
            for k in &self.quarantined {
                let _ = writeln!(out, "  ✗ {k}");
            }
        }
        out
    }
}

/// The plan selector.
pub struct Optimizer<'a> {
    ws: &'a WebScheme,
    catalog: &'a ViewCatalog,
    stats: &'a SiteStatistics,
    /// Stage mask (ablations).
    pub mask: RuleMask,
    /// Cap on the candidate pool during rule-8/9 closure.
    pub max_candidates: usize,
    /// Whether designer-declared *incomplete* navigations may be used
    /// (see [`crate::views`]); off by default.
    pub use_incomplete_navigations: bool,
    trace: Option<TraceSink>,
    trace_parent: Option<u64>,
    health: Option<&'a ConstraintHealth>,
}

impl<'a> Optimizer<'a> {
    /// Creates an optimizer over a scheme, view catalog, and statistics.
    pub fn new(ws: &'a WebScheme, catalog: &'a ViewCatalog, stats: &'a SiteStatistics) -> Self {
        Optimizer {
            ws,
            catalog,
            stats,
            mask: RuleMask::all(),
            max_candidates: 128,
            use_incomplete_navigations: false,
            trace: None,
            trace_parent: None,
            health: None,
        }
    }

    /// Consults a [`ConstraintHealth`] registry during rewriting: a
    /// quarantined constraint may not license rules 6–9, so the plans a
    /// drifted site has falsified are simply never generated. With a
    /// healthy (or absent) registry the output is unchanged.
    pub fn with_constraint_health(mut self, health: &'a ConstraintHealth) -> Self {
        self.health = Some(health);
        self
    }

    /// Sets the rule mask (builder style).
    pub fn with_mask(mut self, mask: RuleMask) -> Self {
        self.mask = mask;
        self
    }

    /// Attaches a trace sink: every rule application (rules 1–9) is
    /// recorded as an [`EventKind::Optimizer`] event carrying the
    /// estimated cost before and after the rewrite, and each `optimize`
    /// call ends with an `optimizer.summary` event reporting how many
    /// candidates each pruning stage dropped. Tracing never changes
    /// which plans are generated or how they are ranked.
    pub fn with_trace(mut self, sink: &TraceSink) -> Self {
        self.trace = Some(sink.clone());
        self
    }

    /// Parents every traced rule event (and the summary) under `parent`
    /// — the serving layer passes its request root span so rule 1–9
    /// planning shows up inside the request's causal tree. A no-op
    /// without a sink.
    pub fn with_trace_parent(mut self, parent: u64) -> Self {
        self.trace_parent = Some(parent);
        self
    }

    /// Records one rule application: the rule's name plus the cost
    /// estimate of the expression before (when there is one — rule 1
    /// conjures plans out of the query) and after the rewrite.
    /// Intermediate expressions that the estimator rejects simply omit
    /// the corresponding fields.
    fn rule_event(
        &self,
        sink: &TraceSink,
        rule: &str,
        before: Option<&NalgExpr>,
        after: &NalgExpr,
    ) {
        let mut fields: Vec<(String, FieldValue)> = Vec::new();
        if let Some(b) = before {
            if let Ok(est) = estimate(b, self.ws, self.stats) {
                fields.push(("pages_before".to_string(), est.cost.pages.into()));
                fields.push(("bytes_before".to_string(), est.cost.bytes.into()));
            }
        }
        if let Ok(est) = estimate(after, self.ws, self.stats) {
            fields.push(("pages_after".to_string(), est.cost.pages.into()));
            fields.push(("bytes_after".to_string(), est.cost.bytes.into()));
        }
        sink.event(EventKind::Optimizer, rule, self.trace_parent, fields);
    }

    /// Allows incomplete navigations (builder style).
    pub fn allow_incomplete_navigations(mut self) -> Self {
        self.use_incomplete_navigations = true;
        self
    }

    /// Runs Algorithm 1 on a conjunctive query.
    pub fn optimize(&self, q: &ConjunctiveQuery) -> Result<Explain> {
        q.validate(self.catalog)?;
        let sink = self.trace.as_ref();
        // The constraint gate: a quarantined constraint may not license a
        // rewrite. Without a health registry the gate is always open.
        let health = self.health;
        let gate =
            move |d: &ConstraintDependency| health.is_none_or(|h| !h.is_quarantined(&d.key()));
        // Steps 1–2: seeds (rule 1, all combinations).
        let seeds = self.build_seeds(q)?;
        if let Some(sink) = sink {
            for s in &seeds {
                self.rule_event(sink, RewriteRule::DefaultNavigation.trace_name(), None, s);
            }
        }
        let seed_count = seeds.len();
        // Step 3: normalization (rule 4, via the phase registry).
        let seeds: Vec<NalgExpr> = seeds
            .into_iter()
            .map(|s| {
                let mut cur = s;
                for &rule in rules_for_phase(RewritePhase::Normalize) {
                    if !rule.enabled(&self.mask) {
                        continue;
                    }
                    if let RuleOutcome::Applied { expr, .. } =
                        rule.apply(&cur, self.ws, self.stats, &gate)
                    {
                        if let Some(sink) = sink {
                            if expr != cur {
                                self.rule_event(sink, rule.trace_name(), Some(&cur), &expr);
                            }
                        }
                        cur = expr;
                    }
                }
                cur
            })
            .collect();
        // Step 4: closure under rules 8/9. Each pool entry carries the set
        // of constraints its rewrite chain has assumed so far (provenance).
        let mut pool: Vec<(NalgExpr, BTreeSet<ConstraintDependency>)> = Vec::new();
        let mut seen: HashSet<NalgExpr> = HashSet::new();
        let mut worklist: Vec<(NalgExpr, BTreeSet<ConstraintDependency>)> = Vec::new();
        let mut cap_hit = false;
        for s in seeds {
            if seen.insert(s.clone()) {
                pool.push((s.clone(), BTreeSet::new()));
                worklist.push((s, BTreeSet::new()));
            }
        }
        while let Some((e, deps)) = worklist.pop() {
            if pool.len() >= self.max_candidates {
                cap_hit = true;
                break;
            }
            // For rule attribution only: the rule-8-only candidate set.
            // Candidate generation itself always uses the combined call
            // below, so tracing cannot perturb pool order.
            let rule8: Vec<NalgExpr> = if sink.is_some() && self.mask.pointer_join {
                join_rewrite_candidates_tracked(&e, self.ws, true, false, &gate)
                    .into_iter()
                    .map(|(c, _)| c)
                    .collect()
            } else {
                Vec::new()
            };
            for (cand, used) in join_rewrite_candidates_tracked(
                &e,
                self.ws,
                self.mask.pointer_join,
                self.mask.pointer_chase,
                &gate,
            ) {
                if seen.insert(cand.clone()) {
                    if let Some(sink) = sink {
                        let rule = if rule8.contains(&cand) {
                            RewriteRule::PointerJoin
                        } else {
                            RewriteRule::PointerChase
                        };
                        self.rule_event(sink, rule.trace_name(), Some(&e), &cand);
                    }
                    let mut cand_deps = deps.clone();
                    cand_deps.extend(used);
                    pool.push((cand.clone(), cand_deps.clone()));
                    worklist.push((cand, cand_deps));
                }
            }
        }
        let pool_count = pool.len();
        // Steps 5–7: per-candidate normalization, then validation.
        let mut finals: Vec<(NalgExpr, BTreeSet<ConstraintDependency>)> = Vec::new();
        let mut seen_final: HashSet<NalgExpr> = HashSet::new();
        let (mut pruned_unpushable, mut pruned_invalid, mut pruned_duplicate) = (0u64, 0u64, 0u64);
        'pool: for (e, mut deps) in pool {
            let mut cur = e;
            // The registry stages each surviving candidate through
            // normalize → push → prune. (A pointer-chase rewrite can leave
            // a duplicated navigation behind — the same link followed
            // twice — which is why rule 4 runs again here.)
            for &phase in CANDIDATE_PHASES {
                for &rule in rules_for_phase(phase) {
                    if !rule.enabled(&self.mask) {
                        continue;
                    }
                    match rule.apply(&cur, self.ws, self.stats, &gate) {
                        RuleOutcome::NotApplicable => {}
                        RuleOutcome::Applied { expr, used } => {
                            if let Some(sink) = sink {
                                if expr != cur {
                                    self.rule_event(sink, rule.trace_name(), Some(&cur), &expr);
                                }
                            }
                            deps.extend(used);
                            cur = expr;
                        }
                        RuleOutcome::Rejected => {
                            pruned_unpushable += 1;
                            continue 'pool;
                        }
                    }
                }
            }
            if !validate(&cur, self.ws) {
                pruned_invalid += 1;
            } else if seen_final.insert(cur.clone()) {
                finals.push((cur, deps));
            } else {
                pruned_duplicate += 1;
            }
        }
        // Step 8: cost and sort.
        let mut candidates: Vec<CandidatePlan> = Vec::new();
        let mut pruned_uncostable = 0u64;
        for (expr, deps) in finals {
            let Ok(est) = estimate(&expr, self.ws, self.stats) else {
                pruned_uncostable += 1;
                continue;
            };
            candidates.push(CandidatePlan {
                expr,
                estimate: est,
                dependencies: deps.into_iter().collect(),
            });
        }
        if let Some(sink) = sink {
            sink.event(
                EventKind::Optimizer,
                "optimizer.summary",
                self.trace_parent,
                vec![
                    ("seeds".to_string(), (seed_count as u64).into()),
                    ("pool".to_string(), (pool_count as u64).into()),
                    ("candidates".to_string(), (candidates.len() as u64).into()),
                    ("pruned_unpushable".to_string(), pruned_unpushable.into()),
                    ("pruned_invalid".to_string(), pruned_invalid.into()),
                    ("pruned_duplicate".to_string(), pruned_duplicate.into()),
                    ("pruned_uncostable".to_string(), pruned_uncostable.into()),
                    ("cap_hit".to_string(), cap_hit.into()),
                ],
            );
        }
        if candidates.is_empty() {
            return Err(OptError::NoPlan(format!(
                "no candidate survived rewriting for {q}"
            )));
        }
        candidates.sort_by(|a, b| {
            if a.estimate.cost.better_than(&b.estimate.cost) {
                std::cmp::Ordering::Less
            } else if b.estimate.cost.better_than(&a.estimate.cost) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        Ok(Explain {
            query: q.to_string(),
            candidates,
            quarantined: self.health.map(|h| h.quarantined()).unwrap_or_default(),
        })
    }

    /// Rule 1: replaces every atom by each of its default navigations, in
    /// all combinations, producing fully-qualified seed expressions.
    fn build_seeds(&self, q: &ConjunctiveQuery) -> Result<Vec<NalgExpr>> {
        let mut options: Vec<Vec<&DefaultNavigation>> = Vec::new();
        for rel_name in &q.atoms {
            let rel = self.catalog.relation(rel_name)?;
            let navs: Vec<&DefaultNavigation> = rel
                .navigations
                .iter()
                .filter(|n| n.complete || self.use_incomplete_navigations)
                .collect();
            if navs.is_empty() {
                return Err(OptError::NoPlan(format!(
                    "no usable default navigation for {rel_name}"
                )));
            }
            options.push(navs);
        }
        // cartesian product, capped
        let mut combos: Vec<Vec<&DefaultNavigation>> = vec![vec![]];
        for opts in &options {
            let mut next = Vec::new();
            for combo in &combos {
                for o in opts {
                    if next.len() >= self.max_candidates {
                        break;
                    }
                    let mut c = combo.clone();
                    c.push(*o);
                    next.push(c);
                }
            }
            combos = next;
        }
        let orders = connected_orders(q, self.max_candidates);
        let mut seeds = Vec::new();
        for combo in &combos {
            for order in &orders {
                if seeds.len() >= self.max_candidates {
                    return Ok(seeds);
                }
                seeds.push(self.build_seed(q, combo, order)?);
            }
        }
        Ok(seeds)
    }

    fn build_seed(
        &self,
        q: &ConjunctiveQuery,
        navs: &[&DefaultNavigation],
        order: &[usize],
    ) -> Result<NalgExpr> {
        let mut used: HashSet<String> = HashSet::new();
        let mut exprs: Vec<NalgExpr> = Vec::new();
        let mut binds: Vec<Vec<(String, String)>> = Vec::new();
        for (i, nav) in navs.iter().enumerate() {
            let mut e = qualify_expr(&nav.expr, self.ws)?;
            let mut bmap = nav.bindings.clone();
            let mut aliases: Vec<String> = e
                .alias_map()
                .map_err(OptError::Eval)?
                .keys()
                .cloned()
                .collect();
            aliases.sort();
            for alias in aliases {
                if used.contains(&alias) {
                    let mut new = format!("{alias}_{i}");
                    let mut n = 1;
                    while used.contains(&new) {
                        new = format!("{alias}_{i}_{n}");
                        n += 1;
                    }
                    e = rename_alias(&e, &alias, &new);
                    let prefix = format!("{alias}.");
                    for (_, col) in bmap.iter_mut() {
                        if let Some(rest) = col.strip_prefix(&prefix) {
                            *col = format!("{new}.{rest}");
                        }
                    }
                    used.insert(new);
                } else {
                    used.insert(alias);
                }
            }
            exprs.push(e);
            binds.push(bmap);
        }
        let bind = |i: usize, attr: &str| -> Result<String> {
            binds[i]
                .iter()
                .find_map(|(a, c)| (a == attr).then(|| c.clone()))
                .ok_or_else(|| OptError::UnknownViewAttribute {
                    relation: q.atoms[i].clone(),
                    attr: attr.to_string(),
                })
        };
        // left-deep join tree over the given atom order; a join predicate
        // attaches when the later (in order) of its two atoms enters
        let mut slots: Vec<Option<NalgExpr>> = exprs.into_iter().map(Some).collect();
        let mut in_tree: Vec<usize> = Vec::new();
        let mut tree: Option<NalgExpr> = None;
        for &k in order {
            let e = slots
                .get_mut(k)
                .and_then(Option::take)
                .ok_or_else(|| OptError::BadQuery(format!("bad atom order index {k}")))?;
            tree = Some(match tree {
                None => e,
                Some(t) => {
                    let mut on: Vec<(String, String)> = Vec::new();
                    for ((ai, aattr), (bi, battr)) in &q.joins {
                        if *ai == k && in_tree.contains(bi) {
                            on.push((bind(*bi, battr)?, bind(*ai, aattr)?));
                        } else if *bi == k && in_tree.contains(ai) {
                            on.push((bind(*ai, aattr)?, bind(*bi, battr)?));
                        }
                    }
                    NalgExpr::Join {
                        left: Box::new(t),
                        right: Box::new(e),
                        on,
                    }
                }
            });
            in_tree.push(k);
        }
        let mut tree = tree.ok_or_else(|| OptError::BadQuery("no atoms".into()))?;
        // selections: constant selections plus same-atom attribute
        // equalities (which the join loop above cannot attach)
        let mut atoms: Vec<Pred> = q
            .selections
            .iter()
            .map(|((i, attr), v)| Ok(Pred::Eq(bind(*i, attr)?, v.clone())))
            .collect::<Result<Vec<_>>>()?;
        for ((ai, aattr), (bi, battr)) in &q.joins {
            if ai == bi {
                atoms.push(Pred::EqAttr(bind(*ai, aattr)?, bind(*bi, battr)?));
            }
        }
        if let Some(pred) = Pred::from_conjuncts(atoms) {
            tree = tree.select(pred);
        }
        // projection (deduplicated, order-preserving)
        let mut cols: Vec<String> = Vec::new();
        for (i, attr) in &q.projection {
            let c = bind(*i, attr)?;
            if !cols.contains(&c) {
                cols.push(c);
            }
        }
        Ok(tree.project(cols))
    }
}

/// Enumerates left-deep atom orders in which every atom (after the first)
/// is connected by a join predicate to an earlier atom, falling back to
/// arbitrary extension when the join graph is disconnected. Capped.
fn connected_orders(q: &ConjunctiveQuery, cap: usize) -> Vec<Vec<usize>> {
    const MAX_ORDERS: usize = 24;
    let cap = cap.min(MAX_ORDERS);
    let n = q.atoms.len();
    if n <= 1 {
        return vec![(0..n).collect()];
    }
    let connected = |k: usize, in_tree: &[usize]| {
        q.joins.iter().any(|((ai, _), (bi, _))| {
            (*ai == k && in_tree.contains(bi)) || (*bi == k && in_tree.contains(ai))
        })
    };
    let mut out: Vec<Vec<usize>> = Vec::new();
    let mut order: Vec<usize> = Vec::new();
    let mut used = vec![false; n];
    fn rec(
        n: usize,
        cap: usize,
        connected: &impl Fn(usize, &[usize]) -> bool,
        order: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if out.len() >= cap {
            return;
        }
        if order.len() == n {
            out.push(order.clone());
            return;
        }
        let candidates: Vec<usize> = (0..n)
            .filter(|&k| !used[k] && (order.is_empty() || connected(k, order)))
            .collect();
        let candidates = if candidates.is_empty() {
            // disconnected join graph: allow any unused atom
            (0..n).filter(|&k| !used[k]).collect()
        } else {
            candidates
        };
        for k in candidates {
            used[k] = true;
            order.push(k);
            rec(n, cap, connected, order, used, out);
            order.pop();
            used[k] = false;
        }
    }
    rec(n, cap, &connected, &mut order, &mut used, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::university_catalog;
    use websim::sitegen::{University, UniversityConfig};

    fn fixtures() -> (WebScheme, ViewCatalog, SiteStatistics) {
        let u = University::generate(UniversityConfig::default()).unwrap();
        let stats = SiteStatistics::from_site(&u.site);
        (u.site.scheme.clone(), university_catalog(), stats)
    }

    fn single_relation_query() -> ConjunctiveQuery {
        ConjunctiveQuery::new("cs-profs")
            .atom("ProfDept")
            .atom("Professor")
            .join((0, "PName"), (1, "PName"))
            .select((0, "DName"), "Computer Science")
            .project((1, "PName"))
            .project((1, "Email"))
    }

    #[test]
    fn optimizes_simple_selection_query() {
        let (ws, cat, stats) = fixtures();
        let opt = Optimizer::new(&ws, &cat, &stats);
        let q = ConjunctiveQuery::new("full-profs")
            .atom("Professor")
            .select((0, "Rank"), "Full")
            .project((0, "PName"));
        let explain = opt.optimize(&q).unwrap();
        let best = explain.best();
        // cost: entry + all professor pages (Rank isn't replicated)
        assert!((best.estimate.cost.pages - 21.0).abs() < 1e-6);
    }

    #[test]
    fn merges_shared_spines_across_atoms() {
        let (ws, cat, stats) = fixtures();
        let opt = Optimizer::new(&ws, &cat, &stats);
        let explain = opt.optimize(&single_relation_query()).unwrap();
        let best = explain.best();
        // Professor and ProfDept (professor-path variant) merge into one
        // navigation; the dept-path variant competes. The best plan should
        // not navigate professors twice.
        assert!(
            best.estimate.cost.pages <= 21.0 + 1e-6,
            "{}",
            explain.report()
        );
    }

    #[test]
    fn candidates_are_sorted_and_validated() {
        let (ws, cat, stats) = fixtures();
        let opt = Optimizer::new(&ws, &cat, &stats);
        let explain = opt.optimize(&single_relation_query()).unwrap();
        for w in explain.candidates.windows(2) {
            assert!(!w[1].estimate.cost.better_than(&w[0].estimate.cost));
        }
        for c in &explain.candidates {
            assert!(c.expr.is_computable());
        }
    }

    #[test]
    fn mask_none_still_produces_plans() {
        let (ws, cat, stats) = fixtures();
        let opt = Optimizer::new(&ws, &cat, &stats).with_mask(RuleMask::none());
        let explain = opt.optimize(&single_relation_query()).unwrap();
        assert!(!explain.candidates.is_empty());
        // naive plans cost at least as much as optimized ones
        let opt_full = Optimizer::new(&ws, &cat, &stats);
        let explain_full = opt_full.optimize(&single_relation_query()).unwrap();
        assert!(
            explain_full.best().estimate.cost.pages <= explain.best().estimate.cost.pages + 1e-6
        );
    }

    #[test]
    fn report_mentions_costs_and_plans() {
        let (ws, cat, stats) = fixtures();
        let opt = Optimizer::new(&ws, &cat, &stats);
        let explain = opt.optimize(&single_relation_query()).unwrap();
        let r = explain.report();
        assert!(r.contains("candidate plan"));
        assert!(r.contains("★ plan 0"));
        assert!(r.contains("est. cost"));
    }

    #[test]
    fn incomplete_only_relation_needs_opt_in() {
        let (ws, _, stats) = fixtures();
        // a catalog whose single navigation is incomplete
        let cat = crate::views::ViewCatalog::new().with(crate::views::ExternalRelation::new(
            "OnlyPartial",
            vec!["PName"],
            vec![crate::views::DefaultNavigation::new(
                nalg::NalgExpr::entry("ProfListPage")
                    .unnest("ProfList")
                    .follow("ToProf", "ProfPage"),
                vec![("PName", "ProfPage.PName")],
            )
            .incomplete()],
        ));
        let q = ConjunctiveQuery::new("q")
            .atom("OnlyPartial")
            .project((0, "PName"));
        let strict = Optimizer::new(&ws, &cat, &stats);
        assert!(matches!(
            strict.optimize(&q),
            Err(crate::OptError::NoPlan(_))
        ));
        let lax = Optimizer::new(&ws, &cat, &stats).allow_incomplete_navigations();
        assert!(lax.optimize(&q).is_ok());
    }

    #[test]
    fn candidate_cap_is_respected() {
        let (ws, cat, stats) = fixtures();
        let mut opt = Optimizer::new(&ws, &cat, &stats);
        opt.max_candidates = 2;
        let explain = opt.optimize(&single_relation_query()).unwrap();
        assert!(!explain.candidates.is_empty());
    }

    #[test]
    fn same_atom_equalities_become_selections() {
        // WHERE ci.CName = ci.PName (nonsensical but legal) must not be
        // silently dropped — it reaches the plan as an EqAttr selection.
        let (ws, cat, stats) = fixtures();
        let q = ConjunctiveQuery::new("self-eq")
            .atom("CourseInstructor")
            .join((0, "CName"), (0, "PName"))
            .project((0, "CName"));
        let opt = Optimizer::new(&ws, &cat, &stats);
        let explain = opt.optimize(&q).unwrap();
        for c in &explain.candidates {
            let shown = nalg::display::tree(&c.expr);
            assert!(shown.contains('σ'), "predicate dropped:\n{shown}");
        }
    }

    #[test]
    fn tracing_records_rule_applications_and_summary() {
        let (ws, cat, stats) = fixtures();
        let sink = TraceSink::with_seed(7);
        let opt = Optimizer::new(&ws, &cat, &stats).with_trace(&sink);
        let traced = opt.optimize(&single_relation_query()).unwrap();
        let events = sink.events();
        let rule1 = events
            .iter()
            .filter(|e| e.name == "rule1.default_navigation")
            .count();
        assert!(rule1 >= 1, "rule 1 fires at least once per seed");
        // rule-1 events carry the seed's estimated cost
        assert!(events
            .iter()
            .filter(|e| e.name == "rule1.default_navigation")
            .all(|e| e.field("pages_after").is_some()));
        let summary = events
            .iter()
            .find(|e| e.name == "optimizer.summary")
            .expect("summary event");
        assert_eq!(summary.field_u64("seeds"), Some(rule1 as u64));
        assert_eq!(
            summary.field_u64("candidates"),
            Some(traced.candidates.len() as u64)
        );
        // tracing must not change the outcome
        let plain = Optimizer::new(&ws, &cat, &stats)
            .optimize(&single_relation_query())
            .unwrap();
        assert_eq!(plain.candidates.len(), traced.candidates.len());
        for (a, b) in plain.candidates.iter().zip(&traced.candidates) {
            assert_eq!(a.expr, b.expr);
            assert_eq!(a.estimate.cost, b.estimate.cost);
        }
    }

    #[test]
    fn rejects_invalid_query() {
        let (ws, cat, stats) = fixtures();
        let opt = Optimizer::new(&ws, &cat, &stats);
        let q = ConjunctiveQuery::new("bad").atom("Nope").project((0, "X"));
        assert!(opt.optimize(&q).is_err());
    }

    #[test]
    fn best_plan_records_constraint_provenance() {
        let (ws, cat, stats) = fixtures();
        let opt = Optimizer::new(&ws, &cat, &stats);
        let explain = opt.optimize(&single_relation_query()).unwrap();
        let best = explain.best();
        assert!(
            !best.dependencies.is_empty(),
            "the winning plan pushes σ[DName=…] across a follow — that \
             rewrite is licensed by a link constraint and must be recorded:\n{}",
            explain.report()
        );
        let r = explain.report();
        for d in &best.dependencies {
            assert!(
                r.contains(&format!("assumes {d}")),
                "missing in report:\n{r}"
            );
        }
        assert!(explain.quarantined.is_empty());
        assert!(!r.contains("quarantined"));
    }

    #[test]
    fn healthy_registry_changes_nothing() {
        let (ws, cat, stats) = fixtures();
        let health = ConstraintHealth::new();
        let plain = Optimizer::new(&ws, &cat, &stats)
            .optimize(&single_relation_query())
            .unwrap();
        let gated = Optimizer::new(&ws, &cat, &stats)
            .with_constraint_health(&health)
            .optimize(&single_relation_query())
            .unwrap();
        assert_eq!(plain.candidates.len(), gated.candidates.len());
        for (a, b) in plain.candidates.iter().zip(&gated.candidates) {
            assert_eq!(a.expr, b.expr);
            assert_eq!(a.estimate.cost, b.estimate.cost);
            assert_eq!(a.dependencies, b.dependencies);
        }
        assert!(gated.quarantined.is_empty());
    }

    #[test]
    fn quarantine_bars_constraints_from_licensing_rewrites() {
        let (ws, cat, stats) = fixtures();
        let q = single_relation_query();
        let trusted = Optimizer::new(&ws, &cat, &stats).optimize(&q).unwrap();
        let deps = trusted.best().dependencies.clone();
        assert!(!deps.is_empty());
        // Quarantine every constraint the winning plan leaned on.
        let health = ConstraintHealth::new();
        for d in &deps {
            health.record(&d.key(), 1, 1);
        }
        let guarded = Optimizer::new(&ws, &cat, &stats)
            .with_constraint_health(&health)
            .optimize(&q)
            .unwrap();
        let quarantined: Vec<String> = deps.iter().map(|d| d.key()).collect();
        for c in &guarded.candidates {
            for d in &c.dependencies {
                assert!(
                    !quarantined.contains(&d.key()),
                    "quarantined constraint still licensed a rewrite: {d}"
                );
            }
        }
        // The defensive plan cannot beat the trusting one.
        assert!(trusted.best().estimate.cost.pages <= guarded.best().estimate.cost.pages + 1e-6);
        // EXPLAIN surfaces the quarantine.
        assert_eq!(guarded.quarantined.len(), deps.len());
        let r = guarded.report();
        assert!(r.contains("quarantined (excluded from rewrites):"), "{r}");
        for k in &quarantined {
            assert!(r.contains(k), "missing {k} in report:\n{r}");
        }
    }
}
