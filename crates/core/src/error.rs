//! Optimizer-layer errors.

use std::fmt;

/// Errors raised during view resolution, rewriting, or plan selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OptError {
    /// A query referenced an external relation the catalog doesn't define.
    UnknownRelation(String),
    /// A query referenced an attribute an external relation doesn't have.
    UnknownViewAttribute {
        /// The external relation.
        relation: String,
        /// The attribute.
        attr: String,
    },
    /// The query is malformed (bad atom index, empty projection, …).
    BadQuery(String),
    /// No candidate plan survived rewriting and validation.
    NoPlan(String),
    /// Data-model error.
    Adm(adm::AdmError),
    /// Evaluation error.
    Eval(nalg::EvalError),
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::UnknownRelation(r) => write!(f, "unknown external relation `{r}`"),
            OptError::UnknownViewAttribute { relation, attr } => {
                write!(
                    f,
                    "external relation `{relation}` has no attribute `{attr}`"
                )
            }
            OptError::BadQuery(m) => write!(f, "bad query: {m}"),
            OptError::NoPlan(m) => write!(f, "no executable plan: {m}"),
            OptError::Adm(e) => write!(f, "{e}"),
            OptError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Adm(e) => Some(e),
            OptError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<adm::AdmError> for OptError {
    fn from(e: adm::AdmError) -> Self {
        OptError::Adm(e)
    }
}

impl From<nalg::EvalError> for OptError {
    fn from(e: nalg::EvalError) -> Self {
        OptError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = OptError::UnknownRelation("Course".into());
        assert!(e.to_string().contains("Course"));
        let e: OptError = adm::AdmError::UnknownScheme("P".into()).into();
        assert!(std::error::Error::source(&e).is_some());
        let e: OptError = nalg::EvalError::NotComputable("x".into()).into();
        assert!(e.to_string().contains("not computable"));
    }
}
