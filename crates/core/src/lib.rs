//! # wv-core — the web-view query optimizer
//!
//! This crate is the paper's primary contribution (Sections 5–7): querying
//! **virtual relational views** of a web site by translating conjunctive
//! queries into efficient navigation plans.
//!
//! * [`query`] — conjunctive queries over external relations;
//! * [`views`] — external relations with their *default navigations*
//!   (rewrite rule 1) and the catalogs for the two running-example sites;
//! * [`stats`] — site statistics (page-scheme cardinalities, list
//!   fan-outs, distinct counts, join selectivities), collected by crawling;
//! * [`cost`] — the cardinality estimator and the cost function 𝒞 of
//!   Section 6.2 (network page accesses; local operators are free);
//! * [`rules`] — rewrite rules 2–9, including **pointer-join** (rule 8)
//!   and **pointer-chase** (rule 9);
//! * [`registry`] — the phase-staged registry naming rules 1–9, their
//!   stages, trace labels, and ablation gates;
//! * [`optimizer`] — Algorithm 1: staged rewriting and cost-based plan
//!   selection, with rule masks for ablation studies;
//! * [`exec`] — an end-to-end query session over a live (simulated) site:
//!   optimize, navigate, wrap, and report estimated vs. actual accesses;
//! * [`analyze`] — EXPLAIN ANALYZE: joins the optimizer's per-operator
//!   estimates onto the executed operator spans of a traced run;
//! * [`source`] — the adapter that turns a `websim` virtual server plus the
//!   `wrapper` crate into a [`nalg::PageSource`].
//!
//! ```
//! use websim::sitegen::{University, UniversityConfig};
//! use wvcore::views::university_catalog;
//! use wvcore::{ConjunctiveQuery, LiveSource, QuerySession, SiteStatistics};
//!
//! let site = University::generate(UniversityConfig::default()).unwrap();
//! let stats = SiteStatistics::from_site(&site.site);
//! let catalog = university_catalog();
//! let source = LiveSource::for_site(&site.site);
//! let session = QuerySession::new(&site.site.scheme, &catalog, &stats, &source);
//!
//! let q = ConjunctiveQuery::new("full professors")
//!     .atom("Professor")
//!     .select((0, "Rank"), "Full")
//!     .project((0, "PName"));
//! let outcome = session.run(&q).unwrap();
//! // the cost model estimated what the evaluator then measured
//! assert!(outcome.estimated_pages() >= outcome.measured_pages() as f64 - 1.0);
//! ```

pub mod analyze;
pub mod cost;
pub mod crawl;
pub mod discover;
pub mod error;
pub mod exec;
pub mod infer;
pub mod optimizer;
pub mod query;
pub mod registry;
pub mod rules;
pub mod source;
pub mod stats;
pub mod views;

pub use analyze::{ExplainAnalyze, OpAnalysis};
pub use cost::{Cost, Estimate, NodeEstimate};
pub use crawl::{crawl_instance, crawl_instance_parallel, SiteInstance};
pub use discover::{discover_constraints, Discovered};
pub use error::OptError;
pub use exec::{AnalyzedOutcome, FallbackOutcome, QueryOutcome, QuerySession};
pub use infer::{auto_catalog, auto_relation, infer_navigations, InferredNavigation};
pub use optimizer::{CandidatePlan, Explain, Optimizer, RuleMask};
pub use query::ConjunctiveQuery;
pub use registry::{RewritePhase, RewriteRule};
pub use rules::ConstraintDependency;
pub use source::{CachedSource, LiveSource};
pub use stats::SiteStatistics;
pub use views::{DefaultNavigation, ExternalRelation, ViewCatalog};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, OptError>;
